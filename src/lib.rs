#![warn(missing_docs)]
//! # simpim
//!
//! A Rust reproduction of *“Accelerating Similarity-based Mining Tasks on
//! High-dimensional Data by Processing-in-memory”* (ICDE 2021).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`similarity`] — vectors, datasets, the ED/CS/PCC/HD measures,
//!   α-quantization and segment statistics.
//! * [`reram`] — functional + timing simulator for ReRAM crossbar PIM.
//! * [`simkit`] — host-side performance model (memory hierarchy, op costs).
//! * [`bounds`] — classic filter-and-refinement bounds (LB_OST, LB_SM,
//!   LB_FNN, UB_part).
//! * [`core`] — the paper's contribution: PIM-aware decomposition, PIM-aware
//!   bounds, PIM memory management, execution-plan optimization.
//! * [`mining`] — kNN and k-means algorithm families plus their
//!   PIM-optimized variants.
//! * [`profiling`] — function-level and hardware-component profiling,
//!   PIM-oracle estimation.
//! * [`datasets`] — seeded synthetic workloads mirroring the paper's eight
//!   datasets and its LSH binary codes.
//! * [`obs`] — span tracing, the metrics registry and schema-versioned run
//!   artifacts (see DESIGN.md §8).
//! * [`kern`] — runtime-dispatched SIMD distance kernels (AVX2/SSE2/NEON
//!   with a bit-identical portable fallback), selected once at startup
//!   and overridable with `SIMPIM_KERNEL` (see DESIGN.md §14).
//! * [`par`] — the deterministic data-parallel execution layer: a
//!   dependency-free scoped thread pool with fixed chunk boundaries and
//!   ordered reduction, so results are bit-identical at any thread count
//!   (see DESIGN.md §10).
//! * [`serve`] — the online query-serving engine: sharded resident
//!   datasets, batch-coalescing scheduler, online insert/delete with
//!   wear-aware reprogramming (see DESIGN.md §9).
//! * [`net`] — the dependency-free TCP RPC front-end: length-prefixed
//!   binary frames, a pipelined client, open-loop load generation with
//!   tail-latency SLO gating (see DESIGN.md §13).
//! * [`mod@bench`] — shared experiment-harness infrastructure (scaled
//!   workloads, run artifacts).
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/online_serving.rs` for the serving path.

pub use simpim_bench as bench;
pub use simpim_bounds as bounds;
pub use simpim_core as core;
pub use simpim_datasets as datasets;
pub use simpim_kern as kern;
pub use simpim_mining as mining;
pub use simpim_net as net;
pub use simpim_obs as obs;
pub use simpim_par as par;
pub use simpim_profiling as profiling;
pub use simpim_reram as reram;
pub use simpim_serve as serve;
pub use simpim_similarity as similarity;
pub use simpim_simkit as simkit;

//! `simpim` — command-line driver for PIM-accelerated similarity mining.
//!
//! ```text
//! simpim info     --data vectors.csv
//! simpim knn      --data vectors.csv --query-row 0 --k 10 [--measure ed|cs|pcc] [--pim]
//! simpim kmeans   --data vectors.csv --k 8 [--algo lloyd|elkan|drake|yinyang] [--pim]
//! simpim dbscan   --data vectors.csv --eps 0.2 --min-pts 5 [--pim]
//! simpim outliers --data vectors.csv --k 5 --m 10 [--pim]
//! ```
//!
//! `--data` accepts `.csv` (one float vector per line) or `.fvecs`
//! (TEXMEX binary). Values are min–max normalized into `[0, 1]` before
//! mining, as the paper prescribes; `--pim` runs the lossless
//! PIM-accelerated variant and reports both architectures' model times.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::core::memory::choose_dimensionality;
use simpim::datasets::io::{read_csv, read_fvecs};
use simpim::mining::dbscan::dbscan;
use simpim::mining::kmeans::pim::PimAssist;
use simpim::mining::kmeans::KmeansConfig;
use simpim::mining::knn::pim::{knn_pim_ed, knn_pim_sim};
use simpim::mining::knn::standard::knn_standard;
use simpim::mining::outlier::{outliers_pim, outliers_standard};
use simpim::similarity::{Dataset, Measure, NormalizedDataset, Quantizer};
use simpim::simkit::HostParams;
use simpim_bounds::BoundCascade;

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(name.to_string());
                    i += 1;
                }
            } else {
                return Err(format!("unexpected argument {a:?}"));
            }
        }
        Ok(Self { flags, switches })
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name} {v:?}: {e}")),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_data(path: &Path) -> Result<Dataset, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("csv") => read_csv(path).map_err(|e| format!("reading {path:?}: {e}")),
        Some("fvecs") => read_fvecs(path).map_err(|e| format!("reading {path:?}: {e}")),
        other => Err(format!(
            "unsupported extension {other:?} (use .csv or .fvecs)"
        )),
    }
}

fn normalize(data: &Dataset) -> Result<(NormalizedDataset, Quantizer), String> {
    let quant = Quantizer::fit(data, 1e6).map_err(|e| e.to_string())?;
    Ok((quant.normalize_dataset(data), quant))
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    println!("objects: {}", data.len());
    println!("dimensions: {}", data.dim());
    let (lo, hi) = data.value_range().ok_or("empty dataset")?;
    println!("value range: [{lo}, {hi}]");
    let cfg = ExecutorConfig::default();
    match choose_dimensionality(data.len(), data.dim(), 4, cfg.operand_bits, &cfg.pim) {
        Ok(plan) => println!(
            "Theorem 4 plan (2 GB PIM array): s = {}{}, {} crossbars",
            plan.s,
            if plan.uncompressed {
                " (uncompressed)"
            } else {
                ""
            },
            plan.total_crossbars()
        ),
        Err(e) => println!("Theorem 4: {e}"),
    }
    Ok(())
}

fn cmd_knn(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let k: usize = args.get("k", 10)?;
    let row: usize = args.get("query-row", 0)?;
    if row >= data.len() {
        return Err(format!(
            "--query-row {row} out of range (N = {})",
            data.len()
        ));
    }
    let measure = match args
        .flags
        .get("measure")
        .map(String::as_str)
        .unwrap_or("ed")
    {
        "ed" => Measure::EuclideanSq,
        "cs" => Measure::Cosine,
        "pcc" => Measure::Pearson,
        other => return Err(format!("unknown --measure {other:?} (ed|cs|pcc)")),
    };
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let query: Vec<f64> = norm.row(row).to_vec();
    let params = HostParams::default();

    let base = knn_standard(&norm, &query, k, measure).map_err(|e| e.to_string())?;
    println!("k = {k} nearest (baseline): {:?}", base.indices());
    println!(
        "baseline model time: {:.3} ms",
        base.report.total_ms(&params)
    );

    if args.switch("pim") {
        let res = match measure {
            Measure::EuclideanSq => {
                let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
                    .map_err(|e| e.to_string())?;
                knn_pim_ed(&mut exec, &norm, &BoundCascade::empty(), &query, k)
                    .map_err(|e| e.to_string())?
            }
            _ => {
                let target = if measure == Measure::Cosine {
                    simpim::core::executor::SimTarget::Cosine
                } else {
                    simpim::core::executor::SimTarget::Pearson
                };
                let mut exec =
                    PimExecutor::prepare_similarity(ExecutorConfig::default(), &nds, target)
                        .map_err(|e| e.to_string())?;
                knn_pim_sim(&mut exec, &norm, &query, k, measure).map_err(|e| e.to_string())?
            }
        };
        assert_eq!(res.indices(), base.indices(), "PIM result must be exact");
        println!(
            "PIM model time: {:.3} ms (identical neighbors)",
            res.report.total_ms(&params)
        );
    }
    Ok(())
}

fn cmd_kmeans(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let k: usize = args.get("k", 8)?;
    let iters: usize = args.get("max-iters", 25)?;
    let algo = args
        .flags
        .get("algo")
        .map(String::as_str)
        .unwrap_or("lloyd")
        .to_string();
    if !["lloyd", "elkan", "drake", "yinyang"].contains(&algo.as_str()) {
        return Err(format!(
            "unknown --algo {algo:?} (lloyd|elkan|drake|yinyang)"
        ));
    }
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let cfg = KmeansConfig {
        k,
        max_iters: iters,
        seed: args.get("seed", 7)?,
    };
    let params = HostParams::default();

    let run = |pim: Option<&mut PimAssist<'_>>| match algo.as_str() {
        "lloyd" => simpim::mining::kmeans::lloyd::kmeans_lloyd(&norm, &cfg, pim),
        "elkan" => simpim::mining::kmeans::elkan::kmeans_elkan(&norm, &cfg, pim),
        "drake" => simpim::mining::kmeans::drake::kmeans_drake(&norm, &cfg, pim),
        "yinyang" => simpim::mining::kmeans::yinyang::kmeans_yinyang(&norm, &cfg, pim),
        other => panic!("unknown --algo {other:?} (lloyd|elkan|drake|yinyang)"),
    };

    let base = run(None).map_err(|e| e.to_string())?;
    println!(
        "{algo}: {} iterations, inertia {:.4}, {:.2} ms/iter (model)",
        base.iterations,
        base.inertia,
        base.report.total_ms(&params) / base.iterations as f64
    );
    if args.switch("pim") {
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .map_err(|e| e.to_string())?;
        let mut assist = PimAssist::new(&mut exec);
        let pim = run(Some(&mut assist)).map_err(|e| e.to_string())?;
        assert_eq!(
            pim.assignments, base.assignments,
            "PIM clustering must be exact"
        );
        println!(
            "{algo}-PIM: identical assignments, {:.2} ms/iter (model)",
            pim.report.total_ms(&params) / pim.iterations as f64
        );
    }
    Ok(())
}

fn cmd_dbscan(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let eps: f64 = args.get("eps", 0.2)?;
    let min_pts: usize = args.get("min-pts", 5)?;
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let params = HostParams::default();

    let base = dbscan(&norm, eps, min_pts, None).map_err(|e| e.to_string())?;
    println!(
        "dbscan(eps={eps}, min_pts={min_pts}): {} clusters, {} noise; {:.2} ms (model)",
        base.clusters,
        base.noise_count(),
        base.report.total_ms(&params)
    );
    if args.switch("pim") {
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .map_err(|e| e.to_string())?;
        let pim = dbscan(&norm, eps, min_pts, Some(&mut exec)).map_err(|e| e.to_string())?;
        assert_eq!(pim.labels, base.labels, "PIM labeling must be exact");
        println!(
            "dbscan-PIM: identical labeling; {:.2} ms (model)",
            pim.report.total_ms(&params)
        );
    }
    Ok(())
}

fn cmd_outliers(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let k: usize = args.get("k", 5)?;
    let m: usize = args.get("m", 10)?;
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let params = HostParams::default();

    let base = outliers_standard(&norm, k, m);
    println!("top-{m} outliers by {k}-NN distance:");
    for (i, score) in &base.outliers {
        println!("  object {i}: score {score:.5}");
    }
    println!(
        "baseline model time: {:.2} ms",
        base.report.total_ms(&params)
    );
    if args.switch("pim") {
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .map_err(|e| e.to_string())?;
        let pim = outliers_pim(&mut exec, &norm, k, m).map_err(|e| e.to_string())?;
        assert_eq!(pim.indices(), base.indices(), "PIM outliers must be exact");
        println!(
            "PIM model time: {:.2} ms (identical outliers)",
            pim.report.total_ms(&params)
        );
    }
    Ok(())
}

/// Renders one run artifact as a per-stage table, or diffs two.
fn cmd_report(paths: &[String]) -> Result<(), String> {
    let load = |p: &String| -> Result<simpim::obs::RunArtifact, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("reading artifact {p:?}: {e}"))?;
        let artifact = simpim::obs::RunArtifact::from_json_text(&text)
            .map_err(|e| format!("parsing artifact {p:?}: {e}"))?;
        let problems = artifact.validate();
        if !problems.is_empty() {
            return Err(format!("invalid artifact {p:?}: {}", problems.join("; ")));
        }
        Ok(artifact)
    };
    match paths {
        [a] => {
            print!("{}", load(a)?.render_table());
            Ok(())
        }
        [a, b] => {
            print!("{}", load(a)?.render_diff(&load(b)?));
            Ok(())
        }
        _ => Err("usage: simpim report <a.json> [<b.json>]".to_string()),
    }
}

const USAGE: &str =
    "usage: simpim <info|knn|kmeans|dbscan|outliers|report> --data <file.csv|file.fvecs> [options]
  info      --data F
  knn       --data F [--query-row 0] [--k 10] [--measure ed|cs|pcc] [--pim]
  kmeans    --data F [--k 8] [--algo lloyd|elkan|drake|yinyang] [--max-iters 25] [--seed 7] [--pim]
  dbscan    --data F [--eps 0.2] [--min-pts 5] [--pim]
  outliers  --data F [--k 5] [--m 10] [--pim]
  report    <a.json> [<b.json>]   render a BENCH_*.json artifact, or diff two
  any mining command also takes --trace (writes span journal to simpim_trace.jsonl)";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if cmd == "report" {
        // Positional file paths, not --flag pairs.
        return match cmd_report(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = Args::parse(rest).and_then(|args| {
        let tracing = args.switch("trace");
        if tracing {
            simpim::obs::trace::enable(1 << 16);
        }
        let out = match cmd.as_str() {
            "info" => cmd_info(&args),
            "knn" => cmd_knn(&args),
            "kmeans" => cmd_kmeans(&args),
            "dbscan" => cmd_dbscan(&args),
            "outliers" => cmd_outliers(&args),
            other => Err(format!("unknown command {other:?}\n{USAGE}")),
        };
        if tracing {
            let spans = simpim::obs::trace::snapshot().len();
            let dropped = simpim::obs::trace::dropped();
            let path = "simpim_trace.jsonl";
            match std::fs::write(path, simpim::obs::trace::dump_jsonl()) {
                Ok(()) => eprintln!("trace: {spans} spans ({dropped} dropped) -> {path}"),
                Err(e) => eprintln!("trace: could not write {path}: {e}"),
            }
            simpim::obs::trace::disable();
        }
        out
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let a = Args::parse(&argv(&["--data", "x.csv", "--k", "5", "--pim"])).unwrap();
        assert_eq!(a.required("data").unwrap(), "x.csv");
        assert_eq!(a.get::<usize>("k", 1).unwrap(), 5);
        assert!(a.switch("pim"));
        assert!(!a.switch("verbose"));
        assert_eq!(a.get::<usize>("m", 9).unwrap(), 9);
    }

    #[test]
    fn rejects_positional_arguments_and_bad_values() {
        assert!(Args::parse(&argv(&["stray"])).is_err());
        let a = Args::parse(&argv(&["--k", "abc"])).unwrap();
        assert!(a.get::<usize>("k", 1).is_err());
        assert!(a.required("data").is_err());
    }
}

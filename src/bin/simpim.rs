//! `simpim` — command-line driver for PIM-accelerated similarity mining.
//!
//! ```text
//! simpim info        --data vectors.csv
//! simpim knn         --data vectors.csv --query-row 0 --k 10 [--measure ed|cs|pcc] [--pim]
//! simpim kmeans      --data vectors.csv --k 8 [--algo lloyd|elkan|drake|yinyang] [--pim]
//! simpim dbscan      --data vectors.csv --eps 0.2 --min-pts 5 [--pim]
//! simpim outliers    --data vectors.csv --k 5 --m 10 [--pim]
//! simpim serve-bench [--dataset year] [--k 10] [--batch 8] [--clients 4] [--queries 64]
//!                    [--shards 2] [--replicas 2] [--kill-after 16] [--slo-p99-us 5000]
//!                    [--flight 32]
//! simpim net-serve   [--addr 127.0.0.1:0] [--dataset year] [--shards 2] [--replicas 2]
//!                    [--batch 8] [--window 32] [--ready-file PATH] [--run-seconds 0]
//! simpim net-bench   --addr HOST:PORT [--dataset year] [--connections 4] [--requests 400]
//!                    [--rate 200] [--k 10] [--verify 8] [--slo-p99-us 5000]
//! simpim slo         BENCH_serve_slo.json [--p99-us 5000] [--availability 99.9]
//! simpim flight      BENCH_serve_flight.jsonl [--top 16] [--outcome failover]
//! ```
//!
//! `--data` accepts `.csv` (one float vector per line) or `.fvecs`
//! (TEXMEX binary). Values are min–max normalized into `[0, 1]` before
//! mining, as the paper prescribes; `--pim` runs the lossless
//! PIM-accelerated variant and reports both architectures' model times.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::core::memory::choose_dimensionality;
use simpim::datasets::io::{read_csv, read_fvecs};
use simpim::mining::dbscan::dbscan;
use simpim::mining::kmeans::pim::PimAssist;
use simpim::mining::kmeans::KmeansConfig;
use simpim::mining::knn::pim::{knn_pim_ed, knn_pim_sim};
use simpim::mining::knn::standard::knn_standard;
use simpim::mining::outlier::{outliers_pim, outliers_standard};
use simpim::obs::Json;
use simpim::serve::{ServeConfig, ServeEngine};
use simpim::similarity::{Dataset, Measure, NormalizedDataset, Quantizer};
use simpim::simkit::HostParams;
use simpim_bench::BenchRun;
use simpim_bounds::BoundCascade;
use simpim_datasets::PaperDataset;

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(name.to_string());
                    i += 1;
                }
            } else {
                return Err(format!("unexpected argument {a:?}"));
            }
        }
        Ok(Self { flags, switches })
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name} {v:?}: {e}")),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_data(path: &Path) -> Result<Dataset, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("csv") => read_csv(path).map_err(|e| format!("reading {path:?}: {e}")),
        Some("fvecs") => read_fvecs(path).map_err(|e| format!("reading {path:?}: {e}")),
        other => Err(format!(
            "unsupported extension {other:?} (use .csv or .fvecs)"
        )),
    }
}

fn normalize(data: &Dataset) -> Result<(NormalizedDataset, Quantizer), String> {
    let quant = Quantizer::fit(data, 1e6).map_err(|e| e.to_string())?;
    Ok((quant.normalize_dataset(data), quant))
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    println!("objects: {}", data.len());
    println!("dimensions: {}", data.dim());
    let (lo, hi) = data.value_range().ok_or("empty dataset")?;
    println!("value range: [{lo}, {hi}]");
    let cfg = ExecutorConfig::default();
    match choose_dimensionality(data.len(), data.dim(), 4, cfg.operand_bits, &cfg.pim) {
        Ok(plan) => println!(
            "Theorem 4 plan (2 GB PIM array): s = {}{}, {} crossbars",
            plan.s,
            if plan.uncompressed {
                " (uncompressed)"
            } else {
                ""
            },
            plan.total_crossbars()
        ),
        Err(e) => println!("Theorem 4: {e}"),
    }
    Ok(())
}

fn cmd_knn(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let k: usize = args.get("k", 10)?;
    let row: usize = args.get("query-row", 0)?;
    if row >= data.len() {
        return Err(format!(
            "--query-row {row} out of range (N = {})",
            data.len()
        ));
    }
    let measure = match args
        .flags
        .get("measure")
        .map(String::as_str)
        .unwrap_or("ed")
    {
        "ed" => Measure::EuclideanSq,
        "cs" => Measure::Cosine,
        "pcc" => Measure::Pearson,
        other => return Err(format!("unknown --measure {other:?} (ed|cs|pcc)")),
    };
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let query: Vec<f64> = norm.row(row).to_vec();
    let params = HostParams::default();

    let base = knn_standard(&norm, &query, k, measure).map_err(|e| e.to_string())?;
    println!("k = {k} nearest (baseline): {:?}", base.indices());
    println!(
        "baseline model time: {:.3} ms",
        base.report.total_ms(&params)
    );

    if args.switch("pim") {
        let res = match measure {
            Measure::EuclideanSq => {
                let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
                    .map_err(|e| e.to_string())?;
                knn_pim_ed(&mut exec, &norm, &BoundCascade::empty(), &query, k)
                    .map_err(|e| e.to_string())?
            }
            _ => {
                let target = if measure == Measure::Cosine {
                    simpim::core::executor::SimTarget::Cosine
                } else {
                    simpim::core::executor::SimTarget::Pearson
                };
                let mut exec =
                    PimExecutor::prepare_similarity(ExecutorConfig::default(), &nds, target)
                        .map_err(|e| e.to_string())?;
                knn_pim_sim(&mut exec, &norm, &query, k, measure).map_err(|e| e.to_string())?
            }
        };
        assert_eq!(res.indices(), base.indices(), "PIM result must be exact");
        println!(
            "PIM model time: {:.3} ms (identical neighbors)",
            res.report.total_ms(&params)
        );
    }
    Ok(())
}

fn cmd_kmeans(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let k: usize = args.get("k", 8)?;
    let iters: usize = args.get("max-iters", 25)?;
    let algo = args
        .flags
        .get("algo")
        .map(String::as_str)
        .unwrap_or("lloyd")
        .to_string();
    if !["lloyd", "elkan", "drake", "yinyang"].contains(&algo.as_str()) {
        return Err(format!(
            "unknown --algo {algo:?} (lloyd|elkan|drake|yinyang)"
        ));
    }
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let cfg = KmeansConfig {
        k,
        max_iters: iters,
        seed: args.get("seed", 7)?,
    };
    let params = HostParams::default();

    let run = |pim: Option<&mut PimAssist<'_>>| match algo.as_str() {
        "lloyd" => simpim::mining::kmeans::lloyd::kmeans_lloyd(&norm, &cfg, pim),
        "elkan" => simpim::mining::kmeans::elkan::kmeans_elkan(&norm, &cfg, pim),
        "drake" => simpim::mining::kmeans::drake::kmeans_drake(&norm, &cfg, pim),
        "yinyang" => simpim::mining::kmeans::yinyang::kmeans_yinyang(&norm, &cfg, pim),
        other => panic!("unknown --algo {other:?} (lloyd|elkan|drake|yinyang)"),
    };

    let base = run(None).map_err(|e| e.to_string())?;
    println!(
        "{algo}: {} iterations, inertia {:.4}, {:.2} ms/iter (model)",
        base.iterations,
        base.inertia,
        base.report.total_ms(&params) / base.iterations as f64
    );
    if args.switch("pim") {
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .map_err(|e| e.to_string())?;
        let mut assist = PimAssist::new(&mut exec);
        let pim = run(Some(&mut assist)).map_err(|e| e.to_string())?;
        assert_eq!(
            pim.assignments, base.assignments,
            "PIM clustering must be exact"
        );
        println!(
            "{algo}-PIM: identical assignments, {:.2} ms/iter (model)",
            pim.report.total_ms(&params) / pim.iterations as f64
        );
    }
    Ok(())
}

fn cmd_dbscan(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let eps: f64 = args.get("eps", 0.2)?;
    let min_pts: usize = args.get("min-pts", 5)?;
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let params = HostParams::default();

    let base = dbscan(&norm, eps, min_pts, None).map_err(|e| e.to_string())?;
    println!(
        "dbscan(eps={eps}, min_pts={min_pts}): {} clusters, {} noise; {:.2} ms (model)",
        base.clusters,
        base.noise_count(),
        base.report.total_ms(&params)
    );
    if args.switch("pim") {
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .map_err(|e| e.to_string())?;
        let pim = dbscan(&norm, eps, min_pts, Some(&mut exec)).map_err(|e| e.to_string())?;
        assert_eq!(pim.labels, base.labels, "PIM labeling must be exact");
        println!(
            "dbscan-PIM: identical labeling; {:.2} ms (model)",
            pim.report.total_ms(&params)
        );
    }
    Ok(())
}

fn cmd_outliers(args: &Args) -> Result<(), String> {
    let data = load_data(&PathBuf::from(args.required("data")?))?;
    let k: usize = args.get("k", 5)?;
    let m: usize = args.get("m", 10)?;
    let (nds, _) = normalize(&data)?;
    let norm = nds.dataset().clone();
    let params = HostParams::default();

    let base = outliers_standard(&norm, k, m);
    println!("top-{m} outliers by {k}-NN distance:");
    for (i, score) in &base.outliers {
        println!("  object {i}: score {score:.5}");
    }
    println!(
        "baseline model time: {:.2} ms",
        base.report.total_ms(&params)
    );
    if args.switch("pim") {
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .map_err(|e| e.to_string())?;
        let pim = outliers_pim(&mut exec, &norm, k, m).map_err(|e| e.to_string())?;
        assert_eq!(pim.indices(), base.indices(), "PIM outliers must be exact");
        println!(
            "PIM model time: {:.2} ms (identical outliers)",
            pim.report.total_ms(&params)
        );
    }
    Ok(())
}

fn parse_dataset(args: &Args) -> Result<PaperDataset, String> {
    let name = args
        .flags
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("year");
    match name.to_ascii_lowercase().as_str() {
        "imagenet" => Ok(PaperDataset::ImageNet),
        "msd" => Ok(PaperDataset::Msd),
        "gist" => Ok(PaperDataset::Gist),
        "trevi" => Ok(PaperDataset::Trevi),
        "year" => Ok(PaperDataset::Year),
        "notre" => Ok(PaperDataset::Notre),
        "nuswide" | "nus-wide" => Ok(PaperDataset::NusWide),
        "enron" => Ok(PaperDataset::Enron),
        other => Err(format!("unknown --dataset {other:?} (see Table 6)")),
    }
}

/// Closed-loop load generator for the serving engine: measures the
/// model-time benefit of batch-coalescing the crossbar pass, then drives a
/// real [`ServeEngine`] with concurrent clients for wall-clock latency and
/// shed-rate numbers. Emits `BENCH_serve.json`.
fn cmd_serve_bench(args: &Args) -> Result<(), String> {
    let dataset = parse_dataset(args)?;
    let k: usize = args.get("k", 10)?;
    let batch: usize = args.get("batch", 8)?;
    let clients: usize = args.get("clients", 4)?;
    let total_queries: usize = args.get("queries", 64)?;
    let replicas: usize = args.get("replicas", ServeConfig::default().replicas)?;
    // Recovery drill: after this many answered queries, fail-stop the
    // bank under shard 0 / replica 0 mid-run (0 = no kill). With R >= 2
    // the run must complete with zero failed queries.
    let kill_after: usize = args.get("kill-after", 0)?;
    // Declarative SLO: p99 of end-to-end latency must stay at or below
    // this many microseconds (0 = no objective). When set, the run is
    // named `serve_slo`, the artifact carries the attainment reports,
    // and an unmet objective fails the run.
    let slo_p99_us: u64 = args.get("slo-p99-us", 0)?;
    // Flight-recorder retention (N slowest + N-anomaly ring).
    let flight: usize = args.get("flight", 32)?;
    if batch == 0 || clients == 0 || total_queries == 0 || replicas == 0 {
        return Err("--batch, --clients, --queries and --replicas must be non-zero".to_string());
    }
    if kill_after >= total_queries && kill_after > 0 {
        return Err(
            "--kill-after must be below --queries (the kill needs traffic after it to be detected)"
                .to_string(),
        );
    }

    let mut run = BenchRun::start(if slo_p99_us > 0 { "serve_slo" } else { "serve" });
    run.set_dataset(&dataset.spec());
    run.config_entry("k", Json::Num(k as f64));
    run.config_entry("batch", Json::Num(batch as f64));
    run.config_entry("clients", Json::Num(clients as f64));
    run.config_entry("queries", Json::Num(total_queries as f64));
    run.config_entry("replicas", Json::Num(replicas as f64));
    run.config_entry("kill_after", Json::Num(kill_after as f64));
    run.config_entry("slo_p99_us", Json::Num(slo_p99_us as f64));
    run.config_entry("flight", Json::Num(flight as f64));

    // Part 1 — model-time throughput: what one crossbar pass costs vs. the
    // programming it amortizes. A one-query-at-a-time server pays the full
    // (re)programming latency per query; coalescing Q queries into one
    // pass pays it once per batch.
    let w = simpim_bench::load(dataset);
    let exec_cfg = simpim_bench::scaled_executor_config();
    let nds = NormalizedDataset::assert_normalized(w.data.clone());
    let mut exec = PimExecutor::prepare_euclidean(exec_cfg, &nds).map_err(|e| e.to_string())?;
    let program_ns = exec.report().program_ns;
    let mut pass_ns = 0.0;
    for q in &w.queries {
        let b = exec.lb_ed_batch(q).map_err(|e| e.to_string())?;
        pass_ns += b.timing.total_ns();
    }
    let pass_ns = pass_ns / w.queries.len() as f64;
    let single_ns_per_query = program_ns + pass_ns;
    let batched_ns_per_query = program_ns / batch as f64 + pass_ns;
    let speedup = single_ns_per_query / batched_ns_per_query;
    run.note_stage("single_query_model", single_ns_per_query as u64, 1, 0, 0);
    run.note_stage("batched_query_model", batched_ns_per_query as u64, 1, 0, 0);
    run.push_extra(
        "throughput_model",
        Json::obj([
            ("program_ns", Json::Num(program_ns)),
            ("pass_ns", Json::Num(pass_ns)),
            ("single_ns_per_query", Json::Num(single_ns_per_query)),
            ("batched_ns_per_query", Json::Num(batched_ns_per_query)),
            ("batch_size", Json::Num(batch as f64)),
            ("speedup", Json::Num(speedup)),
        ]),
    );
    drop(exec);

    // Part 2 — drive a real engine with closed-loop clients, mixing a few
    // online mutations in, for wall-clock latency and shed rate.
    let mut slo_spec = simpim::obs::SloSpec::empty();
    if slo_p99_us > 0 {
        slo_spec = slo_spec
            .latency("total", 0.99, slo_p99_us * 1_000)
            .availability("queries", 0.999);
    }
    let serve_cfg = ServeConfig {
        shards: args.get("shards", 2)?,
        replicas,
        max_batch: batch,
        queue_depth: (4 * batch).max(2 * clients),
        executor: exec_cfg,
        flight_capacity: flight,
        slo: slo_spec,
        ..Default::default()
    };
    let engine = ServeEngine::open(serve_cfg, &w.data).map_err(|e| e.to_string())?;
    let per_client = total_queries.div_ceil(clients);
    let answered_so_far = std::sync::atomic::AtomicUsize::new(0);
    let wall = std::time::Instant::now();
    let ((answered, client_timeouts, failed), recovery_ns): ((usize, usize, usize), Option<u64>) =
        std::thread::scope(|s| {
            let engine = &engine;
            let queries = &w.queries;
            let answered_so_far = &answered_so_far;
            // The killer thread fail-stops shard 0 / replica 0 once the
            // clients have made enough progress, then watches the repair
            // loop bring the replica set back to full strength.
            let killer = (kill_after > 0).then(|| {
                s.spawn(move || {
                    while answered_so_far.load(std::sync::atomic::Ordering::Relaxed) < kill_after {
                        std::thread::yield_now();
                    }
                    engine.kill_bank(0, 0).expect("kill bank");
                    let killed = std::time::Instant::now();
                    // Recovery = the lost replica re-replicated and back
                    // in routing. Detection is traffic-driven, so probe
                    // with real queries while polling.
                    let deadline = killed + std::time::Duration::from_secs(30);
                    loop {
                        let _ = engine.knn(&queries[0], k);
                        let stats = engine.stats().expect("stats");
                        if stats.shards[0].healthy == stats.replicas && stats.repairs > 0 {
                            return Some(killed.elapsed().as_nanos() as u64);
                        }
                        if std::time::Instant::now() > deadline {
                            return None;
                        }
                        std::thread::yield_now();
                    }
                })
            });
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut done = 0usize;
                        // Distinct outcome taxonomy: a deadline that
                        // expired in the queue is not an engine failure,
                        // and an admission shed is neither — it is
                        // retried. Conflating them hid real failures.
                        let mut timeouts = 0usize;
                        let mut failed = 0usize;
                        for i in 0..per_client {
                            let q = &queries[(c + i) % queries.len()];
                            loop {
                                match engine.knn(q, k) {
                                    Ok(_) => {
                                        done += 1;
                                        answered_so_far
                                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                        break;
                                    }
                                    Err(simpim::serve::ServeError::Overloaded) => {
                                        std::thread::yield_now();
                                    }
                                    Err(simpim::serve::ServeError::DeadlineExpired) => {
                                        timeouts += 1;
                                        break;
                                    }
                                    Err(_) => {
                                        failed += 1;
                                        break;
                                    }
                                }
                            }
                        }
                        (done, timeouts, failed)
                    })
                })
                .collect();
            let counts = handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold((0, 0, 0), |acc, (d, t, f)| {
                    (acc.0 + d, acc.1 + t, acc.2 + f)
                });
            let recovery = killer.and_then(|h| h.join().expect("killer thread"));
            (counts, recovery)
        });
    // Exercise the online-mutation path while the engine is warm.
    let extra = engine.insert(&w.queries[0]).map_err(|e| e.to_string())?;
    engine.delete(extra).map_err(|e| e.to_string())?;
    engine.flush().map_err(|e| e.to_string())?;
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let stats = engine.stats().map_err(|e| e.to_string())?;
    let flight_dump = engine.flight_dump().map_err(|e| e.to_string())?;
    drop(engine);

    run.note_stage("closed_loop_wall", wall_ns, answered as u64, 0, 0);
    let snap = simpim::obs::metrics::snapshot();
    let hist = snap
        .metrics
        .get("simpim.serve.latency_ns")
        .and_then(simpim::obs::metrics::Metric::as_histogram);
    let (p50, p99) = hist
        .map(|h| (h.quantile(0.5), h.quantile(0.99)))
        .unwrap_or((0, 0));
    // Keep the outcome classes distinct: `shed` is admission control
    // (retried by the clients, not a failure), `fault_sheds` are
    // PIM-fault query aborts, `timeouts` are expired queue deadlines,
    // and `failed` is everything genuinely broken. Summing them into one
    // number made real failures invisible behind routine backpressure.
    let shed = snap.counter("simpim.serve.overloaded").unwrap_or(0);
    let fault_sheds = snap.counter("simpim.serve.sheds").unwrap_or(0);
    run.push_extra(
        "closed_loop",
        Json::obj([
            ("answered", Json::Num(answered as f64)),
            ("failed", Json::Num(failed as f64)),
            ("batches", Json::Num(stats.batches as f64)),
            ("p50_latency_ns", Json::Num(p50 as f64)),
            ("p99_latency_ns", Json::Num(p99 as f64)),
            ("shed", Json::Num(shed as f64)),
            ("fault_sheds", Json::Num(fault_sheds as f64)),
            ("timeouts", Json::Num(stats.timeouts as f64)),
            ("client_timeouts", Json::Num(client_timeouts as f64)),
            // In-process clients have no transport; the field exists so
            // BENCH_serve and BENCH_net rows share one schema.
            ("transport_errors", Json::Num(0.0)),
        ]),
    );
    run.push_extra(
        "replication",
        Json::obj([
            ("replicas", Json::Num(stats.replicas as f64)),
            ("failovers", Json::Num(stats.failovers as f64)),
            ("repairs", Json::Num(stats.repairs as f64)),
            ("degraded_queries", Json::Num(stats.degraded_queries as f64)),
            ("degraded_shards", Json::Num(stats.degraded_shards as f64)),
            (
                "recovery_ns",
                recovery_ns
                    .map(|ns| Json::Num(ns as f64))
                    .unwrap_or(Json::Null),
            ),
        ]),
    );
    // Per-stage breakdown with the p99 exemplar trace ids — the numbers
    // that let `simpim flight` pinpoint which request a bad p99 was.
    run.push_extra(
        "stages",
        Json::Arr(
            stats
                .stage_latency
                .iter()
                .map(|s| {
                    Json::obj([
                        ("stage", Json::Str(s.stage.clone())),
                        ("count", Json::Num(s.count as f64)),
                        ("p50_ns", Json::Num(s.p50_ns as f64)),
                        ("p95_ns", Json::Num(s.p95_ns as f64)),
                        ("p99_ns", Json::Num(s.p99_ns as f64)),
                        ("exemplar_ns", Json::Num(s.exemplar_ns as f64)),
                        ("exemplar_trace", Json::Num(s.exemplar_trace as f64)),
                    ])
                })
                .collect(),
        ),
    );
    if !stats.slo.is_empty() {
        use simpim::obs::ToJson;
        run.push_extra(
            "slo",
            Json::Arr(stats.slo.iter().map(|r| r.to_json()).collect()),
        );
    }
    // The flight dump rides next to the artifact so a slow run can be
    // diagnosed after the fact with `simpim flight`.
    let flight_path = std::env::var("SIMPIM_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
        .join("BENCH_serve_flight.jsonl");
    if let Err(e) = std::fs::write(&flight_path, &flight_dump) {
        eprintln!("warning: could not write {}: {e}", flight_path.display());
    }
    run.push_extra(
        "flight",
        Json::obj([
            ("capacity", Json::Num(stats.flight.capacity as f64)),
            (
                "slow_retained",
                Json::Num(stats.flight.slow_retained as f64),
            ),
            (
                "anomalies_retained",
                Json::Num(stats.flight.anomalies_retained as f64),
            ),
            ("recorded", Json::Num(stats.flight.recorded as f64)),
            (
                "anomalies_evicted",
                Json::Num(stats.flight.anomalies_evicted as f64),
            ),
            ("dump", Json::Str(flight_path.display().to_string())),
        ]),
    );
    let path = run.finish();

    println!("serve-bench on {} (k = {k}, Q = {batch}):", dataset.name());
    println!(
        "  model:  {:.1} us/query single, {:.1} us/query batched -> {speedup:.1}x",
        single_ns_per_query / 1e3,
        batched_ns_per_query / 1e3
    );
    println!(
        "  engine: {answered}/{total_queries} answered ({failed} failed, {client_timeouts} timed out) in {} batches, p50 {:.1} us, p99 {:.1} us, {shed} shed + {fault_sheds} fault-shed",
        stats.batches,
        p50 as f64 / 1e3,
        p99 as f64 / 1e3
    );
    if kill_after > 0 {
        match recovery_ns {
            Some(ns) => println!(
                "  recovery: R = {replicas}, bank (0, 0) killed after {kill_after} queries; \
                 {} failovers, {} repairs, re-replicated in {:.1} ms",
                stats.failovers,
                stats.repairs,
                ns as f64 / 1e6
            ),
            None => println!("  recovery: bank (0, 0) killed but not re-replicated in time"),
        }
    }
    for s in &stats.stage_latency {
        if s.count == 0 {
            continue;
        }
        println!(
            "  stage {:8} p50 {:9.1} us  p95 {:9.1} us  p99 {:9.1} us  (exemplar trace {})",
            s.stage,
            s.p50_ns as f64 / 1e3,
            s.p95_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
            s.exemplar_trace
        );
    }
    for r in &stats.slo {
        println!(
            "  slo: {} -> {} (attainment {:.4}%, budget remaining {:.1}%, burn {:.2}x)",
            r.objective,
            if r.attained { "attained" } else { "MISSED" },
            r.attainment * 100.0,
            r.budget_remaining * 100.0,
            r.burn_rate
        );
    }
    println!(
        "  flight: {} trace(s) retained ({} anomalies) -> {}",
        stats.flight.slow_retained + stats.flight.anomalies_retained,
        stats.flight.anomalies_retained,
        flight_path.display()
    );
    println!("  artifact: {}", path.display());
    if speedup < 3.0 && batch >= 8 {
        return Err(format!(
            "batched throughput model speedup {speedup:.2}x < 3x at Q = {batch}"
        ));
    }
    if kill_after > 0 {
        if failed > 0 || client_timeouts > 0 {
            return Err(format!(
                "{failed} queries failed and {client_timeouts} timed out through the bank loss \
                 (want zero of both with R = {replicas})"
            ));
        }
        if recovery_ns.is_none() {
            return Err("killed replica was not re-replicated within the deadline".to_string());
        }
    }
    if slo_p99_us > 0 {
        if let Some(missed) = stats.slo.iter().find(|r| !r.attained) {
            return Err(format!(
                "SLO missed: {} (attainment {:.4}%, {} violation(s) in {} event(s))",
                missed.objective,
                missed.attainment * 100.0,
                missed.violations,
                missed.events
            ));
        }
    }
    Ok(())
}

/// Serves a [`ServeEngine`] over TCP until the process is killed. The
/// bound address (resolving `--addr 127.0.0.1:0`) is printed and, with
/// `--ready-file`, written to a file a supervisor can poll — that is how
/// the CI smoke job learns the ephemeral port.
fn cmd_net_serve(args: &Args) -> Result<(), String> {
    let dataset = parse_dataset(args)?;
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let batch: usize = args.get("batch", 8)?;
    let shards: usize = args.get("shards", 2)?;
    let replicas: usize = args.get("replicas", ServeConfig::default().replicas)?;
    let flight: usize = args.get("flight", 32)?;
    let run_seconds: u64 = args.get("run-seconds", 0)?;
    if batch == 0 || shards == 0 || replicas == 0 {
        return Err("--batch, --shards and --replicas must be non-zero".to_string());
    }

    let w = simpim_bench::load(dataset);
    let serve_cfg = ServeConfig {
        shards,
        replicas,
        max_batch: batch,
        queue_depth: (4 * batch).max(64),
        executor: simpim_bench::scaled_executor_config(),
        flight_capacity: flight,
        ..Default::default()
    };
    let engine = ServeEngine::open(serve_cfg, &w.data).map_err(|e| e.to_string())?;
    let mut net_cfg = simpim::net::NetConfig::default();
    if let Some(v) = args.flags.get("window") {
        net_cfg.window = v
            .parse::<usize>()
            .map_err(|e| format!("bad --window {v:?}: {e}"))?
            .max(1);
    }
    let window = net_cfg.window;
    let server = simpim::net::NetServer::bind(addr.as_str(), net_cfg, engine)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr();
    println!(
        "simpim net-serve: {} ({} rows x {} dims) on {bound}, {shards} shard(s) x {replicas} replica(s), window {window}",
        dataset.name(),
        w.data.len(),
        w.data.dim(),
    );
    if let Some(path) = args.flags.get("ready-file") {
        // Written only after bind succeeds, so a poller that sees the
        // file can connect immediately.
        std::fs::write(path, bound.to_string())
            .map_err(|e| format!("writing --ready-file {path:?}: {e}"))?;
        println!("ready file: {path}");
    }
    if run_seconds > 0 {
        std::thread::sleep(std::time::Duration::from_secs(run_seconds));
        let stats = server.stats();
        server.shutdown();
        println!(
            "net-serve exiting after {run_seconds}s: {} connection(s), {} frame(s) served, {} shed, {} transport error(s)",
            stats.connections_accepted,
            stats.frames_tx,
            stats.sheds(),
            stats.transport_errors
        );
        return Ok(());
    }
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Open-loop load generator against a running `net-serve`: verifies
/// bit-identical answers against the offline scan, fires a fixed arrival
/// schedule over `--connections` pipelined TCP connections, fetches the
/// server's stats and flight dump over the wire, and gates on transport
/// errors, cross-wire trace propagation, and an optional p99 SLO. Emits
/// `BENCH_net.json` (+ `BENCH_net_flight.jsonl`).
fn cmd_net_bench(args: &Args) -> Result<(), String> {
    use std::time::Duration;
    let addr_s = args.required("addr")?.to_string();
    let addr: std::net::SocketAddr = addr_s
        .parse()
        .map_err(|e| format!("bad --addr {addr_s:?}: {e}"))?;
    let dataset = parse_dataset(args)?;
    let connections: usize = args.get("connections", 4)?;
    let requests: usize = args.get("requests", 400)?;
    let rate: f64 = args.get("rate", 200.0)?;
    let k: usize = args.get("k", 10)?;
    let timeout_ms: u64 = args.get("timeout-ms", 2000)?;
    let verify: usize = args.get("verify", 8)?;
    let slo_p99_us: u64 = args.get("slo-p99-us", 0)?;
    if connections == 0 || requests == 0 || rate <= 0.0 {
        return Err("--connections, --requests and --rate must be positive".to_string());
    }

    let mut run = BenchRun::start("net");
    run.set_dataset(&dataset.spec());
    run.config_entry("addr", Json::Str(addr_s.clone()));
    run.config_entry("connections", Json::Num(connections as f64));
    run.config_entry("requests", Json::Num(requests as f64));
    run.config_entry("rate", Json::Num(rate));
    run.config_entry("k", Json::Num(k as f64));
    run.config_entry("timeout_ms", Json::Num(timeout_ms as f64));
    run.config_entry("verify", Json::Num(verify as f64));
    run.config_entry("slo_p99_us", Json::Num(slo_p99_us as f64));

    // The server generated the same deterministic workload from the same
    // dataset name and SIMPIM_SCALE, so the offline scan over our local
    // copy is ground truth for its answers.
    let w = simpim_bench::load(dataset);
    let probe = simpim::net::NetClient::connect(addr)
        .map_err(|e| format!("connecting to {addr_s}: {e}"))?;
    probe.ping().map_err(|e| format!("ping {addr_s}: {e}"))?;

    // Part 1 — correctness gate: every networked answer bit-identical to
    // the offline scan (ids AND f64 bit patterns).
    let mut mismatches = 0usize;
    for i in 0..verify {
        let q = &w.queries[i % w.queries.len()];
        let got = probe
            .knn(q, k, Duration::from_millis(timeout_ms))
            .map_err(|e| format!("verify query {i}: {e}"))?;
        let truth = knn_standard(&w.data, q, k, simpim::similarity::Measure::EuclideanSq)
            .map_err(|e| e.to_string())?;
        let identical = got.len() == truth.neighbors.len()
            && got
                .iter()
                .zip(&truth.neighbors)
                .all(|(&(gid, gv), &(tid, tv))| gid == tid as u64 && gv.to_bits() == tv.to_bits());
        if !identical {
            mismatches += 1;
            eprintln!("verify query {i}: networked answer diverged from the offline scan");
        }
    }

    // Part 2 — the open-loop schedule.
    let cfg = simpim::net::OpenLoopConfig {
        connections,
        total: requests,
        rate,
        k,
        timeout: Duration::from_millis(timeout_ms),
    };
    let report = simpim::net::run_open_loop(addr, &cfg, &w.queries).map_err(|e| e.to_string())?;

    // Part 3 — the server's own story, fetched over the wire.
    let server_stats_json = probe.stats_json().map_err(|e| format!("stats: {e}"))?;
    let server_stats =
        Json::parse(&server_stats_json).map_err(|e| format!("parsing server stats: {e}"))?;
    let flight_dump = probe.flight_dump().map_err(|e| format!("flight: {e}"))?;
    drop(probe);
    let flight_path = std::env::var("SIMPIM_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
        .join("BENCH_net_flight.jsonl");
    if let Err(e) = std::fs::write(&flight_path, &flight_dump) {
        eprintln!("warning: could not write {}: {e}", flight_path.display());
    }

    // Cross-wire trace propagation: trace ids this process minted must
    // reappear in the server's flight recorder.
    let server_traces: std::collections::HashSet<u64> =
        simpim::serve::flight::parse_dump(&flight_dump)?
            .iter()
            .map(|t| t.trace_id)
            .collect();
    let client_traces: std::collections::HashSet<u64> = report.trace_ids.iter().copied().collect();
    let cross_wire = client_traces.intersection(&server_traces).count();

    let latency_summary = report.latency_ns.summary_json();
    run.note_stage(
        "open_loop_wall",
        report.elapsed.as_nanos() as u64,
        report.answered,
        0,
        0,
    );
    run.push_extra(
        "open_loop",
        Json::obj([
            ("answered", Json::Num(report.answered as f64)),
            ("shed", Json::Num(report.shed as f64)),
            ("timeouts", Json::Num(report.timeout as f64)),
            ("failed", Json::Num(report.failed as f64)),
            (
                "transport_errors",
                Json::Num(report.transport_errors as f64),
            ),
            ("latency_ns", latency_summary),
            ("scheduled_rate", Json::Num(report.scheduled_rate)),
            ("achieved_rate", Json::Num(report.achieved_rate)),
            ("elapsed_ms", Json::Num(report.elapsed.as_secs_f64() * 1e3)),
        ]),
    );
    run.push_extra("server", server_stats);
    run.push_extra(
        "cross_wire",
        Json::obj([
            ("client_traces", Json::Num(client_traces.len() as f64)),
            ("server_traces", Json::Num(server_traces.len() as f64)),
            ("cross_wire_traces", Json::Num(cross_wire as f64)),
        ]),
    );
    run.push_extra(
        "verify",
        Json::obj([
            ("queries", Json::Num(verify as f64)),
            ("mismatches", Json::Num(mismatches as f64)),
        ]),
    );
    let slo_report = (slo_p99_us > 0).then(|| {
        simpim::obs::slo::evaluate_latency(
            "net_total",
            0.99,
            slo_p99_us * 1_000,
            &report.latency_ns,
        )
    });
    if let Some(r) = &slo_report {
        use simpim::obs::ToJson;
        run.push_extra("slo", Json::Arr(vec![r.to_json()]));
    }
    let path = run.finish();

    let q = |p: f64| report.latency_ns.quantile(p) as f64 / 1e3;
    println!(
        "net-bench against {addr_s} ({} x {} req @ {rate:.0}/s, k = {k}):",
        connections, requests
    );
    println!("  verify: {verify} queries, {mismatches} mismatch(es) vs the offline scan");
    println!(
        "  open loop: {}/{} answered, {} shed, {} timed out, {} failed, {} transport error(s)",
        report.answered,
        report.total(),
        report.shed,
        report.timeout,
        report.failed,
        report.transport_errors
    );
    println!(
        "  latency (from scheduled send): p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  ({:.0} req/s achieved)",
        q(0.5),
        q(0.95),
        q(0.99),
        report.achieved_rate
    );
    println!(
        "  cross-wire traces: {cross_wire} of {} client trace(s) found in the server flight dump -> {}",
        client_traces.len(),
        flight_path.display()
    );
    if let Some(r) = &slo_report {
        println!(
            "  slo: {} -> {} (attainment {:.4}%, budget remaining {:.1}%, burn {:.2}x)",
            r.objective,
            if r.attained { "attained" } else { "MISSED" },
            r.attainment * 100.0,
            r.budget_remaining * 100.0,
            r.burn_rate
        );
    }
    println!("  artifact: {}", path.display());

    if mismatches > 0 {
        return Err(format!(
            "{mismatches} networked answer(s) diverged from the offline scan"
        ));
    }
    if report.transport_errors > 0 {
        return Err(format!(
            "{} transport error(s) during the open-loop run (want zero)",
            report.transport_errors
        ));
    }
    if report.answered == 0 {
        return Err("no requests were answered".to_string());
    }
    if cross_wire == 0 {
        return Err(
            "no client trace id reappeared in the server flight dump — cross-wire trace \
             propagation is broken"
                .to_string(),
        );
    }
    if let Some(r) = &slo_report {
        if !r.attained {
            return Err(format!(
                "SLO missed: {} (attainment {:.4}%, {} violation(s) in {} event(s))",
                r.objective,
                r.attainment * 100.0,
                r.violations,
                r.events
            ));
        }
    }
    Ok(())
}

/// Evaluates SLOs against a `BENCH_serve*.json` artifact: either the
/// attainment reports the run stored (`extra.slo`), or fresh objectives
/// (`--p99-us`, `--availability`) evaluated from the artifact's metrics
/// snapshot. Exits non-zero when any objective is missed, so CI can
/// gate on it.
fn cmd_slo(argv: &[String]) -> Result<(), String> {
    let Some((path, rest)) = argv.split_first() else {
        return Err(
            "usage: simpim slo <BENCH_serve*.json> [--p99-us N] [--availability PCT]".to_string(),
        );
    };
    if path.starts_with("--") {
        return Err(
            "the artifact path must come first: simpim slo <BENCH_serve*.json> [--p99-us N]"
                .to_string(),
        );
    }
    let args = Args::parse(rest)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let artifact = simpim::obs::RunArtifact::from_json_text(&text)
        .map_err(|e| format!("parsing {path:?}: {e}"))?;

    let p99_us: u64 = args.get("p99-us", 0)?;
    let availability: f64 = args.get("availability", 0.0)?;
    use simpim::obs::FromJson;
    let reports: Vec<simpim::obs::SloReport> = if p99_us > 0 || availability > 0.0 {
        // Fresh objectives against the run's recorded histograms and
        // counters.
        let snap = simpim::obs::metrics::MetricsSnapshot::from_json(&artifact.metrics)
            .map_err(|e| format!("artifact {path:?} has no metrics snapshot: {e}"))?;
        let mut spec = simpim::obs::SloSpec::empty();
        if p99_us > 0 {
            spec = spec.latency("total", 0.99, p99_us * 1_000);
        }
        if availability > 0.0 {
            spec = spec.availability("queries", availability / 100.0);
        }
        let good = snap.counter("simpim.serve.answered_ok").unwrap_or(0);
        let total = good
            + snap.counter("simpim.serve.failed").unwrap_or(0)
            + snap.counter("simpim.serve.timeouts").unwrap_or(0);
        simpim::obs::slo::evaluate_spec(
            &spec,
            |name| {
                let full = if name.starts_with("simpim.") {
                    name.to_string()
                } else {
                    format!("simpim.serve.stage.{name}_ns")
                };
                snap.histogram(&full)
                    .or_else(|| snap.histogram("simpim.serve.latency_ns"))
                    .cloned()
            },
            |_| Some((good, total)),
        )
    } else {
        // The reports the run itself stored.
        let stored = artifact
            .extra
            .iter()
            .find(|(k, _)| k == "slo")
            .map(|(_, v)| v)
            .ok_or_else(|| {
                format!(
                    "{path:?} has no stored SLO reports; pass --p99-us / --availability to \
                     evaluate fresh objectives from its metrics"
                )
            })?;
        stored
            .as_arr()
            .unwrap_or(&[])
            .iter()
            .map(simpim::obs::SloReport::from_json)
            .collect::<Result<_, _>>()
            .map_err(|e| format!("parsing stored SLO reports in {path:?}: {e}"))?
    };
    if reports.is_empty() {
        return Err("no objectives to evaluate".to_string());
    }
    println!("SLO report for {path}:");
    let mut missed = 0;
    for r in &reports {
        println!(
            "  {:32} {}  events {}  violations {}  attainment {:.4}%  budget {:.1}%  burn {:.2}x",
            r.objective,
            if r.attained { "attained" } else { "MISSED  " },
            r.events,
            r.violations,
            r.attainment * 100.0,
            r.budget_remaining * 100.0,
            r.burn_rate
        );
        if !r.attained {
            missed += 1;
        }
    }
    if missed > 0 {
        return Err(format!("{missed} objective(s) missed"));
    }
    Ok(())
}

/// Renders a flight-recorder JSONL dump as per-stage waterfalls — one
/// block per retained request, slowest stages visualized against the
/// request's own span, with the routing/fault annotations underneath.
fn cmd_flight(argv: &[String]) -> Result<(), String> {
    let Some((path, rest)) = argv.split_first() else {
        return Err("usage: simpim flight <flight.jsonl> [--top N] [--outcome ok|degraded|failover|shed|timeout|failed]".to_string());
    };
    if path.starts_with("--") {
        return Err(
            "the dump path must come first: simpim flight <flight.jsonl> [--top N]".to_string(),
        );
    }
    let args = Args::parse(rest)?;
    let top: usize = args.get("top", 16)?;
    let outcome_filter = match args.flags.get("outcome") {
        None => None,
        Some(s) => Some(
            simpim::serve::Outcome::parse(s).ok_or_else(|| format!("unknown --outcome {s:?}"))?,
        ),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let mut traces = simpim::serve::flight::parse_dump(&text)?;
    if let Some(f) = outcome_filter {
        traces.retain(|t| t.outcome == f);
    }
    if traces.is_empty() {
        println!("no matching traces in {path}");
        return Ok(());
    }
    let shown = traces.len().min(top);
    println!(
        "{} trace(s) in {path}{} — showing {shown}:",
        traces.len(),
        outcome_filter
            .map(|f| format!(" with outcome {}", f.as_str()))
            .unwrap_or_default()
    );
    const WIDTH: usize = 40;
    for t in traces.iter().take(top) {
        t.validate_tree()
            .map_err(|e| format!("malformed trace {}: {e}", t.trace_id))?;
        println!(
            "\ntrace {} [{}] {} total {:.3} ms",
            t.trace_id,
            t.kind,
            t.outcome.as_str(),
            t.total_ns as f64 / 1e6
        );
        let root = t.root().expect("validated tree has a root");
        let (t0, t1) = (root.start_ns, root.end_ns.max(root.start_ns + 1));
        let span_ns = (t1 - t0) as f64;
        for s in &t.spans {
            // Depth = distance to the root through parent links.
            let mut depth = 0;
            let mut cur = s.parent;
            while let Some(p) = cur {
                depth += 1;
                cur = t
                    .spans
                    .iter()
                    .find(|q| q.span_id == p)
                    .and_then(|q| q.parent);
            }
            let lo = (((s.start_ns.max(t0) - t0) as f64 / span_ns) * WIDTH as f64) as usize;
            let hi =
                (((s.end_ns.clamp(t0, t1) - t0) as f64 / span_ns) * WIDTH as f64).ceil() as usize;
            let (lo, hi) = (lo.min(WIDTH), hi.clamp(lo.min(WIDTH), WIDTH));
            let mut bar = String::with_capacity(WIDTH);
            for i in 0..WIDTH {
                bar.push(if i >= lo && i < hi.max(lo + 1) {
                    '='
                } else {
                    ' '
                });
            }
            println!(
                "  {:28} |{bar}| {:9.3} ms",
                format!("{}{}", "  ".repeat(depth), s.name),
                s.duration_ns() as f64 / 1e6
            );
        }
        for a in &t.annotations {
            println!("    note: {a}");
        }
    }
    Ok(())
}

/// Walks a dotted path (`extra.kernels.knn_qps`) through an artifact's
/// JSON sections. The first segment selects the section
/// (`config|extra|metrics|totals`); the rest descend object keys.
fn artifact_metric(art: &simpim::obs::RunArtifact, path: &str) -> Result<f64, String> {
    let mut segs = path.split('.');
    let mut cur: &simpim::obs::Json = match segs.next() {
        Some("config") => &art.config,
        Some("metrics") => &art.metrics,
        Some("totals") => &art.totals,
        Some("extra") => {
            let sect = segs
                .next()
                .ok_or_else(|| format!("metric path {path:?}: extra needs a section key"))?;
            art.extra
                .iter()
                .find(|(k, _)| k == sect)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("metric path {path:?}: extra section {sect:?} not found"))?
        }
        other => {
            return Err(format!(
                "metric path must start with config|extra|metrics|totals, got {other:?}"
            ))
        }
    };
    for seg in segs {
        let simpim::obs::Json::Obj(entries) = cur else {
            return Err(format!(
                "metric path {path:?}: {seg:?} reached a non-object"
            ));
        };
        cur = entries
            .iter()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("metric path {path:?}: key {seg:?} not found"))?;
    }
    match cur {
        simpim::obs::Json::Num(v) => Ok(*v),
        other => Err(format!("metric path {path:?} is not a number: {other:?}")),
    }
}

/// Renders one run artifact as a per-stage table, diffs two, or — with
/// `--assert-no-regress` — gates a throughput metric between two runs.
fn cmd_report(paths: &[String]) -> Result<(), String> {
    let load = |p: &String| -> Result<simpim::obs::RunArtifact, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("reading artifact {p:?}: {e}"))?;
        let artifact = simpim::obs::RunArtifact::from_json_text(&text)
            .map_err(|e| format!("parsing artifact {p:?}: {e}"))?;
        let problems = artifact.validate();
        if !problems.is_empty() {
            return Err(format!("invalid artifact {p:?}: {}", problems.join("; ")));
        }
        Ok(artifact)
    };
    // Split flags from positional artifact paths.
    let mut files: Vec<&String> = Vec::new();
    let mut assert_no_regress = false;
    let mut metric = "extra.kernels.knn_qps".to_string();
    let mut max_drop_pct = 10.0f64;
    let mut it = paths.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--assert-no-regress" => assert_no_regress = true,
            "--metric" => {
                metric = it
                    .next()
                    .ok_or_else(|| "--metric needs a dotted path".to_string())?
                    .clone();
            }
            "--max-drop-pct" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--max-drop-pct needs a number".to_string())?;
                max_drop_pct = v
                    .parse::<f64>()
                    .map_err(|e| format!("--max-drop-pct {v:?}: {e}"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown report flag {other:?}"));
            }
            _ => files.push(arg),
        }
    }
    if assert_no_regress {
        let [old_p, new_p] = files[..] else {
            return Err(
                "usage: simpim report --assert-no-regress <old.json> <new.json> \
                        [--metric extra.kernels.knn_qps] [--max-drop-pct 10]"
                    .to_string(),
            );
        };
        let old_v = artifact_metric(&load(old_p)?, &metric)?;
        let new_v = artifact_metric(&load(new_p)?, &metric)?;
        if old_v <= 0.0 {
            return Err(format!(
                "{metric}: old value {old_v} is not a positive throughput — nothing to gate on"
            ));
        }
        let change_pct = (new_v - old_v) / old_v * 100.0;
        println!(
            "{metric}: {old_v:.3} -> {new_v:.3} ({change_pct:+.1}%, threshold -{max_drop_pct:.1}%)"
        );
        if change_pct < -max_drop_pct {
            return Err(format!(
                "regression: {metric} dropped {:.1}% (> {max_drop_pct:.1}% allowed) \
                 from {old_p} to {new_p}",
                -change_pct
            ));
        }
        println!("no regression: within threshold");
        return Ok(());
    }
    match files[..] {
        [a] => {
            print!("{}", load(a)?.render_table());
            Ok(())
        }
        [a, b] => {
            print!("{}", load(a)?.render_diff(&load(b)?));
            Ok(())
        }
        _ => Err("usage: simpim report <a.json> [<b.json>]".to_string()),
    }
}

const USAGE: &str =
    "usage: simpim <info|knn|kmeans|dbscan|outliers|serve-bench|net-serve|net-bench|slo|flight|report> [options]
  info        --data F
  knn         --data F [--query-row 0] [--k 10] [--measure ed|cs|pcc] [--pim]
  kmeans      --data F [--k 8] [--algo lloyd|elkan|drake|yinyang] [--max-iters 25] [--seed 7] [--pim]
  dbscan      --data F [--eps 0.2] [--min-pts 5] [--pim]
  outliers    --data F [--k 5] [--m 10] [--pim]
  serve-bench [--dataset year] [--k 10] [--batch 8] [--clients 4] [--queries 64] [--shards 2]
              [--replicas R] [--kill-after N] [--slo-p99-us U] [--flight N]
              closed-loop load generator for the serving engine; writes BENCH_serve.json.
              --replicas R programs each shard onto R banks (default: SIMPIM_REPLICAS or 1);
              --kill-after N fail-stops bank (0, 0) after N answered queries and requires the
              run to finish with zero failed queries and the replica re-replicated;
              --slo-p99-us U declares `p99(total) <= U us` + 99.9% availability, names the
              artifact BENCH_serve_slo.json, and fails the run when an objective is missed;
              --flight N retains the N slowest + N anomalous request traces and writes them
              to BENCH_serve_flight.jsonl (default 32)
  net-serve   [--addr 127.0.0.1:0] [--dataset year] [--shards 2] [--replicas R] [--batch 8]
              [--flight 32] [--window N] [--ready-file PATH] [--run-seconds 0]
              serve the engine over TCP (length-prefixed binary frames) until killed;
              --addr with port 0 binds an ephemeral port, printed and (with --ready-file)
              written to a file once accepting; --window bounds in-flight requests per
              connection (default: SIMPIM_NET_WINDOW or 32); --run-seconds N exits after N s
  net-bench   --addr HOST:PORT [--dataset year] [--connections 4] [--requests 400]
              [--rate 200] [--k 10] [--timeout-ms 2000] [--verify 8] [--slo-p99-us U]
              open-loop load generator over pipelined TCP connections; writes BENCH_net.json
              and BENCH_net_flight.jsonl. Verifies answers bit-identical to the offline scan,
              requires zero transport errors and >= 1 cross-wire trace in the server flight
              dump, and fails when the client-measured p99 exceeds --slo-p99-us
  slo         <BENCH_serve*.json> [--p99-us N] [--availability PCT]
              evaluate SLOs from a run artifact (stored reports, or fresh objectives against
              its metrics snapshot); exits non-zero when an objective is missed
  flight      <flight.jsonl> [--top 16] [--outcome ok|degraded|failover|shed|timeout|failed]
              render flight-recorder traces as per-stage waterfalls with fault annotations
  report      <a.json> [<b.json>]   render a BENCH_*.json artifact, or diff two
              --assert-no-regress <old.json> <new.json> [--metric extra.kernels.knn_qps]
              [--max-drop-pct 10]  exit non-zero when the named throughput metric (a dotted
              path through config|extra|metrics|totals) drops more than the threshold —
              gates the per-PR kernel bench trajectory
  any mining or bench command also takes --trace (writes span journal to simpim_trace.jsonl)";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(cmd.as_str(), "report" | "slo" | "flight") {
        // These take a positional file path, not --flag pairs.
        let out = match cmd.as_str() {
            "report" => cmd_report(rest),
            "slo" => cmd_slo(rest),
            _ => cmd_flight(rest),
        };
        return match out {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = Args::parse(rest).and_then(|args| {
        let tracing = args.switch("trace");
        if tracing {
            simpim::obs::trace::enable(1 << 16);
        }
        let out = match cmd.as_str() {
            "info" => cmd_info(&args),
            "knn" => cmd_knn(&args),
            "kmeans" => cmd_kmeans(&args),
            "dbscan" => cmd_dbscan(&args),
            "outliers" => cmd_outliers(&args),
            "serve-bench" => cmd_serve_bench(&args),
            "net-serve" => cmd_net_serve(&args),
            "net-bench" => cmd_net_bench(&args),
            other => Err(format!("unknown command {other:?}\n{USAGE}")),
        };
        if tracing {
            // Dump every thread's journal: orphaned records from exited
            // worker/scheduler threads first, then this thread's.
            let dump = simpim::obs::trace::dump_jsonl_all();
            let spans = dump.lines().count();
            let stats = simpim::obs::trace::journal_stats();
            let path = "simpim_trace.jsonl";
            match std::fs::write(path, dump) {
                Ok(()) => eprintln!(
                    "trace: {spans} spans ({} dropped) -> {path}",
                    stats.dropped_total
                ),
                Err(e) => eprintln!("trace: could not write {path}: {e}"),
            }
            simpim::obs::trace::disable();
        }
        out
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let a = Args::parse(&argv(&["--data", "x.csv", "--k", "5", "--pim"])).unwrap();
        assert_eq!(a.required("data").unwrap(), "x.csv");
        assert_eq!(a.get::<usize>("k", 1).unwrap(), 5);
        assert!(a.switch("pim"));
        assert!(!a.switch("verbose"));
        assert_eq!(a.get::<usize>("m", 9).unwrap(), 9);
    }

    #[test]
    fn rejects_positional_arguments_and_bad_values() {
        assert!(Args::parse(&argv(&["stray"])).is_err());
        let a = Args::parse(&argv(&["--k", "abc"])).unwrap();
        assert!(a.get::<usize>("k", 1).is_err());
        assert!(a.required("data").is_err());
    }
}

//! Offline stub for `serde_derive`.
//!
//! The workspace decorates types with `#[derive(serde::Serialize,
//! serde::Deserialize)]` but never serializes anything (there is no
//! serde_json or bincode anywhere), so the derives can expand to nothing.
//! The container has no network access to the crates registry, hence this
//! local stand-in.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

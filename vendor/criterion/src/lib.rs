//! Offline stub for `criterion`.
//!
//! The build container cannot reach a crates registry, so this crate
//! provides a minimal wall-clock harness with the same API shape the
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`). Each benchmark runs a short timed loop and prints one
//! line; there is no statistics engine, warm-up schedule, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many iterations the stub harness times per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u64 = 10;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.throughput.as_ref(),
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput.as_ref(),
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: time a small batch, then scale to the target budget.
        let start = Instant::now();
        for _ in 0..MIN_ITERS {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed() / MIN_ITERS as u32;
        let extra = if per_iter.is_zero() {
            1000
        } else {
            (TARGET_TIME.as_nanos() / per_iter.as_nanos().max(1)).min(100_000) as u64
        };
        let timed = Instant::now();
        for _ in 0..extra {
            std::hint::black_box(f());
        }
        self.elapsed = timed.elapsed();
        self.iters = extra;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<&Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            format!("  {:.1} Melem/s", *n as f64 / per_iter_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            format!("  {:.1} MiB/s", *n as f64 / per_iter_ns * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {per_iter_ns:>12.1} ns/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's own `black_box` path.
pub use std::hint::black_box;

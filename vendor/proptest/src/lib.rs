//! Offline stub for `proptest`.
//!
//! The build container cannot reach a crates registry, so this crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the `Strategy` trait over numeric ranges, tuples,
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()` for the
//! primitive types, `prop::num::f32/f64::ANY` (arbitrary bit patterns,
//! NaNs included), the `prop_oneof!` union macro, `prop_flat_map`, the
//! `proptest!` test-generating macro, `ProptestConfig::with_cases`, and
//! the `prop_assert*` macros. Generation is plain deterministic sampling
//! (no shrinking): each case derives its inputs from a splitmix64 stream
//! seeded by the case index, so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for case number `case` (stable across runs).
    pub fn for_case(case: u32) -> Self {
        Self {
            state: (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5157_11ED_0BAD_CAFE,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn usize_in(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        let span = (hi_inclusive - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Type-erase the strategy (parity with proptest's combinator).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let first = self.base.generate(rng);
        (self.f)(first).generate(rng)
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Arbitrary *bit patterns* — NaNs, infinities, and subnormals included —
// which is what codec round-trip tests want.
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// The strategy returned by [`any()`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — any value of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A uniform choice between same-typed strategies (the desugaring of
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! over zero strategies");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.usize_in(0, self.options.len() - 1);
        self.options[pick].generate(rng)
    }
}

/// `prop_oneof![a, b, c]` — uniform choice between strategies producing
/// the same value type. (Weighted arms are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// A constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let frac = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as the size argument of [`vec()`].
        pub trait IntoSizeRange {
            /// `(min, max)` inclusive.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start() <= self.end(), "empty size range");
                (*self.start(), *self.end())
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.usize_in(self.min, self.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }
    }

    pub mod num {
        /// `prop::num::f64::ANY` — arbitrary `f64` bit patterns.
        pub mod f64 {
            use crate::{Strategy, TestRng};

            pub struct AnyF64;

            impl Strategy for AnyF64 {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    f64::from_bits(rng.next_u64())
                }
            }

            pub const ANY: AnyF64 = AnyF64;
        }

        /// `prop::num::f32::ANY` — arbitrary `f32` bit patterns.
        pub mod f32 {
            use crate::{Strategy, TestRng};

            pub struct AnyF32;

            impl Strategy for AnyF32 {
                type Value = f32;
                fn generate(&self, rng: &mut TestRng) -> f32 {
                    f32::from_bits(rng.next_u64() as u32)
                }
            }

            pub const ANY: AnyF32 = AnyF32;
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.usize_in(0, self.options.len() - 1)].clone()
            }
        }

        /// `prop::sample::select(options)` — uniform choice.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty options");
            Select { options }
        }
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)*);
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__case);
                let ($($pat,)*) = $crate::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs((a, b) in (1usize..=8).prop_flat_map(|d| {
            (prop::collection::vec(0.0f64..=1.0, d), prop::collection::vec(0u64..16, d))
        }), pick in prop::sample::select(vec![1usize, 2, 4])) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert!(b.iter().all(|&x| x < 16));
            prop_assert!([1usize, 2, 4].contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = prop::collection::vec(0u32..100, 1..=10);
        let a = strat.generate(&mut crate::TestRng::for_case(3));
        let b = strat.generate(&mut crate::TestRng::for_case(3));
        assert_eq!(a, b);
    }
}

//! Offline stub for `serde`.
//!
//! This workspace only ever writes `#[derive(serde::Serialize,
//! serde::Deserialize)]`; no code path bounds on the traits or performs
//! (de)serialization. The stub therefore just re-exports the no-op derive
//! macros. If a future PR actually needs serialization it must vendor the
//! real crate (the build container is offline).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

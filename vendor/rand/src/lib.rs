//! Offline stub for `rand` 0.8.
//!
//! The build container cannot reach a crates registry, so this local crate
//! provides the subset of the rand 0.8 API the workspace actually calls:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! integer and float `Range`/`RangeInclusive`. Streams are deterministic
//! (splitmix64) — the workspace only relies on seeded reproducibility
//! within a build, never on matching upstream rand's exact streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform double in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let frac = rng.next_f64() as $t;
                self.start + frac * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // 53-bit fraction scaled so the endpoint is reachable.
                let frac = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stream — stands in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed ^ 0x51_7C_C1_B7_27_22_0A_95,
            }
        }
    }

    #[cfg(feature = "small_rng")]
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(0.0..1.0);
            assert_eq!(x, b.gen_range(0.0..1.0));
            assert!((0.0..1.0).contains(&x));
            let n = a.gen_range(3usize..10);
            assert_eq!(n, b.gen_range(3usize..10));
            assert!((3..10).contains(&n));
            let m = a.gen_range(-5i32..=5);
            assert_eq!(m, b.gen_range(-5i32..=5));
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn inclusive_float_covers_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }
}

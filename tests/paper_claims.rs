//! The paper's headline claims, asserted as integration tests at laptop
//! scale. These are the *shape* checks of EXPERIMENTS.md in executable
//! form: if a refactor breaks one of them, the reproduction has drifted.

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate, sample_queries, PaperDataset, SyntheticConfig};
use simpim::mining::kmeans::elkan::kmeans_elkan;
use simpim::mining::kmeans::lloyd::kmeans_lloyd;
use simpim::mining::kmeans::pim::PimAssist;
use simpim::mining::kmeans::KmeansConfig;
use simpim::mining::knn::pim::knn_pim_ed;
use simpim::mining::knn::standard::knn_standard;
use simpim::similarity::{Dataset, Measure, NormalizedDataset};
use simpim::simkit::HostParams;
use simpim_bounds::BoundCascade;

fn scaled(ds: PaperDataset, n: usize) -> Dataset {
    let spec = ds.spec();
    generate(&SyntheticConfig::from_spec(&spec, n))
}

/// A capacity-pressured executor, like the bench harnesses use.
fn pressured_executor(data: &Dataset, crossbars: usize) -> PimExecutor {
    let mut cfg = ExecutorConfig::default();
    cfg.pim.num_crossbars = crossbars;
    let nds = NormalizedDataset::assert_normalized(data.clone());
    PimExecutor::prepare_euclidean(cfg, &nds).expect("fits")
}

/// Section IV-A / Fig. 5: baselines are memory-bound — T_cache dominates.
#[test]
fn claim_baselines_are_memory_bound() {
    let data = scaled(PaperDataset::Msd, 3_000);
    let q = sample_queries(&data, 1, 0.02, 1).remove(0);
    let res = knn_standard(&data, &q, 10, Measure::EuclideanSq).unwrap();
    let frac = res
        .report
        .host_breakdown(&HostParams::default())
        .tcache_fraction();
    assert!(
        (0.55..=0.90).contains(&frac),
        "Tcache fraction {frac} (paper: 62–83%)"
    );
}

/// Section VI-C / Fig. 13: PIM accelerates kNN substantially, and the gain
/// grows with dimensionality (MSD d=420 vs Year-shaped d=90).
#[test]
fn claim_knn_speedup_grows_with_dimensionality() {
    let params = HostParams::default();
    let mut speedups = Vec::new();
    for (ds, n, budget) in [
        (PaperDataset::Year, 3_000, 1_311),
        (PaperDataset::Msd, 3_000, 1_311),
    ] {
        let data = scaled(ds, n);
        let q = sample_queries(&data, 1, 0.02, 2).remove(0);
        let base = knn_standard(&data, &q, 10, Measure::EuclideanSq).unwrap();
        let mut exec = pressured_executor(&data, budget);
        let pim = knn_pim_ed(&mut exec, &data, &BoundCascade::empty(), &q, 10).unwrap();
        assert_eq!(pim.indices(), base.indices());
        speedups.push(base.report.total_ms(&params) / pim.report.total_ms(&params));
    }
    assert!(speedups[0] > 1.5, "low-d speedup {}", speedups[0]);
    assert!(
        speedups[1] > speedups[0],
        "higher d must gain more: {speedups:?}"
    );
}

/// Section VI-C: GIST's uniform segment statistics make the compressed
/// PIM bound nearly useless — its speedup must be far below MSD's.
#[test]
fn claim_gist_resists_segmented_bounds() {
    let params = HostParams::default();
    let mut by_name = std::collections::HashMap::new();
    for (ds, n) in [(PaperDataset::Msd, 2_500), (PaperDataset::Gist, 2_500)] {
        let data = scaled(ds, n);
        let q = sample_queries(&data, 1, 0.02, 3).remove(0);
        let base = knn_standard(&data, &q, 10, Measure::EuclideanSq).unwrap();
        // Small budget forces LB_PIM-FNN compression on both datasets.
        let mut exec = pressured_executor(&data, 400);
        assert!(
            exec.bound_name().contains("FNN") || exec.bound_name().contains("SM"),
            "compression must kick in: {}",
            exec.bound_name()
        );
        let pim = knn_pim_ed(&mut exec, &data, &BoundCascade::empty(), &q, 10).unwrap();
        assert_eq!(pim.indices(), base.indices());
        by_name.insert(
            ds.name(),
            base.report.total_ms(&params) / pim.report.total_ms(&params),
        );
    }
    assert!(
        by_name["MSD"] > 2.0 * by_name["GIST"],
        "GIST must gain far less: {by_name:?}"
    );
}

/// Section VI-D: Standard k-means gains more from PIM than Elkan (whose
/// bound maintenance is not offloadable).
#[test]
fn claim_elkan_gains_least_from_pim() {
    let params = HostParams::default();
    let data = scaled(PaperDataset::NusWide, 1_200);
    let cfg = KmeansConfig {
        k: 24,
        max_iters: 8,
        seed: 7,
    };
    let nds = NormalizedDataset::assert_normalized(data.clone());
    let mut gains = Vec::new();
    for algo in ["lloyd", "elkan"] {
        let run = |pim: Option<&mut PimAssist<'_>>| match algo {
            "lloyd" => kmeans_lloyd(&data, &cfg, pim),
            _ => kmeans_elkan(&data, &cfg, pim),
        };
        let base = run(None).unwrap();
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        let mut assist = PimAssist::new(&mut exec);
        let pim = run(Some(&mut assist)).unwrap();
        assert_eq!(base.assignments, pim.assignments);
        gains.push(base.report.total_ns(&params) / pim.report.total_ns(&params));
    }
    assert!(
        gains[0] > gains[1],
        "Standard must out-gain Elkan: lloyd {:.2}x vs elkan {:.2}x",
        gains[0],
        gains[1]
    );
}

/// Fig. 8: the PIM path moves orders of magnitude less host data than the
/// conventional path (d·b → 3·b per object).
#[test]
fn claim_transfer_reduction() {
    let data = scaled(PaperDataset::Trevi, 1_000); // d = 4096
    let q = sample_queries(&data, 1, 0.02, 4).remove(0);
    let base = knn_standard(&data, &q, 10, Measure::EuclideanSq).unwrap();
    let mut exec = pressured_executor(&data, 131_072);
    let pim = knn_pim_ed(&mut exec, &data, &BoundCascade::empty(), &q, 10).unwrap();
    let base_bytes = base.report.profile.total_counters().bytes_streamed as f64;
    let pim_bytes = pim.report.profile.total_counters().bytes_streamed as f64;
    assert!(
        base_bytes / pim_bytes > 50.0,
        "d=4096 must slash transfer: {base_bytes} vs {pim_bytes}"
    );
}

//! Network front-end integration tests: the wire codec must round-trip
//! and reject hostile bytes without panicking, a live server must answer
//! garbage with typed error frames (or close cleanly) while staying
//! available to well-behaved clients, a slow reader must surface as
//! `overloaded` sheds without stalling other connections, and every
//! answer over the socket must stay bit-identical to the offline scan —
//! the serving.rs linearizability property, now across TCP.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use simpim::core::executor::ExecutorConfig;
use simpim::mining::knn::standard::knn_standard;
use simpim::net::wire::{
    decode_request, decode_response, encode_request, encode_response, Envelope, Request, Response,
    HEADER_LEN,
};
use simpim::net::{ErrorCode, NetClient, NetConfig, NetServer};
use simpim::reram::{CrossbarConfig, PimConfig};
use simpim::serve::{ServeConfig, ServeEngine};
use simpim::similarity::{Dataset, Measure};

/// A small platform that fits the tiny test datasets quickly (the
/// serving.rs harness configuration).
fn exec_cfg() -> ExecutorConfig {
    ExecutorConfig {
        pim: PimConfig {
            crossbar: CrossbarConfig {
                size: 16,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 4096,
            ..Default::default()
        },
        alpha: 1e6,
        operand_bits: 32,
        double_buffer: false,
        parallel_regions: true,
        faults: None,
        scrub_interval: 0,
    }
}

fn serve_cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        max_batch: 4,
        queue_depth: 64,
        spare_rows: 8,
        executor: exec_cfg(),
        ..Default::default()
    }
}

fn grid_rows(n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 11 + j * 17) % 89) as f64 / 88.0)
                .collect()
        })
        .collect()
}

fn open_server(rows: &[Vec<f64>], shards: usize, net_cfg: NetConfig) -> NetServer {
    let data = Dataset::from_rows(rows).unwrap();
    let engine = ServeEngine::open(serve_cfg(shards), &data).unwrap();
    NetServer::bind("127.0.0.1:0", net_cfg, engine).unwrap()
}

/// The offline truth over live `(id, row)` pairs, as in tests/serving.rs.
fn offline_truth(live: &[(usize, Vec<f64>)], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let ds = Dataset::from_rows(&live.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>()).unwrap();
    let res = knn_standard(&ds, query, k.min(ds.len()), Measure::EuclideanSq).unwrap();
    res.neighbors
        .iter()
        .map(|&(pos, v)| (live[pos].0, v))
        .collect()
}

// ---------------------------------------------------------------------
// Satellite: frame-codec round-trip + adversarial decoding (proptest).
// ---------------------------------------------------------------------

/// Printable-ASCII strings up to 64 bytes (the stub has no regex
/// strategies, so build them from a byte-vector strategy).
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..=0x7e, 0..64)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            0u32..=64,
            0u32..=10_000,
            prop::collection::vec(prop::num::f64::ANY, 0..32)
        )
            .prop_map(|(k, timeout_ms, vector)| Request::Query {
                k,
                timeout_ms,
                vector
            }),
        prop::collection::vec(prop::num::f64::ANY, 0..32).prop_map(|row| Request::Insert { row }),
        any::<u64>().prop_map(|id| Request::Delete { id }),
        Just(Request::Stats),
        Just(Request::Flush),
        Just(Request::Flight),
        Just(Request::Ping),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        prop::collection::vec((any::<u64>(), prop::num::f64::ANY), 0..32).prop_map(Response::Query),
        any::<u64>().prop_map(Response::Insert),
        any::<bool>().prop_map(Response::Delete),
        arb_text().prop_map(Response::Stats),
        Just(Response::Flush),
        arb_text().prop_map(Response::Flight),
        Just(Response::Pong),
        (0u16..=12, arb_text()).prop_map(|(c, message)| Response::Error {
            code: ErrorCode::from_u16(c),
            message
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Round-trip over every opcode with arbitrary payloads, including
    // NaN and infinities: compare re-encoded bytes, which is exactly the
    // bit-identity the serving path promises.
    #[test]
    fn request_frames_roundtrip_bit_identically(
        ids in (any::<u64>(), any::<u64>(), any::<u64>()),
        msg in arb_request(),
    ) {
        let env = Envelope { request_id: ids.0, trace_id: ids.1, span_id: ids.2, msg };
        let frame = encode_request(&env);
        let back = decode_request(&frame[4..]).unwrap();
        prop_assert_eq!(encode_request(&back), frame);
        prop_assert_eq!(back.request_id, env.request_id);
        prop_assert_eq!(back.trace_id, env.trace_id);
        prop_assert_eq!(back.span_id, env.span_id);
    }

    #[test]
    fn response_frames_roundtrip_bit_identically(
        ids in (any::<u64>(), any::<u64>(), any::<u64>()),
        msg in arb_response(),
    ) {
        let env = Envelope { request_id: ids.0, trace_id: ids.1, span_id: ids.2, msg };
        let frame = encode_response(&env);
        let back = decode_response(&frame[4..]).unwrap();
        prop_assert_eq!(encode_response(&back), frame);
    }

    // Decoding is total: arbitrary bytes either decode or return a
    // structured error — never a panic, never an allocation balloon.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_request(&payload);
        let _ = decode_response(&payload);
    }

    // A valid frame corrupted at any single byte position still decodes
    // or fails structurally — and truncation at every length fails.
    #[test]
    fn corrupted_and_truncated_frames_fail_structurally(
        msg in arb_request(),
        corrupt_at in 0usize..1_000_000,
        xor in 1u8..=255,
    ) {
        let frame = encode_request(&Envelope {
            request_id: 1, trace_id: 2, span_id: 3, msg,
        });
        let payload = &frame[4..];
        let mut bent = payload.to_vec();
        let pos = corrupt_at % bent.len();
        bent[pos] ^= xor;
        let _ = decode_request(&bent); // must not panic
        for cut in 0..payload.len() {
            prop_assert!(decode_request(&payload[..cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: adversarial bytes against a live server.
// ---------------------------------------------------------------------

/// Reads one length-prefixed frame with a read deadline; panics on a
/// malformed prefix so a hung server fails the test instead of wedging.
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e) => panic!("reading frame length: {e}"),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    assert!(
        (HEADER_LEN..(1 << 24)).contains(&len),
        "hostile length {len}"
    );
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("frame body");
    Some(payload)
}

#[test]
fn garbage_frames_get_typed_errors_and_never_kill_the_server() {
    let rows = grid_rows(12, 4);
    let server = open_server(&rows, 2, NetConfig::default());
    let addr = server.local_addr();

    // 1. A structurally valid frame with an unknown opcode: the server
    //    must answer a typed bad_frame error carrying our request id,
    //    and keep the connection alive for the next (valid) request.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut bad = encode_request(&Envelope {
        request_id: 77,
        trace_id: 5,
        span_id: 6,
        msg: Request::Ping,
    });
    bad[5] = 0x5A; // opcode byte
    raw.write_all(&bad).unwrap();
    let reply = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!(reply.request_id, 77, "error frame must echo the request id");
    assert!(matches!(
        reply.msg,
        Response::Error {
            code: ErrorCode::BadFrame,
            ..
        }
    ));
    let ping = encode_request(&Envelope {
        request_id: 78,
        trace_id: 0,
        span_id: 0,
        msg: Request::Ping,
    });
    raw.write_all(&ping).unwrap();
    let reply = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert!(
        matches!(reply.msg, Response::Pong),
        "connection must survive a request-scoped bad frame"
    );

    // 2. A wrong version byte: typed unsupported_version error, then the
    //    server closes (nothing after an alien header can be trusted).
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut alien = ping.clone();
    alien[4] = 9; // version byte
    raw.write_all(&alien).unwrap();
    let reply = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert!(matches!(
        reply.msg,
        Response::Error {
            code: ErrorCode::UnsupportedVersion,
            ..
        }
    ));
    assert!(
        read_frame(&mut raw).is_none(),
        "server must close after version skew"
    );

    // 3. A hostile length prefix: typed error frame, then close — and
    //    no multi-gigabyte allocation happened server-side.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 64]).unwrap();
    let reply = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert!(matches!(
        reply.msg,
        Response::Error {
            code: ErrorCode::BadFrame,
            ..
        }
    ));
    assert!(read_frame(&mut raw).is_none());

    // 4. Pure garbage bytes then hangup: the server just closes.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    drop(raw);

    // 5. A frame whose body contradicts its counts: typed error, alive.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut lying = encode_request(&Envelope {
        request_id: 99,
        trace_id: 0,
        span_id: 0,
        msg: Request::Query {
            k: 3,
            timeout_ms: 0,
            vector: vec![0.5; 4],
        },
    });
    // Bump the declared dimension without adding bytes.
    let dim_off = 4 + HEADER_LEN + 8;
    lying[dim_off] = lying[dim_off].wrapping_add(1);
    raw.write_all(&lying).unwrap();
    let reply = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!(reply.request_id, 99);
    assert!(matches!(
        reply.msg,
        Response::Error {
            code: ErrorCode::BadFrame,
            ..
        }
    ));

    // Through all of it, a well-behaved client still gets exact answers.
    let client = NetClient::connect(addr).unwrap();
    let live: Vec<(usize, Vec<f64>)> = rows.iter().cloned().enumerate().collect();
    let got = client.knn(&rows[0], 3, Duration::from_secs(5)).unwrap();
    let truth = offline_truth(&live, &rows[0], 3);
    assert_eq!(
        got,
        truth
            .iter()
            .map(|&(id, v)| (id as u64, v))
            .collect::<Vec<_>>()
    );
    assert!(server.stats().decode_errors >= 4);
}

// ---------------------------------------------------------------------
// Satellite: slow reader -> shed path, no cross-connection stalls.
// ---------------------------------------------------------------------

#[test]
fn slow_reader_is_shed_and_does_not_stall_other_connections() {
    let rows = grid_rows(16, 4);
    let cfg = NetConfig {
        window: 2,
        write_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let server = open_server(&rows, 2, cfg);
    let addr = server.local_addr();

    // The abuser: floods 40 pipelined queries and reads nothing. With a
    // window of 2, almost all must be shed with typed overloaded frames
    // — the transport edge of the admission-control path.
    let mut abuser = TcpStream::connect(addr).unwrap();
    for i in 0..40u64 {
        let frame = encode_request(&Envelope {
            request_id: i,
            trace_id: 0,
            span_id: 0,
            msg: Request::Query {
                k: 3,
                timeout_ms: 5_000,
                vector: rows[0].clone(),
            },
        });
        abuser.write_all(&frame).unwrap();
    }

    // Meanwhile a polite client on its own connection must make normal
    // progress, answering bit-identically to the offline scan.
    let client = NetClient::connect(addr).unwrap();
    let live: Vec<(usize, Vec<f64>)> = rows.iter().cloned().enumerate().collect();
    for q in rows.iter().take(8) {
        let got = client.knn(q, 3, Duration::from_secs(5)).unwrap();
        let truth = offline_truth(&live, q, 3);
        assert_eq!(
            got,
            truth
                .iter()
                .map(|&(id, v)| (id as u64, v))
                .collect::<Vec<_>>()
        );
    }

    // Now drain the abuser's socket: every request got a frame back —
    // answered or typed-overloaded, never silence, never a hang.
    let mut answered = 0u64;
    let mut shed = 0u64;
    for _ in 0..40 {
        let payload = read_frame(&mut abuser).expect("every request gets a response frame");
        match decode_response(&payload).unwrap().msg {
            Response::Query(_) => answered += 1,
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            } => shed += 1,
            other => panic!("unexpected response to the abuser: {other:?}"),
        }
    }
    assert_eq!(answered + shed, 40);
    assert!(shed > 0, "a window of 2 must shed a 40-deep flood");
    let stats = server.stats();
    assert!(
        stats.sheds() >= shed,
        "server accounting must see the sheds"
    );
    assert_eq!(stats.transport_errors, 0);
}

// ---------------------------------------------------------------------
// Satellite: socket-path linearizability — concurrent net mutations vs
// the offline scan, bit-identical (the serving.rs harness over TCP).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn networked_mutations_and_queries_match_the_offline_scan(
        shape in ((6usize..=12, 2usize..=4), (1usize..=2, 1usize..=4)),
        flat in prop::collection::vec(0.0f64..=1.0, 12 * 4),
        inserts in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 0..3),
        delete_picks in prop::collection::vec(0usize..1000, 0..3),
        queries in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 1..3),
    ) {
        let ((n, d), (shards, k)) = shape;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| flat[i * d..(i + 1) * d].to_vec()).collect();
        let shards = shards.min(n);
        let server = open_server(&rows, shards, NetConfig::default());
        let client = NetClient::connect(server.local_addr()).unwrap();

        // Mirror model, as in tests/serving.rs — but every mutation goes
        // over the socket.
        let mut live: Vec<(usize, Vec<f64>)> = rows.iter().cloned().enumerate().collect();
        for (next_id, row) in (n..).zip(inserts.iter()) {
            let row: Vec<f64> = row[..d].to_vec();
            let id = client.insert(&row).unwrap();
            prop_assert_eq!(id, next_id as u64);
            live.push((id as usize, row));
        }
        for pick in &delete_picks {
            if live.len() <= shards {
                break; // keep every shard non-empty
            }
            let pos = pick % live.len();
            let (id, _) = live.remove(pos);
            prop_assert!(client.delete(id as u64).unwrap());
            prop_assert!(!client.delete(id as u64).unwrap(), "double delete must miss");
        }

        // Pipelined queries: submit all, then resolve — the responses
        // must each equal the offline truth bit-for-bit.
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                client
                    .submit(Request::Query {
                        k: k as u32,
                        timeout_ms: 5_000,
                        vector: q[..d].to_vec(),
                    })
                    .unwrap()
            })
            .collect();
        for (q, h) in queries.iter().zip(handles) {
            let got = h.wait_query().unwrap();
            let truth = offline_truth(&live, &q[..d], k);
            let truth: Vec<(u64, f64)> = truth.iter().map(|&(id, v)| (id as u64, v)).collect();
            prop_assert_eq!(&got, &truth);
        }

        // Compaction over the wire must not change any answer.
        client.flush().unwrap();
        for q in &queries {
            let got = client.knn(&q[..d], k, Duration::from_secs(5)).unwrap();
            let truth = offline_truth(&live, &q[..d], k);
            let truth: Vec<(u64, f64)> = truth.iter().map(|&(id, v)| (id as u64, v)).collect();
            prop_assert_eq!(&got, &truth);
        }
    }
}

// ---------------------------------------------------------------------
// Cross-wire trace propagation: the trace id a client mints must appear
// as the flight-recorder trace id server-side, with a valid span tree.
// ---------------------------------------------------------------------

#[test]
fn client_trace_ids_reconstruct_in_the_server_flight_dump() {
    let rows = grid_rows(12, 4);
    let server = open_server(&rows, 2, NetConfig::default());
    let client = NetClient::connect(server.local_addr()).unwrap();

    let handle = client
        .submit(Request::Query {
            k: 3,
            timeout_ms: 5_000,
            vector: rows[1].clone(),
        })
        .unwrap();
    let minted = handle.trace.trace_id;
    assert_ne!(minted, 0);
    handle.wait_query().unwrap();

    let dump = client.flight_dump().unwrap();
    let traces = simpim::serve::flight::parse_dump(&dump).unwrap();
    let ours = traces
        .iter()
        .find(|t| t.trace_id == minted)
        .expect("the client-minted trace id must appear in the server flight dump");
    ours.validate_tree().unwrap();
    assert!(!ours.spans.is_empty());

    // The stats opcode reports both sections of the taxonomy.
    let stats = client.stats_json().unwrap();
    let v = simpim::obs::Json::parse(&stats).unwrap();
    assert!(v.get("engine").is_some());
    assert!(v.get("net").is_some());
}

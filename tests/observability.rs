//! Observability invariants across the stack (DESIGN.md §8): histogram
//! bucketing, span nesting, counter-delta correctness, artifact
//! round-trips, and — most importantly — that instrumentation never
//! changes a mining result.

use std::sync::Mutex;

use proptest::prelude::*;
use simpim::datasets::{generate, SyntheticConfig};
use simpim::mining::knn::algorithms::fnn_cascade;
use simpim::mining::knn::cascade::knn_cascade;
use simpim::mining::knn::standard::knn_standard;
use simpim::obs::{Histogram, Json, RunArtifact, StageRecord, ToJson};
use simpim::similarity::Measure;

/// Tracing enable/disable is process-global; tests that toggle it must
/// not interleave.
static TRACE_GATE: Mutex<()> = Mutex::new(());

#[test]
fn histogram_bucket_boundaries_are_log_linear() {
    // Values below the linear cutoff land in their own exact buckets.
    for v in 0..8u64 {
        assert_eq!(Histogram::bucket_lower_bound(Histogram::bucket_index(v)), v);
    }
    // Lower bounds are monotonically non-decreasing and every value sits
    // inside [lower_bound(i), lower_bound(i + 1)).
    let mut prev = 0;
    for i in 0..200 {
        let lb = Histogram::bucket_lower_bound(i);
        assert!(lb >= prev, "bucket {i} lower bound went backwards");
        prev = lb;
    }
    for v in [8u64, 9, 100, 1_000, 65_537, u64::MAX / 2, u64::MAX] {
        let i = Histogram::bucket_index(v);
        assert!(Histogram::bucket_lower_bound(i) <= v);
        if Histogram::bucket_lower_bound(i + 1) != u64::MAX {
            assert!(v < Histogram::bucket_lower_bound(i + 1));
        }
    }
    // Relative error of the log-linear approximation stays within one
    // sub-bucket (25% for SUB_BITS = 2).
    for v in [10u64, 123, 9_999, 1 << 40] {
        let lb = Histogram::bucket_lower_bound(Histogram::bucket_index(v));
        assert!((v - lb) as f64 / v as f64 <= 0.25 + 1e-12);
    }
}

#[test]
fn histogram_merge_is_count_preserving() {
    let mut a = Histogram::new();
    let mut b = Histogram::new();
    for v in [1u64, 5, 9, 200, 7_000] {
        a.record(v);
    }
    for v in [0u64, 3, 1_000_000] {
        b.record(v);
    }
    let (count_a, count_b) = (a.count, b.count);
    let sum = a.sum + b.sum;
    a.merge(&b);
    assert_eq!(a.count, count_a + count_b);
    assert_eq!(a.sum, sum);
    // Merged per-bucket counts must equal the union of the inputs.
    let total: u64 = a.nonzero_buckets().iter().map(|&(_, c)| c).sum();
    assert_eq!(total, a.count);
}

#[test]
fn spans_nest_and_order_under_real_mining() {
    let _gate = TRACE_GATE.lock().unwrap();
    let ds = generate(&SyntheticConfig {
        n: 200,
        d: 32,
        clusters: 4,
        cluster_std: 0.05,
        stat_uniformity: 0.1,
        seed: 42,
    });
    let cascade = fnn_cascade(&ds).expect("valid split");
    let q = ds.row(0).to_vec();

    simpim::obs::trace::enable(4096);
    simpim::obs::trace::clear();
    let _ = knn_cascade(&ds, &cascade, &q, 5, Measure::EuclideanSq).expect("float measure");
    let spans = simpim::obs::trace::drain();
    simpim::obs::trace::disable();

    let root = spans
        .iter()
        .find(|s| s.name == "mining.knn.cascade")
        .expect("query span recorded");
    assert_eq!(root.depth, 0);
    assert!(root.end_ns >= root.start_ns);
    let filter = spans
        .iter()
        .find(|s| s.name == "mining.knn.filter")
        .expect("filter span recorded");
    assert_eq!(filter.parent, Some(root.id), "filter nests under query");
    assert_eq!(filter.depth, 1);
    let refine = spans
        .iter()
        .find(|s| s.name == "mining.knn.refine")
        .expect("refine span recorded");
    assert_eq!(refine.parent, Some(root.id));
    assert!(
        filter.start_ns <= refine.start_ns,
        "filter opens before refine"
    );
    // Ids are journal-ordered.
    for w in spans.windows(2) {
        assert!(w[0].id < w[1].id);
    }
    // The query span carries its open-time attributes.
    assert!(root.attrs.iter().any(|(k, v)| k == "k" && *v == 5.0));
}

#[test]
fn counter_deltas_match_work_done() {
    let ds = generate(&SyntheticConfig {
        n: 150,
        d: 16,
        clusters: 3,
        cluster_std: 0.05,
        stat_uniformity: 0.1,
        seed: 9,
    });
    let cascade = fnn_cascade(&ds).expect("valid split");
    let q = ds.row(1).to_vec();

    let name = |stage: &str, suffix: &str| format!("simpim.bounds.{stage}.{suffix}");
    let stage0 = cascade.names()[0].clone();
    let before = simpim::obs::metrics::snapshot();
    let seen0 = before.counter(&name(&stage0, "seen")).unwrap_or(0);
    let queries = 3usize;
    for _ in 0..queries {
        let _ = knn_cascade(&ds, &cascade, &q, 5, Measure::EuclideanSq).expect("float measure");
    }
    let after = simpim::obs::metrics::snapshot();
    // The first cascade stage sees every object, once per query.
    assert_eq!(
        after.counter(&name(&stage0, "seen")).unwrap_or(0) - seen0,
        (ds.len() * queries) as u64,
        "first-stage seen counter must advance by N per query"
    );
    // Pruned never exceeds seen (per-delta).
    let pruned0 = after.counter(&name(&stage0, "pruned")).unwrap_or(0)
        - before.counter(&name(&stage0, "pruned")).unwrap_or(0);
    assert!(pruned0 <= (ds.len() * queries) as u64);
}

#[test]
fn artifact_round_trips_through_json() {
    let mut a = RunArtifact::new("roundtrip");
    a.git = Some("abc1234-dirty".into());
    a.dataset = Json::obj([("name", Json::Str("MSD".into())), ("n", Json::Num(992.0))]);
    a.config = Json::obj([("scale", Json::Num(0.01))]);
    a.stages.push(StageRecord {
        name: "knn/ED".into(),
        time_ns: 123_456,
        calls: 5,
        ops: 42,
        bytes: 1 << 20,
    });
    a.totals = Json::obj([("stage_time_ns", Json::Num(123_456.0))]);
    let mut h = Histogram::new();
    h.record(7);
    h.record(1_000);
    a.metrics = Json::obj([("simpim.test.h", h.to_json())]);
    a.push_extra("note", Json::Str("integration".into()));

    let text = a.to_json_text();
    let back = RunArtifact::from_json_text(&text).expect("parse back");
    assert_eq!(back, a);
    assert!(back.validate().is_empty());
    // A doctored schema version is flagged.
    let mut wrong = back.clone();
    wrong.schema_version += 1;
    assert!(!wrong.validate().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Instrumentation must be observation-only: the exact same neighbors
    // come back with tracing enabled and disabled.
    #[test]
    fn tracing_never_changes_mining_results(seed in 0u64..1_000, k in 1usize..8) {
        let _gate = TRACE_GATE.lock().unwrap();
        let ds = generate(&SyntheticConfig {
            n: 120,
            d: 24,
            clusters: 4,
            cluster_std: 0.05,
            stat_uniformity: 0.1,
            seed,
        });
        let cascade = fnn_cascade(&ds).expect("valid split");
        let q = ds.row(seed as usize % ds.len()).to_vec();

        simpim::obs::trace::disable();
        let off_cascade = knn_cascade(&ds, &cascade, &q, k, Measure::EuclideanSq)
            .expect("float measure");
        let off_standard = knn_standard(&ds, &q, k, Measure::EuclideanSq)
            .expect("float measure");

        simpim::obs::trace::enable(1 << 14);
        let on_cascade = knn_cascade(&ds, &cascade, &q, k, Measure::EuclideanSq)
            .expect("float measure");
        let on_standard = knn_standard(&ds, &q, k, Measure::EuclideanSq)
            .expect("float measure");
        simpim::obs::trace::disable();
        simpim::obs::trace::clear();

        prop_assert_eq!(off_cascade.neighbors, on_cascade.neighbors);
        prop_assert_eq!(&off_standard.neighbors, &on_standard.neighbors);
        // And the cascade agrees with the exhaustive scan on indices.
        prop_assert_eq!(off_standard.indices(), on_cascade.indices());
    }
}

//! Tail-latency attribution integration tests (DESIGN.md §12): the
//! engine's [`EngineStats`] counters must agree exactly with the
//! `simpim.serve.*` metrics registry after a mixed workload, per-query
//! span trees reconstructed from coalesced batches must be complete and
//! well-parented at every thread count, SLO reports must call attained
//! and blown objectives correctly, and the flight recorder must retain
//! the full trace of every anomalous request.
//!
//! This file is its own test binary on purpose: the metrics registry is
//! process-global, so these tests reset it and must not share a process
//! with other registry users. Within the binary they serialize on
//! [`REGISTRY_GATE`].

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use simpim::core::executor::ExecutorConfig;
use simpim::obs::SloSpec;
use simpim::reram::{CrossbarConfig, PimConfig};
use simpim::serve::flight::parse_dump;
use simpim::serve::{EngineStats, Outcome, ServeConfig, ServeEngine};
use simpim::similarity::Dataset;

/// The metrics registry is process-global; every test here opens an
/// engine (which writes `simpim.serve.*` metrics), so they must not
/// interleave with the drift audit that resets and reads the registry.
static REGISTRY_GATE: Mutex<()> = Mutex::new(());

fn dataset(n: usize, d: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 13 + j * 29) % 101) as f64 / 100.0)
                .collect()
        })
        .collect();
    Dataset::from_rows(&rows).unwrap()
}

fn queries(n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|q| {
            (0..d)
                .map(|j| ((q * 31 + j * 7) % 19) as f64 / 19.0)
                .collect()
        })
        .collect()
}

fn cfg(shards: usize, replicas: usize) -> ServeConfig {
    ServeConfig {
        shards,
        replicas,
        max_batch: 4,
        queue_depth: 64,
        spare_rows: 8,
        executor: ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 16,
                    adc_bits: 12,
                    ..Default::default()
                },
                num_crossbars: 4096,
                ..Default::default()
            },
            alpha: 1e6,
            operand_bits: 32,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        },
        ..Default::default()
    }
}

/// Drives queries until every shard is back to `healthy` replicas (the
/// repair tick runs between commands, but only traffic detects losses).
fn drive_until_recovered(engine: &ServeEngine, q: &[f64], healthy: usize) -> EngineStats {
    for _ in 0..32 {
        let _ = engine.knn(q, 3).unwrap();
        let stats = engine.stats().unwrap();
        if stats.shards.iter().all(|s| s.healthy == healthy) {
            return stats;
        }
    }
    panic!("lost replicas were not re-replicated");
}

// Satellite: the stats/metrics drift audit. Every counter the engine
// reports in `EngineStats` must have an identically-valued
// `simpim.serve.*` metric after a mixed workload that exercises
// queries, batches, inserts, deletes, a flush, deadline expiry,
// bank loss (failover + repair), and total replica loss (degraded).
#[test]
fn engine_stats_and_metrics_never_drift() {
    let _gate = REGISTRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    simpim::obs::metrics::reset();

    let data = dataset(32, 4);
    let engine = ServeEngine::open(cfg(2, 2), &data).unwrap();
    let qs = queries(8, 4);

    // Clean batched queries.
    engine.knn_batch(&qs, 3).unwrap();
    // Mutations: insert, delete (hit and miss), forced compaction.
    let id = engine.insert(&qs[0]).unwrap();
    assert!(engine.delete(id).unwrap());
    assert!(!engine.delete(id).unwrap());
    assert!(engine.delete(0).unwrap());
    engine.flush().unwrap();
    // A deadline that expires in the queue.
    assert!(engine
        .knn_deadline(&qs[0], 3, Duration::from_nanos(0))
        .is_err());
    // One bank lost: detection, failover, repair.
    engine.kill_bank(0, 0).unwrap();
    drive_until_recovered(&engine, &qs[0], 2);
    // Every replica of shard 0 lost: degraded host-mirror answers.
    engine.kill_bank(0, 0).unwrap();
    engine.kill_bank(0, 1).unwrap();
    engine.knn_batch(&qs[..2], 3).unwrap();
    let stats = drive_until_recovered(&engine, &qs[0], 2);

    // The workload actually exercised every counter it claims to.
    assert!(stats.queries >= 10 && stats.batches >= 2);
    assert!(stats.inserts == 1 && stats.deletes == 3);
    assert!(stats.timeouts >= 1);
    assert!(stats.failovers >= 1 && stats.repairs >= 3);
    assert!(stats.degraded_queries >= 2);
    assert!(stats.answered_ok >= 10 && stats.failed == 0);

    // The audit: every stats counter == its metric, bit for bit.
    let snap = simpim::obs::metrics::snapshot();
    let pairs: [(&str, u64); 12] = [
        ("queries", stats.queries),
        ("batches", stats.batches),
        ("inserts", stats.inserts),
        ("deletes", stats.deletes),
        ("timeouts", stats.timeouts),
        ("overloaded", stats.overloaded),
        ("sheds", stats.sheds),
        ("failovers", stats.failovers),
        ("repairs", stats.repairs),
        ("degraded_queries", stats.degraded_queries),
        ("answered_ok", stats.answered_ok),
        ("failed", stats.failed),
    ];
    for (name, from_stats) in pairs {
        let metric = format!("simpim.serve.{name}");
        let from_metrics = snap.counter(&metric).unwrap_or(0);
        assert_eq!(
            from_metrics, from_stats,
            "stats/metrics drift on {metric}: metric {from_metrics} != stats {from_stats}",
        );
    }
}

// SLO engine end to end: a generous latency objective and the
// availability objective are attained with a full error budget; an
// impossible latency objective is reported blown with burn rate >= 1.
#[test]
fn slo_reports_attained_and_blown_objectives() {
    let _gate = REGISTRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    simpim::obs::metrics::reset();

    let mut c = cfg(2, 1);
    c.slo = SloSpec::empty()
        .latency("total", 0.99, 60_000_000_000) // p99 <= 60 s: unmissable
        .latency("merge", 0.5, 1) // p50 <= 1 ns: unattainable
        .availability("queries", 0.999);
    let engine = ServeEngine::open(c, &dataset(24, 4)).unwrap();
    engine.knn_batch(&queries(8, 4), 3).unwrap();

    let stats = engine.stats().unwrap();
    assert_eq!(stats.slo.len(), 3, "one report per objective");

    let total = &stats.slo[0];
    assert_eq!(total.kind, "latency_quantile");
    assert!(total.attained, "60 s p99 must be attained: {total:?}");
    assert_eq!(total.violations, 0);
    assert!((total.attainment - 1.0).abs() < 1e-12);
    assert!((total.budget_remaining - 1.0).abs() < 1e-12);
    assert!(total.burn_rate < 1.0);

    let merge = &stats.slo[1];
    assert!(!merge.attained, "1 ns p50 must be blown: {merge:?}");
    assert!(merge.violations > 0);
    assert!(merge.burn_rate >= 1.0);
    assert!(merge.budget_remaining < 1.0);

    let avail = &stats.slo[2];
    assert_eq!(avail.kind, "availability");
    assert!(avail.attained, "no failures or timeouts: {avail:?}");
    assert!((avail.observed - 1.0).abs() < 1e-12);
}

// The flight recorder keeps every anomalous request with its complete
// span tree and the annotations that attribute it to the injected bank
// kill — independent of whether `trace::enable` was ever called.
#[test]
fn flight_recorder_retains_failover_anomalies_with_full_trees() {
    let _gate = REGISTRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    simpim::obs::metrics::reset();

    let data = dataset(32, 4);
    let engine = ServeEngine::open(cfg(2, 2), &data).unwrap();
    let qs = queries(6, 4);
    engine.knn_batch(&qs, 3).unwrap();
    engine.kill_bank(0, 0).unwrap();
    // The next batch detects the loss mid-pass and fails over.
    engine.knn_batch(&qs, 3).unwrap();

    let dump = engine.flight_dump().unwrap();
    let traces = parse_dump(&dump).unwrap();
    let anomalies: Vec<_> = traces.iter().filter(|t| t.outcome.is_anomaly()).collect();
    assert!(!anomalies.is_empty(), "the bank kill must leave anomalies");
    let failover = anomalies
        .iter()
        .find(|t| matches!(t.outcome, Outcome::Failover | Outcome::Degraded))
        .expect("at least one failover/degraded trace");
    failover
        .validate_tree()
        .expect("anomaly tree is well-formed");
    assert!(
        failover
            .annotations
            .iter()
            .any(|a| a.contains("failed over") || a.contains("host mirror")),
        "annotations must attribute the anomaly to the bank loss: {:?}",
        failover.annotations,
    );
    let stats = engine.stats().unwrap();
    assert!(stats.flight.anomalies_retained >= 1);
    assert!(stats.flight.recorded as usize >= traces.len());
}

// Stage histograms carry p99 exemplars whose trace ids resolve to
// retained flight traces — the pivot a latency investigation turns on.
#[test]
fn stage_exemplar_trace_ids_resolve_to_flight_traces() {
    let _gate = REGISTRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    simpim::obs::metrics::reset();

    let engine = ServeEngine::open(cfg(2, 1), &dataset(24, 4)).unwrap();
    engine.knn_batch(&queries(8, 4), 3).unwrap();

    let stats = engine.stats().unwrap();
    let dump = engine.flight_dump().unwrap();
    let retained: HashSet<u64> = parse_dump(&dump)
        .unwrap()
        .iter()
        .map(|t| t.trace_id)
        .collect();

    let mut seen = Vec::new();
    for stage in &stats.stage_latency {
        if stage.count == 0 {
            continue; // no mutations ran; that stage is legitimately empty
        }
        seen.push(stage.stage.clone());
        assert!(
            stage.exemplar_trace != 0,
            "stage {} lost its exemplar",
            stage.stage
        );
        assert!(
            retained.contains(&stage.exemplar_trace),
            "stage {} exemplar trace {} is not a retained flight trace",
            stage.stage,
            stage.exemplar_trace,
        );
        assert!(stage.p50_ns <= stage.p95_ns && stage.p95_ns <= stage.p99_ns);
    }
    for want in ["queue", "pass", "merge", "total"] {
        assert!(seen.iter().any(|s| s == want), "stage {want} missing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Satellite: per-query span trees reconstructed from coalesced
    // batches are complete (every stage present), well-parented (every
    // child hangs off the request root, intervals nest), and span ids
    // never leak between requests — at 1, 2, and 8 worker threads.
    #[test]
    fn coalesced_span_trees_are_complete_and_well_parented(
        threads in prop::sample::select(vec![1usize, 2, 8]),
        nq in 3usize..=9,
        shards in 1usize..=3,
    ) {
        let _gate = REGISTRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
        simpim::obs::metrics::reset();
        simpim::par::with_threads(threads, || {
            let engine = ServeEngine::open(cfg(shards, 1), &dataset(24, 4)).unwrap();
            let qs = queries(nq, 4);
            engine.knn_batch(&qs, 3).unwrap();

            let dump = engine.flight_dump().unwrap();
            let traces = parse_dump(&dump).unwrap();
            let query_traces: Vec<_> =
                traces.iter().filter(|t| t.kind == "query").collect();
            // Default capacity (32) retains every request here.
            prop_assert_eq!(query_traces.len(), nq, "one trace per query");

            let mut trace_ids = HashSet::new();
            let mut span_ids = HashSet::new();
            for t in &traces {
                if let Err(e) = t.validate_tree() {
                    panic!("trace {} invalid: {e}", t.trace_id);
                }
                prop_assert!(trace_ids.insert(t.trace_id), "duplicate trace id");
                for s in &t.spans {
                    prop_assert!(
                        span_ids.insert(s.span_id),
                        "span id {} leaked across traces", s.span_id
                    );
                }
            }
            for t in &query_traces {
                prop_assert_eq!(t.outcome, Outcome::Ok);
                let root = t.root().expect("non-empty tree");
                prop_assert_eq!(root.name.as_str(), "serve.query");
                prop_assert!(root.parent.is_none());
                for want in ["serve.query.queue", "serve.query.pass", "serve.query.merge"] {
                    let span = t
                        .spans
                        .iter()
                        .find(|s| s.name == want)
                        .unwrap_or_else(|| panic!("trace {} missing stage {want}", t.trace_id));
                    prop_assert_eq!(span.parent, Some(root.span_id));
                }
            }
        });
    }
}

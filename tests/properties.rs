//! Property-based tests over the whole stack (proptest): the correctness
//! invariants listed in DESIGN.md §5.

use proptest::prelude::*;
use simpim::core::pim_bounds::{
    error_bound_ed, host_floor_dot, lb_pim_ed, lb_pim_fnn, quantize_for_dot, quantize_for_ed,
    ub_pim_cs, ub_pim_pcc, FnnQuant,
};
use simpim::reram::{AccWidth, Crossbar, CrossbarConfig, PimArray, PimConfig};
use simpim::similarity::measures::{cosine, euclidean_sq, pearson};
use simpim::similarity::{Quantizer, SegmentStats};

fn unit_vec(max_d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 1..=max_d)
}

fn unit_vec_pair(max_d: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1..=max_d).prop_flat_map(|d| {
        (
            prop::collection::vec(0.0f64..=1.0, d),
            prop::collection::vec(0.0f64..=1.0, d),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 1: Theorem 1 bound + Theorem 3 error envelope.
    #[test]
    fn lb_pim_ed_is_valid_and_tight((p, q) in unit_vec_pair(48), alpha_exp in 1u32..=6) {
        let alpha = 10f64.powi(alpha_exp as i32);
        let quant = Quantizer::identity(alpha).unwrap();
        let pq = quantize_for_ed(&quant, &p).unwrap();
        let qq = quantize_for_ed(&quant, &q).unwrap();
        let dot = host_floor_dot(&pq.floors, &qq.floors);
        let lb = lb_pim_ed(pq.phi, qq.phi, dot, p.len(), alpha);
        let ed = euclidean_sq(&p, &q);
        prop_assert!(lb <= ed + 1e-9);
        prop_assert!(ed - lb <= error_bound_ed(p.len(), alpha) + 1e-9);
    }

    // Invariant 2: LB_PIM-FNN ≤ LB_FNN ≤ ED.
    #[test]
    fn fnn_bound_chain_holds(
        seed in prop::collection::vec(0.0f64..=1.0, 24),
        seed_q in prop::collection::vec(0.0f64..=1.0, 24),
        d_prime in prop::sample::select(vec![1usize, 2, 3, 4, 6, 8, 12, 24]),
    ) {
        let alpha = 1e5;
        let (p, q) = (seed, seed_q);
        let fp = FnnQuant::compute(&p, d_prime, alpha).unwrap();
        let fq = FnnQuant::compute(&q, d_prime, alpha).unwrap();
        let dm = host_floor_dot(&fp.mu_floors, &fq.mu_floors);
        let dsg = host_floor_dot(&fp.sigma_floors, &fq.sigma_floors);
        let l = 24 / d_prime;
        let lb_pim = lb_pim_fnn(fp.phi, fq.phi, dm, dsg, d_prime, l, alpha);
        let sp = SegmentStats::compute(&p, d_prime).unwrap();
        let sq = SegmentStats::compute(&q, d_prime).unwrap();
        let lb_fnn: f64 = (0..d_prime)
            .map(|i| {
                let a = sp.means[i] - sq.means[i];
                let b = sp.stds[i] - sq.stds[i];
                l as f64 * (a * a + b * b)
            })
            .sum();
        prop_assert!(lb_pim <= lb_fnn + 1e-9);
        prop_assert!(lb_fnn <= euclidean_sq(&p, &q) + 1e-9);
    }

    // Invariant 3: CS/PCC upper bounds.
    #[test]
    fn similarity_upper_bounds_hold((p, q) in unit_vec_pair(48)) {
        let quant = Quantizer::identity(1e5).unwrap();
        let pq = quantize_for_dot(&quant, &p).unwrap();
        let qq = quantize_for_dot(&quant, &q).unwrap();
        let dot = host_floor_dot(&pq.floors, &qq.floors);
        prop_assert!(ub_pim_cs(&pq, &qq, dot, p.len()) >= cosine(&p, &q) - 1e-9);
        prop_assert!(ub_pim_pcc(&pq, &qq, dot, p.len()) >= pearson(&p, &q) - 1e-9);
    }

    // Invariant 7: quantization stays in range and under-approximates.
    #[test]
    fn quantization_is_monotone_and_bounded(v in unit_vec(64), alpha_exp in 1u32..=6) {
        let alpha = 10f64.powi(alpha_exp as i32);
        let quant = Quantizer::identity(alpha).unwrap();
        let qv = quant.quantize_vec(&v).unwrap();
        for (&f, &x) in qv.floors.iter().zip(&v) {
            prop_assert!(f64::from(f) <= x * alpha + 1e-9);
            prop_assert!(f64::from(f) >= x * alpha - 1.0);
            prop_assert!(f <= alpha as u32);
        }
    }

    // Invariant 4 (unit level): the bit-sliced crossbar pipeline equals
    // the exact integer dot product, for arbitrary geometry.
    #[test]
    fn crossbar_pipeline_is_exact(
        values in prop::collection::vec(0u64..64, 1..=8),
        query in prop::collection::vec(0u64..64, 1..=8),
        cell_bits in 1u32..=3,
    ) {
        let d = values.len().min(query.len());
        let (values, query) = (&values[..d], &query[..d]);
        let cfg = CrossbarConfig {
            size: 8,
            cell_bits,
            dac_bits: 2,
            adc_bits: 16,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        xb.program_operand_column(0, 0, values, 6).unwrap();
        let out = xb.dot_products(0, query, 6, 6).unwrap();
        let exact: u128 = values.iter().zip(query).map(|(&a, &b)| u128::from(a * b)).sum();
        prop_assert_eq!(out[0], exact);
    }

    // Invariant 4 (array level): PimArray matches the exact dot product
    // including gather trees and accumulator wrapping.
    #[test]
    fn pim_array_matches_exact_dot(
        rows in prop::collection::vec(prop::collection::vec(0u32..1024, 12), 1..=6),
        query in prop::collection::vec(0u32..1024, 12),
    ) {
        let cfg = PimConfig {
            // 10-bit operands span 5 cells; an 8-wide crossbar forces the
            // 12-dim vectors through a 2-chunk gather tree.
            crossbar: CrossbarConfig { size: 8, cell_bits: 2, dac_bits: 2, adc_bits: 10, ..Default::default() },
            num_crossbars: 4096,
            ..Default::default()
        };
        let mut pim = PimArray::new(cfg).unwrap();
        let n = rows.len();
        let flat: Vec<u32> = rows.iter().flatten().copied().collect();
        let rep = pim.program_region(&flat, n, 12, 10).unwrap();
        let (vals, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let exact: u64 = row.iter().zip(&query).map(|(&a, &b)| u64::from(a) * u64::from(b)).sum();
            prop_assert_eq!(vals[i], exact);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Invariant 4 (closing the loop): the strict-fidelity path — real
    // materialized crossbars, slot stacking, chunking, all-ones gather
    // trees — is bit-identical to the fast array path on random layouts.
    #[test]
    fn strict_and_fast_paths_agree(
        n in 1usize..6,
        s in prop::sample::select(vec![3usize, 4, 8, 12, 24]),
        seed in 0u64..1000,
    ) {
        use simpim::reram::{AccWidth, CrossbarConfig, PimArray, PimConfig};
        let cfg = PimConfig {
            crossbar: CrossbarConfig { size: 8, cell_bits: 2, dac_bits: 2, adc_bits: 12, ..Default::default() },
            num_crossbars: 4096,
            ..Default::default()
        };
        let mut pim = PimArray::new(cfg).unwrap();
        let data: Vec<u32> = (0..n * s).map(|i| ((i as u64 * 31 + seed * 7) % 16) as u32).collect();
        let query: Vec<u32> = (0..s).map(|i| ((i as u64 * 13 + seed * 3) % 16) as u32).collect();
        let rep = pim.program_region(&data, n, s, 4).unwrap();
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        let strict = pim.dot_batch_strict(rep.region, &query, AccWidth::U64).unwrap();
        prop_assert_eq!(fast, strict);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Invariant 5: cascade kNN equals linear scan on arbitrary clustered
    // data (heavier: fewer cases).
    #[test]
    fn cascade_knn_always_matches_scan(seed in 0u64..1000, k in 1usize..=20) {
        use simpim::datasets::{generate, sample_queries, SyntheticConfig};
        use simpim::mining::knn::algorithms::fnn_cascade;
        use simpim::mining::knn::cascade::knn_cascade;
        use simpim::mining::knn::standard::knn_standard;
        use simpim::similarity::Measure;
        let ds = generate(&SyntheticConfig {
            n: 120,
            d: 16,
            clusters: 3,
            cluster_std: 0.06,
            stat_uniformity: 0.3,
            seed,
        });
        let q = &sample_queries(&ds, 1, 0.05, seed)[0];
        let cascade = fnn_cascade(&ds).unwrap();
        let truth = knn_standard(&ds, q, k, Measure::EuclideanSq).unwrap();
        let got = knn_cascade(&ds, &cascade, q, k, Measure::EuclideanSq).unwrap();
        prop_assert_eq!(got.indices(), truth.indices());
    }

    // Invariant 6: Theorem 4's choice always fits and is maximal.
    #[test]
    fn theorem4_choice_fits_and_is_maximal(
        n in 1usize..200_000,
        d in prop::sample::select(vec![90usize, 128, 150, 420, 500, 960]),
        budget in 64usize..=8192,
    ) {
        use simpim::core::choose_dimensionality;
        use simpim::reram::gather::dataset_crossbar_cost;
        let cfg = PimConfig { num_crossbars: budget, ..Default::default() };
        match choose_dimensionality(n, d, 2, 32, &cfg) {
            Ok(plan) => {
                prop_assert!(plan.total_crossbars() <= budget);
                prop_assert_eq!(d % plan.s, 0);
                // Maximality: the next divisor must overflow.
                if let Some(next) = (plan.s + 1..=d).find(|s| d % s == 0) {
                    let c = dataset_crossbar_cost(n, next, 32, &cfg.crossbar).unwrap();
                    prop_assert!(c.total() * 2 > budget);
                }
            }
            Err(_) => {
                // Even s = 1 must genuinely overflow.
                let c = dataset_crossbar_cost(n, 1, 32, &cfg.crossbar).unwrap();
                prop_assert!(c.total() * 2 > budget);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Invariant 9 (fault tolerance): injected crossbar faults — stuck-at
    // cells, dead bitlines without spare capacity, and write-endurance
    // wear-out — never change what the miners return. Guard-banded bounds
    // stay valid, dead objects are quarantined and refined exactly on the
    // host, and worn crossbars are remapped at the next scrub; kNN top-k
    // and k-means assignments are bit-identical to the fault-free run.
    #[test]
    fn faulty_pim_mining_matches_fault_free(seed in 0u64..1000) {
        use simpim::core::executor::{ExecutorConfig, PimExecutor};
        use simpim::datasets::{generate, sample_queries, SyntheticConfig};
        use simpim::mining::kmeans::lloyd::kmeans_lloyd;
        use simpim::mining::kmeans::pim::PimAssist;
        use simpim::mining::kmeans::KmeansConfig;
        use simpim::mining::knn::pim::knn_pim_ed;
        use simpim::mining::knn::standard::knn_standard;
        use simpim::reram::FaultConfig;
        use simpim::similarity::{Measure, NormalizedDataset};
        use simpim_bounds::BoundCascade;

        let ds = generate(&SyntheticConfig {
            n: 96,
            d: 32,
            clusters: 4,
            cluster_std: 0.05,
            stat_uniformity: 0.0,
            seed,
        });
        let queries = sample_queries(&ds, 2, 0.02, seed ^ 0xA5);
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let k = 5;
        let km_cfg = KmeansConfig { k: 3, max_iters: 4, seed: 1 };

        // Fault-free references.
        let reference: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| knn_standard(&ds, q, k, Measure::EuclideanSq).unwrap().indices())
            .collect();
        let km_base = kmeans_lloyd(&ds, &km_cfg, None).unwrap();
        let clean = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        let budget = clean.report().crossbars_used;

        // Scenario 1 — stuck-at cells: isolated corrupted cells drift the
        // measured dots; the executor widens the bounds by the Theorem-3
        // style guard band and stays exact.
        let stuck = ExecutorConfig {
            faults: Some(FaultConfig {
                stuck_low_rate: 0.01,
                stuck_high_rate: 0.01,
                seed: seed ^ 0x57,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut exec = PimExecutor::prepare_euclidean(stuck, &nds).unwrap();
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k).unwrap();
            prop_assert_eq!(&got.indices(), want, "stuck-at kNN diverged");
        }
        {
            let mut assist = PimAssist::new(&mut exec);
            let km = kmeans_lloyd(&ds, &km_cfg, Some(&mut assist)).unwrap();
            prop_assert_eq!(&km.assignments, &km_base.assignments, "stuck-at k-means diverged");
        }
        let fc = *exec.fault_counters();
        prop_assert!(fc.faults_detected > 0, "stuck-at must inject faults: {:?}", fc);
        prop_assert!(
            fc.guarded_bounds + fc.fallback_refinements > 0,
            "drifted objects must take the guarded or fallback path: {:?}", fc
        );

        // Scenario 2 — dead bitlines with zero spare capacity: the dead
        // objects cannot be remapped, so they are quarantined and every
        // batch recovers them by exact host-side refinement.
        let mut dead = ExecutorConfig {
            faults: Some(FaultConfig {
                dead_bitline_rate: 0.15,
                seed: seed ^ 0xD1ED,
                ..Default::default()
            }),
            ..Default::default()
        };
        dead.pim.num_crossbars = budget;
        let mut exec = PimExecutor::prepare_euclidean(dead, &nds).unwrap();
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k).unwrap();
            prop_assert_eq!(&got.indices(), want, "dead-bitline kNN diverged");
        }
        {
            let mut assist = PimAssist::new(&mut exec);
            let km = kmeans_lloyd(&ds, &km_cfg, Some(&mut assist)).unwrap();
            prop_assert_eq!(&km.assignments, &km_base.assignments, "dead-bitline k-means diverged");
        }
        let fc = *exec.fault_counters();
        prop_assert!(fc.quarantined_rows > 0, "no spares: must quarantine: {:?}", fc);
        prop_assert!(fc.fallback_refinements > 0, "quarantined rows need host fallback: {:?}", fc);

        // Scenario 3 — write-endurance wear-out: the array ages past its
        // endurance limit between batches; the periodic scrub detects the
        // worn (dead) crossbars and remaps them onto fresh spares.
        let worn = ExecutorConfig {
            faults: Some(FaultConfig {
                endurance_limit: 5,
                seed: seed ^ 0xEA2,
                ..Default::default()
            }),
            scrub_interval: 1,
            ..Default::default()
        };
        let mut exec = PimExecutor::prepare_euclidean(worn, &nds).unwrap();
        exec.bank_mut().pim_mut().age_crossbars(10);
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k).unwrap();
            prop_assert_eq!(&got.indices(), want, "wear-out kNN diverged");
        }
        {
            let mut assist = PimAssist::new(&mut exec);
            let km = kmeans_lloyd(&ds, &km_cfg, Some(&mut assist)).unwrap();
            prop_assert_eq!(&km.assignments, &km_base.assignments, "wear-out k-means diverged");
        }
        let fc = *exec.fault_counters();
        prop_assert!(
            fc.remapped_crossbars > 0,
            "worn crossbars must be remapped onto fresh spares: {:?}", fc
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Invariant 9: streamed materialization is block-size invariant. Every
    // dataset source yields the exact same rows whether pulled in one
    // block or many — the contract that lets `serve` program banks
    // block-by-block (bounded peak RSS) without changing a single answer.
    #[test]
    fn synth_streaming_is_block_size_invariant(
        seed in 0u64..500,
        n in 1usize..70,
        block in prop::sample::select(vec![1usize, 7, usize::MAX]),
    ) {
        use simpim::datasets::{DatasetSource, SynthSource, SyntheticConfig};
        let cfg = SyntheticConfig { n, d: 6, clusters: 3, cluster_std: 0.07, stat_uniformity: 0.4, seed };
        let one_shot = SynthSource::new(cfg).materialize();
        let mut src = SynthSource::new(cfg);
        let mut streamed = Vec::new();
        while src.position() < src.total() {
            let got = src.next_block(block.min(n), &mut streamed);
            prop_assert!(got > 0, "source drained early at {}", src.position());
        }
        let flat: Vec<f64> = (0..one_shot.len()).flat_map(|i| one_shot.row(i).to_vec()).collect();
        prop_assert_eq!(streamed, flat);
    }

    // Invariant 9 for sliding time-series windows.
    #[test]
    fn timeseries_streaming_is_block_size_invariant(
        seed in 0u64..500,
        block in prop::sample::select(vec![1usize, 7, usize::MAX]),
    ) {
        use simpim::datasets::{DatasetSource, TimeseriesWindowSource};
        use simpim::datasets::timeseries::SeriesConfig;
        let cfg = SeriesConfig { len: 90, pattern_len: 8, noise: 0.02, seed };
        let one_shot = TimeseriesWindowSource::new(&cfg, 8).materialize();
        let mut src = TimeseriesWindowSource::new(&cfg, 8);
        let mut buf = Vec::new();
        let mut streamed = simpim::similarity::Dataset::with_dim(8).unwrap();
        while src.position() < src.total() {
            buf.clear();
            prop_assert!(src.next_block(block.min(src.total()), &mut buf) > 0);
            for row in buf.chunks_exact(8) { streamed.push(row).unwrap(); }
        }
        prop_assert_eq!(streamed, one_shot);
    }

    // Invariant 9 for LSH binary codes.
    #[test]
    fn lsh_code_streaming_is_block_size_invariant(
        seed in 0u64..500,
        n in 1usize..70,
        block in prop::sample::select(vec![1usize, 7, usize::MAX]),
    ) {
        use simpim::datasets::{LshCodeSource, SynthSource, SyntheticConfig};
        use simpim::similarity::BinaryDataset;
        let cfg = SyntheticConfig { n, d: 6, clusters: 3, cluster_std: 0.07, stat_uniformity: 0.4, seed };
        let one_shot = LshCodeSource::new(SynthSource::new(cfg), 32, seed ^ 0x15).materialize();
        let mut src = LshCodeSource::new(SynthSource::new(cfg), 32, seed ^ 0x15);
        let mut streamed = BinaryDataset::with_bits(32).unwrap();
        while src.position() < src.total() {
            prop_assert!(src.next_codes(block.min(n), &mut streamed) > 0);
        }
        prop_assert_eq!(streamed, one_shot);
    }

    // Invariant 10: mid-stream resume. Skipping to any row and reading on
    // reproduces exactly the suffix a fresh full read yields, and a reset
    // source replays the identical stream — what re-replication relies on
    // to program a replacement bank without a host-side dataset snapshot.
    #[test]
    fn mid_stream_resume_reproduces_rows(
        seed in 0u64..500,
        n in 2usize..70,
        frac in 0.0f64..1.0,
    ) {
        use simpim::datasets::{DatasetSource, SynthSource, SyntheticConfig};
        let cfg = SyntheticConfig { n, d: 5, clusters: 2, cluster_std: 0.05, stat_uniformity: 0.6, seed };
        let full = SynthSource::new(cfg).materialize();
        let k = ((n as f64 * frac) as usize).min(n - 1);
        let mut src = SynthSource::new(cfg);
        src.skip(k);
        prop_assert_eq!(src.position(), k);
        let mut suffix = Vec::new();
        while src.position() < src.total() {
            prop_assert!(src.next_block(3, &mut suffix) > 0);
        }
        let want: Vec<f64> = (k..n).flat_map(|i| full.row(i).to_vec()).collect();
        prop_assert_eq!(&suffix, &want);
        // And a reset replays the whole stream bit-identically.
        src.reset();
        prop_assert_eq!(src.position(), 0);
        prop_assert_eq!(src.materialize(), full);
    }
}

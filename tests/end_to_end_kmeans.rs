//! Cross-crate integration: the eight k-means variants (4 algorithms × 2
//! architectures) must produce identical clusterings from identical seeds.

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate, SyntheticConfig};
use simpim::mining::kmeans::drake::kmeans_drake;
use simpim::mining::kmeans::elkan::kmeans_elkan;
use simpim::mining::kmeans::lloyd::kmeans_lloyd;
use simpim::mining::kmeans::pim::PimAssist;
use simpim::mining::kmeans::yinyang::kmeans_yinyang;
use simpim::mining::kmeans::{KmeansConfig, KmeansResult};
use simpim::similarity::{Dataset, NormalizedDataset};
use simpim::simkit::HostParams;

type Algo = fn(
    &Dataset,
    &KmeansConfig,
    Option<&mut PimAssist<'_>>,
) -> Result<KmeansResult, simpim::mining::MiningError>;

const ALGOS: [(&str, Algo); 4] = [
    ("Standard", kmeans_lloyd as Algo),
    ("Elkan", kmeans_elkan as Algo),
    ("Drake", kmeans_drake as Algo),
    ("Yinyang", kmeans_yinyang as Algo),
];

fn data() -> Dataset {
    generate(&SyntheticConfig {
        n: 600,
        d: 64,
        clusters: 8,
        cluster_std: 0.04,
        stat_uniformity: 0.1,
        seed: 404,
    })
}

#[test]
fn all_eight_variants_agree() {
    let ds = data();
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    for k in [4usize, 16, 40] {
        let cfg = KmeansConfig {
            k,
            max_iters: 30,
            seed: 5,
        };
        let reference = kmeans_lloyd(&ds, &cfg, None).unwrap();
        for (name, algo) in ALGOS {
            let base = algo(&ds, &cfg, None).unwrap();
            assert_eq!(base.assignments, reference.assignments, "{name} k={k}");
            assert!((base.inertia - reference.inertia).abs() < 1e-9);

            let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
            let mut assist = PimAssist::new(&mut exec);
            let pim = algo(&ds, &cfg, Some(&mut assist)).unwrap();
            assert_eq!(pim.assignments, reference.assignments, "{name}-PIM k={k}");
            assert!(pim.report.pim.total_ns() > 0.0, "{name}-PIM must use PIM");
        }
    }
}

#[test]
fn pim_reduces_exact_distance_work() {
    let ds = data();
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let cfg = KmeansConfig {
        k: 16,
        max_iters: 30,
        seed: 5,
    };
    let base = kmeans_lloyd(&ds, &cfg, None).unwrap();
    let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
    let mut assist = PimAssist::new(&mut exec);
    let pim = kmeans_lloyd(&ds, &cfg, Some(&mut assist)).unwrap();
    let base_ed = base.report.profile.get("ED").unwrap().counters.mul;
    let pim_ed = pim.report.profile.get("ED").unwrap().counters.mul;
    assert!(
        pim_ed * 2 < base_ed,
        "LB_PIM-ED must prune most centers: {pim_ed} vs {base_ed}"
    );
}

#[test]
fn model_time_speedups_match_paper_ordering() {
    // Standard gains the most from PIM; Elkan the least (its bound-update
    // pass is not offloadable) — the ordering of Section VI-D.
    let ds = data();
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let cfg = KmeansConfig {
        k: 32,
        max_iters: 20,
        seed: 5,
    };
    let params = HostParams::default();
    let mut speedups = std::collections::BTreeMap::new();
    for (name, algo) in ALGOS {
        let base = algo(&ds, &cfg, None).unwrap();
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        let mut assist = PimAssist::new(&mut exec);
        let pim = algo(&ds, &cfg, Some(&mut assist)).unwrap();
        speedups.insert(
            name,
            base.report.total_ns(&params) / pim.report.total_ns(&params),
        );
    }
    assert!(speedups["Standard"] > speedups["Elkan"], "{speedups:?}");
    for (name, s) in &speedups {
        assert!(*s > 1.0, "{name} must not slow down: {s}");
    }
}

#[test]
fn centers_stay_normalized() {
    // PIM queries clamp centers into [0,1]; verify converged centers are
    // already there (means of normalized points).
    let ds = data();
    let cfg = KmeansConfig {
        k: 8,
        max_iters: 30,
        seed: 5,
    };
    let res = kmeans_lloyd(&ds, &cfg, None).unwrap();
    for c in &res.centers {
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

//! Serving-engine integration tests: every answer the online engine
//! returns must be bit-identical to an offline scan over the same live
//! rows — through batching, sharding, inserts, deletes, compaction, and
//! injected crossbar faults — and the engine must stay linearizable
//! under concurrent mixed workloads.

use std::collections::HashSet;

use proptest::prelude::*;
use simpim::core::executor::ExecutorConfig;
use simpim::mining::knn::standard::knn_standard;
use simpim::reram::{CrossbarConfig, FaultConfig, PimConfig};
use simpim::serve::{ReplicaSet, ServeConfig, ServeEngine, ServeError, ShardConfig};
use simpim::similarity::{Dataset, Measure};

/// A small platform that fits the tiny proptest datasets quickly.
fn exec_cfg(faults: Option<FaultConfig>) -> ExecutorConfig {
    ExecutorConfig {
        pim: PimConfig {
            crossbar: CrossbarConfig {
                size: 16,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 4096,
            ..Default::default()
        },
        alpha: 1e6,
        operand_bits: 32,
        double_buffer: false,
        parallel_regions: true,
        faults,
        scrub_interval: 0,
    }
}

fn serve_cfg(shards: usize, faults: Option<FaultConfig>) -> ServeConfig {
    ServeConfig {
        shards,
        max_batch: 4,
        queue_depth: 64,
        spare_rows: 4,
        executor: exec_cfg(faults),
        ..Default::default()
    }
}

/// The offline truth over the engine's live rows: a linear scan with
/// positions mapped back to stable global ids. `live` must be sorted by
/// ascending id so position-order tie-breaks equal id-order tie-breaks.
fn offline_truth(live: &[(usize, Vec<f64>)], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let ds = Dataset::from_rows(&live.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>()).unwrap();
    let res = knn_standard(&ds, query, k.min(ds.len()), Measure::EuclideanSq).unwrap();
    res.neighbors
        .iter()
        .map(|&(pos, v)| (live[pos].0, v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // knn_batch is bit-identical to the offline scan on the same live
    // rows, across shard counts, inserts/deletes (spare-row appends,
    // delta overflow, tombstones), and injected dead bitlines.
    #[test]
    fn knn_batch_matches_offline_scan(
        shape in ((6usize..=14, 2usize..=5), (1usize..=3, 1usize..=4), (0u64..=3, 0u8..=1)),
        flat in prop::collection::vec(0.0f64..=1.0, 14 * 5),
        inserts in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 5), 0..4),
        delete_picks in prop::collection::vec(0usize..1000, 0..4),
        queries in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 5), 1..4),
    ) {
        let ((n, d), (shards, k), (seed, with_faults)) = shape;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| flat[i * d..(i + 1) * d].to_vec()).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let faults = (with_faults == 1).then(|| FaultConfig {
            dead_bitline_rate: 0.05,
            seed,
            ..Default::default()
        });
        let shards = shards.min(n);
        let engine = ServeEngine::open(serve_cfg(shards, faults), &data).unwrap();

        // Mirror model: live (id, row) pairs in ascending-id order.
        let mut live: Vec<(usize, Vec<f64>)> =
            rows.iter().cloned().enumerate().collect();
        for (next_id, row) in (n..).zip(inserts.iter()) {
            let row: Vec<f64> = row[..d].to_vec();
            let id = engine.insert(&row).unwrap();
            prop_assert_eq!(id, next_id);
            live.push((id, row));
        }
        for pick in &delete_picks {
            if live.len() <= shards {
                break; // keep every shard non-empty
            }
            let pos = pick % live.len();
            let (id, _) = live.remove(pos);
            prop_assert!(engine.delete(id).unwrap());
            prop_assert!(!engine.delete(id).unwrap(), "double delete must miss");
        }

        let queries: Vec<Vec<f64>> = queries.iter().map(|q| q[..d].to_vec()).collect();
        let got = engine.knn_batch(&queries, k).unwrap();
        for (q, res) in queries.iter().zip(&got) {
            let truth = offline_truth(&live, q, k);
            prop_assert_eq!(res, &truth);
        }

        // Compaction must not change any answer.
        engine.flush().unwrap();
        let again = engine.knn_batch(&queries, k).unwrap();
        prop_assert_eq!(got, again);
    }

    // Replica interchangeability: after any mix of inserts and deletes,
    // every replica of a set answers bit-identically to the offline
    // scan — the property that makes routing, failover, and rolling
    // reprogram invisible to clients.
    #[test]
    fn every_replica_answers_bit_identically(
        shape in ((6usize..=12, 2usize..=4), (2usize..=3, 1usize..=4), (0u64..=3, 0u8..=1)),
        flat in prop::collection::vec(0.0f64..=1.0, 12 * 4),
        inserts in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 0..3),
        delete_picks in prop::collection::vec(0usize..1000, 0..3),
        query in prop::collection::vec(0.0f64..=1.0, 4),
    ) {
        let ((n, d), (r, k), (seed, with_faults)) = shape;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| flat[i * d..(i + 1) * d].to_vec()).collect();
        let faults = (with_faults == 1).then(|| FaultConfig {
            dead_bitline_rate: 0.05,
            seed,
            ..Default::default()
        });
        let cfg = ShardConfig {
            executor: exec_cfg(faults),
            spare_rows: 2,
            ..Default::default()
        };
        let data = Dataset::from_rows(&rows).unwrap();
        let mut set = ReplicaSet::open(cfg, r, data, (0..n).collect()).unwrap();

        let mut live: Vec<(usize, Vec<f64>)> = rows.iter().cloned().enumerate().collect();
        for (id, row) in (n..).zip(inserts.iter()) {
            let row: Vec<f64> = row[..d].to_vec();
            set.insert(id, &row).unwrap();
            live.push((id, row));
        }
        for pick in &delete_picks {
            if live.len() <= 1 {
                break;
            }
            let pos = pick % live.len();
            let (id, _) = live.remove(pos);
            prop_assert!(set.delete(id).unwrap());
        }

        let query: Vec<f64> = query[..d].to_vec();
        let truth = offline_truth(&live, &query, k);
        for i in 0..r {
            let got = set
                .query_replica(i, std::slice::from_ref(&query), &[k])
                .remove(0)
                .unwrap();
            prop_assert_eq!(&got, &truth, "replica {} diverged", i);
        }
    }

    // Mid-stream bank loss: kill a replica's bank, keep mutating during
    // the repair window, and assert every answer stays bit-identical to
    // the offline scan through detection, failover, re-replication, the
    // loss of the original survivor, and a final compaction.
    #[test]
    fn bank_kill_and_re_replicate_preserve_answers(
        shape in ((6usize..=12, 2usize..=4), (1usize..=2, 1usize..=4)),
        flat in prop::collection::vec(0.0f64..=1.0, 12 * 4),
        inserts in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 1..3),
        delete_picks in prop::collection::vec(0usize..1000, 1..3),
        queries in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 1..3),
    ) {
        let ((n, d), (shards, k)) = shape;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| flat[i * d..(i + 1) * d].to_vec()).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let shards = shards.min(n);
        let mut cfg = serve_cfg(shards, None);
        cfg.replicas = 2;
        let engine = ServeEngine::open(cfg, &data).unwrap();
        let queries: Vec<Vec<f64>> = queries.iter().map(|q| q[..d].to_vec()).collect();
        let mut live: Vec<(usize, Vec<f64>)> = rows.iter().cloned().enumerate().collect();

        // Fail-stop one bank of every shard, then mutate while the
        // replicas are lost (the repair window): inserts must land in
        // the host delta of the dead banks, deletes must tombstone, so
        // mirrors never diverge.
        for s in 0..shards {
            engine.kill_bank(s, 0).unwrap();
        }
        for (id, row) in (n..).zip(inserts.iter()) {
            let row: Vec<f64> = row[..d].to_vec();
            prop_assert_eq!(engine.insert(&row).unwrap(), id);
            live.push((id, row));
        }
        for pick in &delete_picks {
            if live.len() <= shards {
                break;
            }
            let pos = pick % live.len();
            let (id, _) = live.remove(pos);
            prop_assert!(engine.delete(id).unwrap());
        }

        // Queries through the loss: detection + failover, bit-identical.
        for q in &queries {
            prop_assert_eq!(engine.knn(q, k).unwrap(), offline_truth(&live, q, k));
        }
        // Traffic drives detection; the repair tick re-replicates. A few
        // query/stats rounds must bring every set back to full strength.
        let mut recovered = false;
        for _ in 0..16 {
            let _ = engine.knn(&queries[0], k).unwrap();
            let stats = engine.stats().unwrap();
            if stats.shards.iter().all(|s| s.healthy == 2) {
                prop_assert_eq!(stats.repairs as usize, shards);
                prop_assert_eq!(stats.degraded_shards, 0);
                recovered = true;
                break;
            }
        }
        prop_assert!(recovered, "lost replicas were not re-replicated");

        // The repaired replicas carry the full live set: kill the
        // original survivors so only repaired banks can answer.
        for s in 0..shards {
            engine.kill_bank(s, 1).unwrap();
        }
        for q in &queries {
            prop_assert_eq!(engine.knn(q, k).unwrap(), offline_truth(&live, q, k));
        }
        // Rolling compaction never changes an answer either.
        engine.flush().unwrap();
        for q in &queries {
            prop_assert_eq!(engine.knn(q, k).unwrap(), offline_truth(&live, q, k));
        }
    }
}

// Eight threads of mixed queries, inserts, and deletes against one
// engine: no lost or duplicated results anywhere.
#[test]
fn concurrent_mixed_workload_is_linearizable() {
    let n = 32;
    let d = 4;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 11 + j * 17) % 89) as f64 / 88.0)
                .collect()
        })
        .collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let mut cfg = serve_cfg(2, None);
    cfg.spare_rows = 8;
    let engine = ServeEngine::open(cfg, &data).unwrap();

    let (inserted_ids, delete_hits, query_results) = std::thread::scope(|s| {
        let engine = &engine;
        // 4 query threads.
        let queriers: Vec<_> = (0..4)
            .map(|t| {
                s.spawn(move || {
                    let mut results = Vec::new();
                    for i in 0..20 {
                        let q: Vec<f64> = (0..d)
                            .map(|j| ((t * 7 + i * 3 + j) % 10) as f64 / 10.0)
                            .collect();
                        loop {
                            match engine.knn(&q, 3) {
                                Ok(r) => {
                                    results.push(r);
                                    break;
                                }
                                Err(ServeError::Overloaded) => std::thread::yield_now(),
                                Err(e) => panic!("query failed: {e}"),
                            }
                        }
                    }
                    results
                })
            })
            .collect();
        // 2 insert threads, distinct rows each.
        let inserters: Vec<_> = (0..2)
            .map(|t| {
                s.spawn(move || {
                    (0..8)
                        .map(|i| {
                            let row: Vec<f64> = (0..d)
                                .map(|j| ((t * 13 + i * 5 + j) % 7) as f64 / 7.0)
                                .collect();
                            engine.insert(&row).unwrap()
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        // 2 delete threads over disjoint halves of the initial ids.
        let deleters: Vec<_> = (0..2)
            .map(|t| {
                s.spawn(move || {
                    (t * 8..(t + 1) * 8)
                        .filter(|&id| engine.delete(id).unwrap())
                        .count()
                })
            })
            .collect();

        let ids: Vec<usize> = inserters
            .into_iter()
            .flat_map(|h| h.join().expect("insert thread"))
            .collect();
        let hits: usize = deleters
            .into_iter()
            .map(|h| h.join().expect("delete thread"))
            .sum();
        let results: Vec<Vec<(usize, f64)>> = queriers
            .into_iter()
            .flat_map(|h| h.join().expect("query thread"))
            .collect();
        (ids, hits, results)
    });

    // No duplicated or reused insert ids (nothing lost to races).
    let unique: HashSet<usize> = inserted_ids.iter().copied().collect();
    assert_eq!(unique.len(), 16, "insert ids must be unique");
    assert!(inserted_ids.iter().all(|&id| id >= n), "fresh ids only");
    // Every pre-assigned delete found its row exactly once.
    assert_eq!(delete_hits, 16);
    // Every query got exactly k distinct live neighbors.
    assert_eq!(query_results.len(), 80);
    for r in &query_results {
        assert_eq!(r.len(), 3);
        let ids: HashSet<usize> = r.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), 3, "duplicate neighbor in {r:?}");
    }
    // The books balance: 32 initial + 16 inserted − 16 deleted.
    let stats = engine.stats().unwrap();
    assert_eq!(stats.live, 32);
    assert_eq!(stats.inserts, 16);
    assert_eq!(stats.queries, 80);
}

//! Bit-identity tests for the `simpim-kern` runtime-dispatched SIMD
//! backends (DESIGN.md §14): every supported tier (SSE2/AVX2/NEON) must
//! reproduce the portable scalar reference down to the float bit
//! pattern — across every remainder length `0..=4*LANES`, through
//! signed zeros, subnormals and infinities, with NaN results matched
//! NaN-for-NaN (payloads are non-deterministic in Rust; see
//! `crates/kern/src/scalar.rs`) — and an end-to-end
//! kNN / k-means run must return the same neighbors, assignments and
//! `OpCounters` (and the same FNV-1a result hash) whether the kernels
//! are forced to `scalar` or left on the detected backend, at any
//! worker count.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use simpim::datasets::{generate, sample_queries, SyntheticConfig};
use simpim::kern::{self, scalar, Backend};
use simpim::mining::kmeans::drake::kmeans_drake;
use simpim::mining::kmeans::elkan::kmeans_elkan;
use simpim::mining::kmeans::lloyd::kmeans_lloyd;
use simpim::mining::kmeans::yinyang::kmeans_yinyang;
use simpim::mining::kmeans::{KmeansConfig, KmeansResult};
use simpim::mining::knn::algorithms::fnn_cascade;
use simpim::mining::knn::cascade::knn_cascade;
use simpim::mining::knn::KnnResult;
use simpim::par;
use simpim::similarity::{Dataset, Measure};

/// Both the kernel-backend override and the thread override are
/// process-global; serialize the tests that flip either one.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Every tier this CPU can actually run (always includes `Scalar`).
fn supported_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
}

/// Adversarial f64 payloads: signed zeros, subnormals, the normal/
/// subnormal boundary, huge magnitudes that overflow when squared,
/// infinities, and NaNs with distinct sign/payload bits. Packed SIMD
/// lanes must treat each of these exactly like the scalar ALU does.
fn special_values() -> Vec<f64> {
    vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        2.5,
        -3.75,
        f64::MIN_POSITIVE,
        5e-324,
        -5e-324,
        1e-310,
        1e308,
        -1e308,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::from_bits(0xFFF8_0000_0000_0000), // negative quiet NaN
        f64::from_bits(0x7FF8_0000_00AB_CDEF), // quiet NaN with payload
        f64::from_bits(0x7FF0_0000_0000_0001), // signaling NaN
    ]
}

/// FNV-1a over the (index, distance-bits) stream of a neighbor list —
/// the same digest `kernel_sweep` stamps into `BENCH_kernels.json`.
fn fnv1a_knn(r: &KnnResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &(i, d) in &r.neighbors {
        eat((i as u64).to_le_bytes());
        eat(d.to_bits().to_le_bytes());
    }
    h
}

/// The bit-identity contract, NaN carve-out included: exact bits for
/// every non-NaN result (signed zeros, subnormals, infinities), NaN ⇔
/// NaN otherwise. *Which* NaN payload survives a multi-NaN reduction is
/// operand-order dependent and Rust documents NaN bit patterns as
/// non-deterministic, so payload equality is deliberately not asserted.
fn assert_bits(got: f64, want: f64, what: &str) {
    if got.is_nan() && want.is_nan() {
        return;
    }
    assert_eq!(got.to_bits(), want.to_bits(), "{what}");
}

fn workload(seed: u64) -> (Dataset, Vec<f64>) {
    let ds = generate(&SyntheticConfig {
        n: 140,
        d: 24,
        clusters: 4,
        cluster_std: 0.05,
        stat_uniformity: 0.2,
        seed,
    });
    let q = sample_queries(&ds, 1, 0.03, seed ^ 0x3C).remove(0);
    (ds, q)
}

fn assert_same_knn(a: &KnnResult, b: &KnnResult, what: &str) {
    let bits = |r: &KnnResult| -> Vec<(usize, u64)> {
        r.neighbors.iter().map(|&(i, v)| (i, v.to_bits())).collect()
    };
    assert_eq!(bits(a), bits(b), "{what}: neighbors");
    assert_eq!(
        a.report.profile.total_counters(),
        b.report.profile.total_counters(),
        "{what}: counters"
    );
}

fn assert_same_kmeans(a: &KmeansResult, b: &KmeansResult, what: &str) {
    assert_eq!(a.assignments, b.assignments, "{what}: assignments");
    assert_eq!(
        a.inertia.to_bits(),
        b.inertia.to_bits(),
        "{what}: inertia bits"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(
        a.report.profile.total_counters(),
        b.report.profile.total_counters(),
        "{what}: counters"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every supported tier matches the scalar reference bit-for-bit on
    /// all four float kernels, at every remainder length `0..=4*LANES`,
    /// through the adversarial payload pool.
    #[test]
    fn float_kernels_bit_identical_across_backends(
        pairs in prop::collection::vec(
            (
                prop::sample::select(special_values()),
                prop::sample::select(special_values()),
            ),
            0..=4 * scalar::LANES,
        )
    ) {
        let _g = lock();
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let want_dot = scalar::dot(&a, &b);
        let want_norm = scalar::norm_sq(&a);
        let want_ed = scalar::euclidean_sq(&a, &b);
        let (wd, wn) = scalar::dot_norm_sq(&a, &b);
        for backend in supported_backends() {
            kern::with_backend(backend, || {
                let name = backend.name();
                assert_bits(kern::dot(&a, &b), want_dot, &format!("dot/{name}"));
                assert_bits(kern::norm_sq(&a), want_norm, &format!("norm_sq/{name}"));
                assert_bits(
                    kern::euclidean_sq(&a, &b),
                    want_ed,
                    &format!("euclidean_sq/{name}"),
                );
                let (d, n) = kern::dot_norm_sq(&a, &b);
                assert_bits(d, wd, &format!("dot_norm_sq.0/{name}"));
                assert_bits(n, wn, &format!("dot_norm_sq.1/{name}"));
            });
        }
    }

    /// The popcount-MAC kernels agree with the scalar `count_ones` sum
    /// on every backend, across lengths covering the AVX2 4-word blocks,
    /// the popcnt 4-way unroll, and all their tails.
    #[test]
    fn popcount_kernels_bit_identical_across_backends(
        words in prop::collection::vec((any::<u64>(), any::<u64>()), 0..=17)
    ) {
        let _g = lock();
        let (a, b): (Vec<u64>, Vec<u64>) = words.into_iter().unzip();
        let want_xor = scalar::xor_popcount(&a, &b);
        let want_and = scalar::and_popcount(&a, &b);
        for backend in supported_backends() {
            kern::with_backend(backend, || {
                prop_assert_eq!(kern::xor_popcount(&a, &b), want_xor, "xor/{}", backend.name());
                prop_assert_eq!(kern::and_popcount(&a, &b), want_and, "and/{}", backend.name());
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end kNN: forcing `scalar` vs leaving the detected backend
    /// yields the same neighbors (to the bit), the same `OpCounters`,
    /// and the same FNV-1a result hash — and the hash is invariant under
    /// `SIMPIM_THREADS` 1 vs 4 on both backends, since simpim-par chunk
    /// boundaries are worker-count independent and each chunk reduces
    /// through the same kernels.
    #[test]
    fn knn_hash_identical_scalar_vs_dispatched(seed in 0u64..1000, k in 1usize..=15) {
        let _g = lock();
        let (ds, q) = workload(seed);
        let cascade = fnn_cascade(&ds).unwrap();
        let auto = kern::backend();
        let run = |backend: Backend, threads: usize| {
            kern::with_backend(backend, || {
                par::with_threads(threads, || {
                    knn_cascade(&ds, &cascade, &q, k, Measure::EuclideanSq).unwrap()
                })
            })
        };
        let scalar_1 = run(Backend::Scalar, 1);
        let auto_1 = run(auto, 1);
        assert_same_knn(&scalar_1, &auto_1, "scalar vs dispatched (1 thread)");
        let hash = fnv1a_knn(&scalar_1);
        for (backend, threads) in [(Backend::Scalar, 4), (auto, 4)] {
            let r = run(backend, threads);
            prop_assert_eq!(
                fnv1a_knn(&r),
                hash,
                "result hash for {} x {} threads",
                backend.name(),
                threads
            );
        }
    }

    /// All four k-means variants produce identical assignments, inertia
    /// bits and `OpCounters` whether the assignment-step distances run
    /// on the scalar reference or the detected SIMD backend.
    #[test]
    fn kmeans_bit_identical_scalar_vs_dispatched(seed in 0u64..1000, k in 2usize..=8) {
        let _g = lock();
        let (ds, _) = workload(seed);
        let cfg = KmeansConfig { k, max_iters: 12, seed: 7 };
        let auto = kern::backend();
        type Algo = fn(&Dataset, &KmeansConfig) -> KmeansResult;
        let algos: [(&str, Algo); 4] = [
            ("lloyd", |d, c| kmeans_lloyd(d, c, None).unwrap()),
            ("elkan", |d, c| kmeans_elkan(d, c, None).unwrap()),
            ("drake", |d, c| kmeans_drake(d, c, None).unwrap()),
            ("yinyang", |d, c| kmeans_yinyang(d, c, None).unwrap()),
        ];
        for (name, algo) in algos {
            let s = kern::with_backend(Backend::Scalar, || algo(&ds, &cfg));
            let d = kern::with_backend(auto, || algo(&ds, &cfg));
            assert_same_kmeans(&s, &d, &format!("{name} scalar vs dispatched"));
        }
    }
}

/// `SIMPIM_KERNEL` accepts exactly auto|scalar|sse2|avx2|neon (any
/// case), maps `auto`/empty to detection, and rejects everything else —
/// the contract the CI determinism job leans on when it runs the sweep
/// twice under different values.
#[test]
fn env_knob_spelling() {
    assert_eq!(Backend::parse("auto"), Some(None));
    assert_eq!(Backend::parse(""), Some(None));
    assert_eq!(Backend::parse("scalar"), Some(Some(Backend::Scalar)));
    assert_eq!(Backend::parse("SSE2"), Some(Some(Backend::Sse2)));
    assert_eq!(Backend::parse("avx2"), Some(Some(Backend::Avx2)));
    assert_eq!(Backend::parse("Neon"), Some(Some(Backend::Neon)));
    assert_eq!(Backend::parse("avx512"), None);
}

/// Forcing a tier the CPU cannot run degrades to scalar instead of
/// crashing (the same clamp `SIMPIM_KERNEL` applies).
#[test]
fn unsupported_override_degrades_to_scalar() {
    let _g = lock();
    for b in Backend::ALL {
        if !b.is_supported() {
            let active = kern::with_backend(b, kern::backend);
            assert_eq!(active, Backend::Scalar, "forcing {}", b.name());
        }
    }
}

//! Cross-crate integration: every kNN algorithm — classic and
//! PIM-optimized — must return exactly the same neighbors as the linear
//! scan, on every measure.

use simpim::core::executor::{ExecutorConfig, PimExecutor, SimTarget};
use simpim::datasets::{generate, lsh_codes, sample_queries, SyntheticConfig};
use simpim::mining::knn::algorithms::{fnn_cascade, ost_cascade, part_cascade, sm_cascade};
use simpim::mining::knn::cascade::knn_cascade;
use simpim::mining::knn::hamming::knn_hamming;
use simpim::mining::knn::pim::{knn_pim_ed, knn_pim_hamming, knn_pim_sim};
use simpim::mining::knn::standard::knn_standard;
use simpim::similarity::{Dataset, Measure, NormalizedDataset};
use simpim_bounds::BoundCascade;

fn workload(seed: u64) -> (Dataset, Vec<Vec<f64>>) {
    let ds = generate(&SyntheticConfig {
        n: 800,
        d: 128,
        clusters: 8,
        cluster_std: 0.05,
        stat_uniformity: 0.2,
        seed,
    });
    let queries = sample_queries(&ds, 6, 0.02, seed ^ 0xFF);
    (ds, queries)
}

fn exec_cfg() -> ExecutorConfig {
    ExecutorConfig::default()
}

#[test]
fn classic_cascades_are_exact_on_ed() {
    let (ds, queries) = workload(1);
    let cascades = [
        ("OST", ost_cascade(&ds).unwrap()),
        ("SM", sm_cascade(&ds).unwrap()),
        ("FNN", fnn_cascade(&ds).unwrap()),
    ];
    for (k, q) in [(1usize, &queries[0]), (10, &queries[1]), (100, &queries[2])] {
        let truth = knn_standard(&ds, q, k, Measure::EuclideanSq).unwrap();
        for (name, cascade) in &cascades {
            let got = knn_cascade(&ds, cascade, q, k, Measure::EuclideanSq).unwrap();
            assert_eq!(got.indices(), truth.indices(), "{name} k={k}");
        }
    }
}

#[test]
fn pim_variants_are_exact_on_ed() {
    let (ds, queries) = workload(2);
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let mut std_exec = PimExecutor::prepare_euclidean(exec_cfg(), &nds).unwrap();
    let mut fnn_exec = PimExecutor::prepare_fnn(exec_cfg(), &nds, 32).unwrap();
    let retained = fnn_cascade(&ds).unwrap();
    for q in &queries {
        let truth = knn_standard(&ds, q, 10, Measure::EuclideanSq).unwrap();
        let std_pim = knn_pim_ed(&mut std_exec, &ds, &BoundCascade::empty(), q, 10).unwrap();
        let fnn_pim = knn_pim_ed(&mut fnn_exec, &ds, &retained, q, 10).unwrap();
        assert_eq!(std_pim.indices(), truth.indices(), "Standard-PIM");
        assert_eq!(fnn_pim.indices(), truth.indices(), "FNN-PIM");
    }
}

#[test]
fn similarity_search_is_exact_for_cs_and_pcc() {
    let (ds, queries) = workload(3);
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    for (measure, target) in [
        (Measure::Cosine, SimTarget::Cosine),
        (Measure::Pearson, SimTarget::Pearson),
    ] {
        let cascade = part_cascade(&ds, measure).unwrap();
        let mut exec = PimExecutor::prepare_similarity(exec_cfg(), &nds, target).unwrap();
        for q in &queries {
            let truth = knn_standard(&ds, q, 10, measure).unwrap();
            let classic = knn_cascade(&ds, &cascade, q, 10, measure).unwrap();
            let pim = knn_pim_sim(&mut exec, &ds, q, 10, measure).unwrap();
            assert_eq!(classic.indices(), truth.indices(), "{measure:?} classic");
            assert_eq!(pim.indices(), truth.indices(), "{measure:?} PIM");
        }
    }
}

#[test]
fn hamming_pim_is_exact_across_code_widths() {
    let (ds, _) = workload(4);
    for bits in [128usize, 256, 512] {
        let codes = lsh_codes(&ds, bits, 17);
        let mut exec = PimExecutor::prepare_hamming(exec_cfg(), &codes).unwrap();
        for qi in [0usize, 31, 419] {
            let q = codes.row(qi);
            let truth = knn_hamming(&codes, &q, 10);
            let pim = knn_pim_hamming(&mut exec, &codes, &q, 10).unwrap();
            assert_eq!(pim.indices(), truth.indices(), "bits={bits} qi={qi}");
        }
    }
}

#[test]
fn pim_queries_never_wear_the_crossbars() {
    let (ds, queries) = workload(5);
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let mut exec = PimExecutor::prepare_euclidean(exec_cfg(), &nds).unwrap();
    let wear = exec.bank().pim().total_cell_writes();
    for q in &queries {
        knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, 5).unwrap();
    }
    assert_eq!(
        exec.bank().pim().total_cell_writes(),
        wear,
        "online stage must not re-program crossbars (endurance, Section V-C)"
    );
}

#[test]
fn pim_moves_less_data_than_baseline() {
    let (ds, queries) = workload(6);
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let mut exec = PimExecutor::prepare_euclidean(exec_cfg(), &nds).unwrap();
    let q = &queries[0];
    let base = knn_standard(&ds, q, 10, Measure::EuclideanSq).unwrap();
    let pim = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, 10).unwrap();
    let base_bytes = base.report.profile.total_counters().bytes_streamed;
    let pim_bytes = pim.report.profile.total_counters().bytes_streamed;
    assert!(
        pim_bytes * 5 < base_bytes,
        "PIM must slash host transfer: {pim_bytes} vs {base_bytes}"
    );
}

//! Failure-injection tests: every layer must reject bad inputs and
//! resource exhaustion with a diagnosable error instead of silently
//! producing wrong results.

use simpim::core::executor::{ExecutorConfig, PimExecutor, SimTarget};
use simpim::core::CoreError;
use simpim::reram::{AccWidth, Crossbar, CrossbarConfig, PimArray, PimConfig, ReRamError};
use simpim::similarity::{Dataset, NormalizedDataset, Quantizer, SimilarityError};

fn tiny_data(n: usize, d: usize) -> NormalizedDataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 13 + j * 7) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    NormalizedDataset::assert_normalized(Dataset::from_rows(&rows).unwrap())
}

#[test]
fn undersized_adc_clips_loudly_not_silently() {
    // An 8-wide crossbar with a 5-bit ADC: a full column of maxed cells
    // driven at max DAC overflows the per-cycle sum — the simulator must
    // refuse, not wrap.
    let cfg = CrossbarConfig {
        size: 8,
        cell_bits: 2,
        dac_bits: 2,
        adc_bits: 5,
        ..Default::default()
    };
    assert!(!cfg.adc_covers_worst_case());
    let mut xb = Crossbar::new(cfg).unwrap();
    for row in 0..8 {
        xb.program_operand_column(row, 0, &[3], 2).unwrap();
    }
    let out = xb.analog_cycle(&[3; 8]);
    assert!(
        matches!(out, Err(ReRamError::AdcOverflow { .. })),
        "{out:?}"
    );
}

#[test]
fn crossbar_budget_exhaustion_reports_requirements() {
    let cfg = PimConfig {
        num_crossbars: 2,
        ..Default::default()
    };
    let mut pim = PimArray::new(cfg).unwrap();
    let big = vec![1u32; 100_000 * 8];
    let err = pim.program_region(&big, 100_000, 8, 32).unwrap_err();
    match err {
        ReRamError::InsufficientCapacity {
            required,
            available,
        } => {
            assert!(required > available);
            assert_eq!(available, 2);
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
}

#[test]
fn executor_rejects_unpreparable_datasets() {
    let data = tiny_data(5_000, 64);
    let cfg = ExecutorConfig {
        pim: PimConfig {
            num_crossbars: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = PimExecutor::prepare_euclidean(cfg, &data).unwrap_err();
    assert!(matches!(err, CoreError::CannotFit { .. }), "{err:?}");
}

#[test]
fn similarity_executor_refuses_compression() {
    // CS/PCC semantics change under segment compression, so the executor
    // must refuse rather than silently compress.
    let data = tiny_data(5_000, 64);
    let cfg = ExecutorConfig {
        pim: PimConfig {
            num_crossbars: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = PimExecutor::prepare_similarity(cfg, &data, SimTarget::Cosine).unwrap_err();
    assert!(matches!(err, CoreError::CannotFit { .. }), "{err:?}");
}

#[test]
fn quantizer_rejects_nan_queries_end_to_end() {
    let data = tiny_data(16, 8);
    let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &data).unwrap();
    let bad = vec![f64::NAN; 8];
    let err = exec.lb_ed_batch(&bad).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Similarity(SimilarityError::InvalidValue { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn stale_region_ids_do_not_resolve_after_clear() {
    let mut pim = PimArray::new(PimConfig::default()).unwrap();
    let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 8).unwrap();
    pim.clear();
    let err = pim
        .dot_batch(rep.region, &[1, 1, 1, 1], AccWidth::U64)
        .unwrap_err();
    assert!(matches!(err, ReRamError::NotProgrammed));
}

#[test]
fn reprogramming_after_clear_accumulates_wear() {
    let mut pim = PimArray::new(PimConfig::default()).unwrap();
    let mut total = 0;
    for _ in 0..3 {
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 8).unwrap();
        total += rep.cell_writes;
        pim.clear();
    }
    assert_eq!(
        pim.total_cell_writes(),
        total,
        "wear must persist across re-programming"
    );
}

#[test]
fn memory_array_overflow_is_checked() {
    use simpim::reram::MemoryArray;
    let mut mem = MemoryArray::new(100);
    mem.store(100).unwrap();
    assert!(mem.store(1).is_err());
}

#[test]
fn quantizer_alpha_domain_is_validated() {
    assert!(Quantizer::identity(0.0).is_err());
    assert!(Quantizer::identity(-5.0).is_err());
    assert!(Quantizer::identity(f64::INFINITY).is_err());
    assert!(Quantizer::identity(1.0).is_ok());
}

#[test]
fn mismatched_shapes_fail_before_any_compute() {
    let data = tiny_data(16, 8);
    let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &data).unwrap();
    assert!(matches!(
        exec.lb_ed_batch(&[0.5; 9]),
        Err(CoreError::Mismatch { .. })
    ));
    assert!(matches!(
        exec.ub_sim_batch(&[0.5; 8]),
        Err(CoreError::Mismatch { .. })
    ));
}

// ---------------------------------------------------------------------------
// Fault injection and recovery (see `simpim::reram::faults` and the
// executor's scrub → classify → remap → quarantine pipeline).
// ---------------------------------------------------------------------------

use simpim::reram::FaultConfig;
use simpim::similarity::measures::euclidean_sq;

#[test]
fn invalid_fault_configs_are_rejected() {
    for bad in [
        FaultConfig {
            stuck_low_rate: -0.1,
            ..Default::default()
        },
        FaultConfig {
            adc_glitch_rate: f64::NAN,
            ..Default::default()
        },
        FaultConfig {
            stuck_low_rate: 0.7,
            stuck_high_rate: 0.7,
            ..Default::default()
        },
        FaultConfig {
            adc_retry_limit: 0,
            ..Default::default()
        },
    ] {
        assert!(
            matches!(bad.validate(), Err(ReRamError::InvalidConfig { .. })),
            "{bad:?} must be rejected"
        );
        // The same rejection must surface through the executor before any
        // crossbar is programmed.
        let data = tiny_data(16, 8);
        let cfg = ExecutorConfig {
            faults: Some(bad),
            ..Default::default()
        };
        let err = PimExecutor::prepare_euclidean(cfg, &data).unwrap_err();
        assert!(
            matches!(err, CoreError::ReRam(ReRamError::InvalidConfig { .. })),
            "{err:?}"
        );
    }
}

#[test]
fn health_queries_require_enabled_faults_and_a_scrub() {
    let mut pim = PimArray::new(PimConfig::default()).unwrap();
    let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 8).unwrap();

    // No fault model attached: the health API must refuse loudly.
    assert_eq!(
        pim.scrub_region(rep.region),
        Err(ReRamError::FaultsNotEnabled)
    );
    assert!(matches!(
        pim.remap_dead(rep.region),
        Err(ReRamError::FaultsNotEnabled)
    ));
    assert_eq!(
        pim.object_health(rep.region, 0),
        Err(ReRamError::FaultsNotEnabled)
    );

    // Fault model attached but the region was never scrubbed: recovery and
    // health queries have no survey to work from.
    pim.enable_faults(FaultConfig {
        stuck_low_rate: 0.01,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    assert!(matches!(
        pim.remap_dead(rep.region),
        Err(ReRamError::NotScrubbed)
    ));
    assert_eq!(
        pim.object_health(rep.region, 0),
        Err(ReRamError::NotScrubbed)
    );

    // After a scrub everything is answerable.
    pim.scrub_region(rep.region).unwrap();
    pim.object_health(rep.region, 0).unwrap();
    pim.remap_dead(rep.region).unwrap();
}

#[test]
fn permanently_glitching_adc_exhausts_retries_loudly() {
    let data = tiny_data(16, 8);
    let cfg = ExecutorConfig {
        faults: Some(FaultConfig {
            adc_glitch_rate: 1.0,
            adc_retry_limit: 3,
            seed: 11,
            ..Default::default()
        }),
        ..Default::default()
    };
    // The constructor's initial scrub reads every crossbar; a permanently
    // glitching ADC must surface as a typed error, not a hang or a bogus
    // result.
    let err = PimExecutor::prepare_euclidean(cfg, &data).unwrap_err();
    match err {
        CoreError::ReRam(ReRamError::AdcRetryExhausted { attempts, .. }) => {
            assert_eq!(attempts, 3);
        }
        other => panic!("expected AdcRetryExhausted, got {other:?}"),
    }
}

#[test]
fn quarantine_without_spares_still_answers_with_valid_bounds() {
    let data = tiny_data(64, 16);

    // Size the array to the exact footprint of the clean preparation so
    // there is zero spare capacity for remapping.
    let clean = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &data).unwrap();
    let budget = clean.report().crossbars_used;

    let mut cfg = ExecutorConfig {
        faults: Some(FaultConfig {
            dead_wordline_rate: 0.3,
            seed: 13,
            ..Default::default()
        }),
        ..Default::default()
    };
    cfg.pim.num_crossbars = budget;
    let mut exec = PimExecutor::prepare_euclidean(cfg, &data).unwrap();
    let fc = *exec.fault_counters();
    assert!(fc.scrubs > 0 && fc.faults_detected > 0, "{fc:?}");
    assert!(
        fc.quarantined_rows > 0,
        "at 30% dead wordlines and zero spares some objects must be quarantined: {fc:?}"
    );

    // Quarantined objects are recovered host-side: every reported value
    // must still be a valid ED lower bound.
    let q: Vec<f64> = data.dataset().row(3).to_vec();
    let batch = exec.lb_ed_batch(&q).unwrap();
    assert!(batch.fault_counters.fallback_refinements > 0);
    for (i, &lb) in batch.values.iter().enumerate() {
        let true_ed = euclidean_sq(data.dataset().row(i), &q);
        assert!(
            lb <= true_ed + 1e-9,
            "object {i}: bound {lb} exceeds true ED {true_ed}"
        );
    }
}

//! Reference-implementation cross-checks: every optimized search must
//! agree with an independently written naive implementation (not just
//! with each other).

use proptest::prelude::*;
use simpim::datasets::{generate, lsh_codes, SyntheticConfig};
use simpim::mining::knn::hamming::knn_hamming;
use simpim::mining::knn::standard::knn_standard;
use simpim::mining::outlier::outliers_standard;
use simpim::similarity::{measures, Dataset, Measure};

/// Naive reference: full sort of all (value, index) pairs.
fn naive_knn(ds: &Dataset, q: &[f64], k: usize, measure: Measure) -> Vec<usize> {
    let mut all: Vec<(f64, usize)> = ds
        .rows()
        .enumerate()
        .map(|(i, row)| {
            let v = measures::evaluate(measure, row, q).expect("float measure");
            (v, i)
        })
        .collect();
    all.sort_by(|a, b| {
        let ord = a.0.partial_cmp(&b.0).unwrap();
        let ord = if measure.smaller_is_closer() {
            ord
        } else {
            ord.reverse()
        };
        ord.then(a.1.cmp(&b.1))
    });
    all.into_iter().take(k).map(|(_, i)| i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn knn_standard_matches_full_sort(seed in 0u64..500, k in 1usize..=15) {
        let ds = generate(&SyntheticConfig {
            n: 90, d: 12, clusters: 3, cluster_std: 0.08, stat_uniformity: 0.2, seed,
        });
        let q: Vec<f64> = ds.row((seed % 90) as usize).to_vec();
        for measure in [Measure::EuclideanSq, Measure::Cosine, Measure::Pearson] {
            let fast = knn_standard(&ds, &q, k, measure).unwrap();
            prop_assert_eq!(fast.indices(), naive_knn(&ds, &q, k, measure), "{:?}", measure);
        }
    }

    #[test]
    fn hamming_knn_matches_full_sort(seed in 0u64..200, bits in prop::sample::select(vec![64usize, 128, 192])) {
        let base = generate(&SyntheticConfig {
            n: 70, d: 16, clusters: 3, cluster_std: 0.05, stat_uniformity: 0.0, seed,
        });
        let codes = lsh_codes(&base, bits, seed);
        let qi = (seed % 70) as usize;
        let fast = knn_hamming(&codes, &codes.row(qi), 7);
        let mut all: Vec<(u32, usize)> = (0..codes.len())
            .map(|j| (codes.row(qi).hamming(&codes.row(j)), j))
            .collect();
        all.sort_by_key(|&(d, i)| (d, i));
        let naive: Vec<usize> = all.into_iter().take(7).map(|(_, i)| i).collect();
        prop_assert_eq!(fast.indices(), naive);
    }

    #[test]
    fn outlier_scores_match_naive(seed in 0u64..200) {
        let ds = generate(&SyntheticConfig {
            n: 60, d: 8, clusters: 2, cluster_std: 0.05, stat_uniformity: 0.0, seed,
        });
        let k = 4;
        let res = outliers_standard(&ds, k, 5);
        // Naive: each object's k-th NN distance via full sort.
        let mut scores: Vec<(f64, usize)> = (0..ds.len())
            .map(|i| {
                let mut dists: Vec<f64> = (0..ds.len())
                    .filter(|&j| j != i)
                    .map(|j| measures::euclidean_sq(ds.row(i), ds.row(j)))
                    .collect();
                dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
                (dists[k - 1], i)
            })
            .collect();
        scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let naive: Vec<usize> = scores.into_iter().take(5).map(|(_, i)| i).collect();
        prop_assert_eq!(res.indices(), naive);
    }
}

#[test]
fn kmeans_inertia_never_increases_across_iterations() {
    // Lloyd's monotone-descent property, checked by re-running with
    // growing iteration caps.
    use simpim::mining::kmeans::lloyd::kmeans_lloyd;
    use simpim::mining::kmeans::KmeansConfig;
    let ds = generate(&SyntheticConfig {
        n: 200,
        d: 16,
        clusters: 4,
        cluster_std: 0.05,
        stat_uniformity: 0.0,
        seed: 9,
    });
    let mut prev = f64::INFINITY;
    for iters in 1..8 {
        let res = kmeans_lloyd(
            &ds,
            &KmeansConfig {
                k: 4,
                max_iters: iters,
                seed: 3,
            },
            None,
        )
        .unwrap();
        assert!(
            res.inertia <= prev + 1e-9,
            "inertia rose at {iters}: {} > {prev}",
            res.inertia
        );
        prev = res.inertia;
    }
}

//! Determinism tests for the `simpim-par` execution layer (DESIGN.md §10):
//! every parallelized path — the kNN refinement walks, all four k-means
//! assign steps, the PIM dot-product batches — must return bit-identical
//! results (values *and* instrumentation counters) for `SIMPIM_THREADS`
//! in {1, 2, 8}, with the packed word-wide MAC kernel agreeing with the
//! scalar reference, and with injected crossbar faults in the loop.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate, sample_queries, SyntheticConfig};
use simpim::mining::kmeans::drake::kmeans_drake;
use simpim::mining::kmeans::elkan::kmeans_elkan;
use simpim::mining::kmeans::lloyd::kmeans_lloyd;
use simpim::mining::kmeans::yinyang::kmeans_yinyang;
use simpim::mining::kmeans::{KmeansConfig, KmeansResult};
use simpim::mining::knn::algorithms::fnn_cascade;
use simpim::mining::knn::cascade::knn_cascade;
use simpim::mining::knn::pim::knn_pim_ed;
use simpim::mining::knn::KnnResult;
use simpim::par;
use simpim::reram::{CrossbarConfig, FaultConfig, PimConfig};
use simpim::similarity::{Dataset, Measure, NormalizedDataset};
use simpim_bounds::BoundCascade;

/// The thread override in `simpim-par` is process-global; serialize the
/// tests that flip it so each one observes the counts it requested.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const THREADS: [usize; 3] = [1, 2, 8];

/// Neighbor lists compared down to the float bit pattern.
fn bits(neighbors: &[(usize, f64)]) -> Vec<(usize, u64)> {
    neighbors.iter().map(|&(i, v)| (i, v.to_bits())).collect()
}

fn workload(seed: u64) -> (Dataset, Vec<f64>) {
    let ds = generate(&SyntheticConfig {
        n: 140,
        d: 24,
        clusters: 4,
        cluster_std: 0.05,
        stat_uniformity: 0.2,
        seed,
    });
    let q = sample_queries(&ds, 1, 0.03, seed ^ 0x3C).remove(0);
    (ds, q)
}

fn small_exec_cfg(faults: Option<FaultConfig>) -> ExecutorConfig {
    ExecutorConfig {
        pim: PimConfig {
            crossbar: CrossbarConfig {
                size: 16,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 8192,
            ..Default::default()
        },
        alpha: 1e6,
        operand_bits: 32,
        double_buffer: false,
        parallel_regions: true,
        faults,
        scrub_interval: 0,
    }
}

/// Asserts two kNN runs are indistinguishable: same neighbors to the bit,
/// same operation counters (the counter equality is the sharp check — a
/// thread-count-dependent chunk schedule would change prune/eval counts
/// long before it changed the top-k).
fn assert_same_knn(a: &KnnResult, b: &KnnResult, what: &str) {
    assert_eq!(bits(&a.neighbors), bits(&b.neighbors), "{what}: neighbors");
    assert_eq!(
        a.report.profile.total_counters(),
        b.report.profile.total_counters(),
        "{what}: counters"
    );
}

fn assert_same_kmeans(a: &KmeansResult, b: &KmeansResult, what: &str) {
    assert_eq!(a.assignments, b.assignments, "{what}: assignments");
    assert_eq!(
        a.inertia.to_bits(),
        b.inertia.to_bits(),
        "{what}: inertia bits"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(
        a.report.profile.total_counters(),
        b.report.profile.total_counters(),
        "{what}: counters"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cascade_knn_bit_identical_across_thread_counts(seed in 0u64..1000, k in 1usize..=15) {
        let _g = lock();
        let (ds, q) = workload(seed);
        let cascade = fnn_cascade(&ds).unwrap();
        let runs: Vec<KnnResult> = THREADS
            .iter()
            .map(|&t| {
                par::with_threads(t, || {
                    knn_cascade(&ds, &cascade, &q, k, Measure::EuclideanSq).unwrap()
                })
            })
            .collect();
        assert_same_knn(&runs[0], &runs[1], "threads 1 vs 2");
        assert_same_knn(&runs[0], &runs[2], "threads 1 vs 8");
    }

    #[test]
    fn kmeans_bit_identical_across_thread_counts(seed in 0u64..1000, k in 2usize..=8) {
        let _g = lock();
        let (ds, _) = workload(seed);
        let cfg = KmeansConfig { k, max_iters: 12, seed: 7 };
        type Algo = fn(&Dataset, &KmeansConfig) -> KmeansResult;
        let algos: [(&str, Algo); 4] = [
            ("lloyd", |d, c| kmeans_lloyd(d, c, None).unwrap()),
            ("elkan", |d, c| kmeans_elkan(d, c, None).unwrap()),
            ("drake", |d, c| kmeans_drake(d, c, None).unwrap()),
            ("yinyang", |d, c| kmeans_yinyang(d, c, None).unwrap()),
        ];
        for (name, algo) in algos {
            let runs: Vec<KmeansResult> = THREADS
                .iter()
                .map(|&t| par::with_threads(t, || algo(&ds, &cfg)))
                .collect();
            assert_same_kmeans(&runs[0], &runs[1], &format!("{name} threads 1 vs 2"));
            assert_same_kmeans(&runs[0], &runs[2], &format!("{name} threads 1 vs 8"));
        }
    }

    #[test]
    fn faulty_pim_knn_bit_identical_across_thread_counts(seed in 0u64..300, k in 1usize..=10) {
        let _g = lock();
        let (ds, q) = workload(seed);
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let faults = Some(FaultConfig {
            stuck_low_rate: 0.01,
            stuck_high_rate: 0.01,
            seed: seed ^ 0x57,
            ..Default::default()
        });
        // A fresh executor per thread count: fault injection and scrub
        // state are part of the executor, and the comparison must cover
        // the guarded/fallback paths end to end.
        let runs: Vec<KnnResult> = THREADS
            .iter()
            .map(|&t| {
                par::with_threads(t, || {
                    let mut exec =
                        PimExecutor::prepare_euclidean(small_exec_cfg(faults), &nds).unwrap();
                    knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), &q, k).unwrap()
                })
            })
            .collect();
        assert_same_knn(&runs[0], &runs[1], "faulty threads 1 vs 2");
        assert_same_knn(&runs[0], &runs[2], "faulty threads 1 vs 8");
    }

    #[test]
    fn packed_mac_matches_scalar_at_any_thread_count(
        n in 1usize..6,
        s in prop::sample::select(vec![3usize, 4, 8, 12, 24]),
        seed in 0u64..1000,
    ) {
        use simpim::reram::{AccWidth, PimArray};
        let _g = lock();
        let cfg = PimConfig {
            crossbar: CrossbarConfig {
                size: 8,
                cell_bits: 2,
                dac_bits: 2,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 4096,
            ..Default::default()
        };
        let data: Vec<u32> = (0..n * s).map(|i| ((i as u64 * 31 + seed * 7) % 16) as u32).collect();
        let query: Vec<u32> = (0..s).map(|i| ((i as u64 * 13 + seed * 3) % 16) as u32).collect();
        let mut pim = PimArray::new(cfg).unwrap();
        let rep = pim.program_region(&data, n, s, 4).unwrap();
        // The strict path runs the packed word-wide MAC kernel on
        // materialized crossbars; the fast path is the scalar host
        // reference. Both must agree, and the fast path must return the
        // same bits at every thread count.
        let strict = pim.dot_batch_strict(rep.region, &query, AccWidth::U64).unwrap();
        let per_threads: Vec<Vec<u64>> = THREADS
            .iter()
            .map(|&t| par::with_threads(t, || {
                pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap().0
            }))
            .collect();
        prop_assert_eq!(&per_threads[0], &strict);
        prop_assert_eq!(&per_threads[0], &per_threads[1]);
        prop_assert_eq!(&per_threads[0], &per_threads[2]);
    }
}

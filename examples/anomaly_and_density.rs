//! Beyond kNN and k-means: the other similarity-based mining tasks of
//! Section II-C — distance-based outlier detection and density-based
//! clustering — accelerated by the same PIM bounds.
//!
//! ```text
//! cargo run --release --example anomaly_and_density
//! ```

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate, SyntheticConfig};
use simpim::mining::dbscan::{dbscan, DbscanLabel};
use simpim::mining::outlier::{outliers_pim, outliers_standard};
use simpim::similarity::NormalizedDataset;
use simpim::simkit::HostParams;

fn main() {
    // Clustered data with planted anomalies.
    let mut data = generate(&SyntheticConfig {
        n: 3_000,
        d: 64,
        clusters: 5,
        cluster_std: 0.02,
        stat_uniformity: 0.0,
        seed: 314,
    });
    let planted = [data.len(), data.len() + 1];
    data.push(&[0.99; 64]).unwrap();
    data.push(&[0.01; 64]).unwrap();
    let params = HostParams::default();

    let nds = NormalizedDataset::assert_normalized(data.clone());
    let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).expect("fits");

    // --- Outlier detection: top-5 by 10-NN distance. ---
    let base = outliers_standard(&data, 10, 5);
    let pim = outliers_pim(&mut exec, &data, 10, 5).expect("prepared");
    assert_eq!(base.indices(), pim.indices(), "PIM outliers must be exact");
    println!("top-5 outliers (index, score): {:?}", pim.outliers);
    for p in planted {
        assert!(pim.indices().contains(&p), "planted anomaly {p} found");
    }
    println!(
        "outlier detection: baseline {:.1} ms → PIM {:.1} ms ({:.1}x)",
        base.report.total_ms(&params),
        pim.report.total_ms(&params),
        base.report.total_ms(&params) / pim.report.total_ms(&params)
    );

    // --- DBSCAN: ε-range queries bound-filtered on PIM. ---
    let base = dbscan(&data, 0.22, 5, None).expect("baseline");
    let pim = dbscan(&data, 0.22, 5, Some(&mut exec)).expect("prepared");
    assert_eq!(base.labels, pim.labels, "PIM labeling must be exact");
    println!(
        "\nDBSCAN: {} clusters, {} noise points",
        pim.clusters,
        pim.noise_count()
    );
    for p in planted {
        assert_eq!(
            pim.labels[p],
            DbscanLabel::Noise,
            "anomaly {p} labeled noise"
        );
    }
    println!(
        "density clustering: baseline {:.1} ms → PIM {:.1} ms ({:.1}x)",
        base.report.total_ms(&params),
        pim.report.total_ms(&params),
        base.report.total_ms(&params) / pim.report.total_ms(&params)
    );
}

//! Time-series motif discovery and discord detection with PIM — the
//! paper's introduction cites both as core similarity-based mining tasks.
//!
//! ```text
//! cargo run --release --example motif_discovery
//! ```

use simpim::core::executor::ExecutorConfig;
use simpim::datasets::timeseries::{generate_series, SeriesConfig};
use simpim::mining::motif::{discord_pim, discord_standard, motif_pim, motif_standard};
use simpim::simkit::HostParams;

fn main() {
    let cfg = SeriesConfig {
        len: 3_000,
        pattern_len: 64,
        noise: 0.02,
        seed: 0x600D,
    };
    let s = generate_series(&cfg);
    let w = cfg.pattern_len;
    let params = HostParams::default();
    println!(
        "series: {} points; planted motif at {:?}, discord at {}",
        s.values.len(),
        s.motif_positions,
        s.discord_position
    );

    let base = motif_standard(&s.values, w);
    let pim = motif_pim(&s.values, w, ExecutorConfig::default()).expect("fits");
    assert_eq!(base.pair, pim.pair, "PIM motif must be exact");
    println!(
        "\nmotif: windows {:?} at distance {:.4}",
        pim.pair, pim.distance
    );
    println!(
        "  baseline {:.1} ms → PIM {:.1} ms ({:.1}x)",
        base.report.total_ms(&params),
        pim.report.total_ms(&params),
        base.report.total_ms(&params) / pim.report.total_ms(&params)
    );

    let base = discord_standard(&s.values, w);
    let pim = discord_pim(&s.values, w, ExecutorConfig::default()).expect("fits");
    assert_eq!(base.position, pim.position, "PIM discord must be exact");
    println!(
        "\ndiscord: window {} with 1-NN distance {:.4}",
        pim.position, pim.score
    );
    println!(
        "  baseline {:.1} ms → PIM {:.1} ms ({:.1}x)",
        base.report.total_ms(&params),
        pim.report.total_ms(&params),
        base.report.total_ms(&params) / pim.report.total_ms(&params)
    );
}

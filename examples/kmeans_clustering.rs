//! k-means clustering with PIM acceleration (Section VI-D's workload).
//!
//! ```text
//! cargo run --release --example kmeans_clustering
//! ```
//!
//! Clusters a NUS-WIDE-shaped synthetic dataset with all four algorithm
//! families — Lloyd, Elkan, Drake, Yinyang — and their `-PIM` variants.
//! Every variant starts from the same initial centers and must converge to
//! identical assignments (the bounds are lossless); the modeled ms/iter
//! shows who benefits from PIM and who does not (Elkan's bound-update
//! overhead caps its gain, as in the paper).

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate, SyntheticConfig};
use simpim::mining::kmeans::drake::kmeans_drake;
use simpim::mining::kmeans::elkan::kmeans_elkan;
use simpim::mining::kmeans::lloyd::kmeans_lloyd;
use simpim::mining::kmeans::pim::PimAssist;
use simpim::mining::kmeans::yinyang::kmeans_yinyang;
use simpim::mining::kmeans::{KmeansConfig, KmeansResult};
use simpim::similarity::NormalizedDataset;
use simpim::simkit::HostParams;

fn main() {
    let data = generate(&SyntheticConfig {
        n: 8_000,
        d: 500,
        clusters: 32,
        cluster_std: 0.05,
        stat_uniformity: 0.1,
        seed: 2024,
    });
    let cfg = KmeansConfig {
        k: 64,
        max_iters: 25,
        seed: 11,
    };
    let nds = NormalizedDataset::assert_normalized(data.clone());
    let params = HostParams::default();

    type Algo = fn(
        &simpim::similarity::Dataset,
        &KmeansConfig,
        Option<&mut PimAssist<'_>>,
    ) -> Result<KmeansResult, simpim::mining::MiningError>;
    let algos: [(&str, Algo); 4] = [
        ("Standard", kmeans_lloyd as Algo),
        ("Elkan", kmeans_elkan as Algo),
        ("Drake", kmeans_drake as Algo),
        ("Yinyang", kmeans_yinyang as Algo),
    ];

    println!(
        "{:<14} {:>6} {:>12} {:>14} {:>9}",
        "algorithm", "iters", "inertia", "ms/iter", "speedup"
    );
    let mut reference: Option<Vec<usize>> = None;
    for (name, algo) in algos {
        let base = algo(&data, &cfg, None).expect("baseline never touches PIM");
        if let Some(r) = &reference {
            assert_eq!(&base.assignments, r, "{name} must match Lloyd exactly");
        } else {
            reference = Some(base.assignments.clone());
        }
        let base_ms = base.report.total_ms(&params) / base.iterations as f64;

        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
            .expect("fits PIM array");
        let mut assist = PimAssist::new(&mut exec);
        let pim = algo(&data, &cfg, Some(&mut assist)).expect("prepared executor");
        assert_eq!(
            pim.assignments,
            *reference.as_ref().expect("set above"),
            "{name}-PIM must be lossless"
        );
        let pim_ms = pim.report.total_ms(&params) / pim.iterations as f64;

        println!(
            "{:<14} {:>6} {:>12.4} {:>14.3} {:>8}",
            name, base.iterations, base.inertia, base_ms, "-"
        );
        println!(
            "{:<14} {:>6} {:>12.4} {:>14.3} {:>8.2}x",
            format!("{name}-PIM"),
            pim.iterations,
            pim.inertia,
            pim_ms,
            base_ms / pim_ms
        );
    }
}

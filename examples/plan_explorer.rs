//! Execution-plan optimization walkthrough (Section V-D).
//!
//! ```text
//! cargo run --release --example plan_explorer
//! ```
//!
//! Builds the FNN bound cascade plus the PIM-aware bound over one dataset,
//! measures every bound's pruning ratio offline (the Fig. 15 measurement),
//! then enumerates the 2^L candidate plans with both cost models — Eq. 13's
//! independence assumption and the measured-conditional search — and prints
//! the winning pipelines.

use simpim::core::planner::{CandidateBound, Planner, PruningProfile};
use simpim::core::stage::PimFnnStage;
use simpim::datasets::{generate, sample_queries, SyntheticConfig};
use simpim::mining::knn::algorithms::fnn_levels;
use simpim::similarity::{Measure, NormalizedDataset};
use simpim_bounds::{BoundStage, FnnBound};

fn main() {
    let data = generate(&SyntheticConfig {
        n: 6_000,
        d: 420, // MSD-shaped
        clusters: 24,
        cluster_std: 0.05,
        stat_uniformity: 0.05,
        seed: 77,
    });
    let nds = NormalizedDataset::assert_normalized(data.clone());
    let queries = sample_queries(&data, 6, 0.02, 3);
    let k = 10;

    // Candidate set: the FNN levels (Fig. 12a) + LB_PIM-FNN at the
    // Theorem-4 maximal segmentation (105 for d = 420).
    let levels = fnn_levels(data.dim());
    println!("FNN levels for d = {}: {levels:?}", data.dim());
    let classic: Vec<FnnBound> = levels
        .iter()
        .map(|&s| FnnBound::build(&data, s).expect("divisor"))
        .collect();
    let pim = PimFnnStage::build(&nds, 105, 1e6).expect("divisor");

    let mut stages: Vec<&dyn BoundStage> = classic.iter().map(|b| b as &dyn BoundStage).collect();
    stages.push(&pim);

    // Fig. 15: per-bound pruning ratio and transfer cost.
    let ratios = PruningProfile::measure(&stages, &data, &queries, k, Measure::EuclideanSq)
        .expect("matching bound directions");
    println!("\n{:<18} {:>10} {:>12}", "bound", "Pr(B)", "bytes/object");
    for (s, r) in stages.iter().zip(&ratios) {
        println!(
            "{:<18} {:>9.1}% {:>12}",
            s.name(),
            r * 100.0,
            s.transfer_bytes_per_object()
        );
    }

    let planner = Planner {
        refine_bytes_per_object: data.dim() as u64 * 8,
        n: data.len(),
    };

    // Eq. 13 with independent ratios.
    let candidates: Vec<CandidateBound> = stages
        .iter()
        .zip(&ratios)
        .map(|(s, &r)| CandidateBound {
            name: s.name(),
            transfer_bytes: s.transfer_bytes_per_object(),
            pruning_ratio: r,
            is_pim: s.name().contains("PIM"),
        })
        .collect();
    let independent = planner.best_plan(&candidates);
    println!(
        "\nEq. 13 (independent ratios) plan: {:?}",
        independent.names
    );
    println!(
        "  estimated transfer: {:.2} MB/query",
        independent.estimated_bytes / 1e6
    );

    // Measured-conditional search (what reproduces Fig. 16's outcome).
    let measured = planner
        .best_plan_measured(&stages, &data, &queries, k, Measure::EuclideanSq)
        .expect("valid planner inputs");
    println!("measured-conditional plan:        {:?}", measured.names);
    println!(
        "  estimated transfer: {:.2} MB/query",
        measured.estimated_bytes / 1e6
    );

    // Reference points.
    let all: Vec<usize> = (0..stages.len()).collect();
    println!(
        "\nfull cascade would cost {:.2} MB/query (Eq. 13)",
        planner.plan_cost(&candidates, &all) / 1e6
    );
    println!(
        "no bounds (pure scan) costs {:.2} MB/query",
        planner.plan_cost(&candidates, &[]) / 1e6
    );
}

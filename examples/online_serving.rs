//! Online query serving: open a [`ServeEngine`] over a dataset, run
//! batched kNN queries, mutate the dataset while it serves, and read the
//! engine's statistics.
//!
//! ```sh
//! cargo run --example online_serving
//! ```

use simpim::core::executor::ExecutorConfig;
use simpim::mining::knn::standard::knn_standard;
use simpim::reram::{CrossbarConfig, PimConfig};
use simpim::serve::{ServeConfig, ServeEngine};
use simpim::similarity::{Dataset, Measure};

fn main() {
    // A small normalized dataset (values in [0, 1], as the paper
    // prescribes). Real callers would min-max normalize with `Quantizer`.
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..8)
                .map(|j| ((i * 13 + j * 29) % 101) as f64 / 100.0)
                .collect()
        })
        .collect();
    let data = Dataset::from_rows(&rows).expect("rectangular rows");

    // Two shards over a small platform; up to 8 queries coalesce into one
    // crossbar pass per shard, and each shard keeps 8 spare rows for
    // online inserts.
    let cfg = ServeConfig {
        shards: 2,
        max_batch: 8,
        spare_rows: 8,
        executor: ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 16,
                    adc_bits: 12,
                    ..Default::default()
                },
                num_crossbars: 4096,
                ..Default::default()
            },
            alpha: 1e6,
            operand_bits: 32,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        },
        ..Default::default()
    };
    let engine = ServeEngine::open(cfg.clone(), &data).expect("open engine");

    // Batched queries: one programming pass amortizes over the batch, and
    // every answer is bit-identical to an offline scan.
    let queries: Vec<Vec<f64>> = (0..4)
        .map(|q| {
            (0..8)
                .map(|j| ((q * 31 + j * 7) % 19) as f64 / 19.0)
                .collect()
        })
        .collect();
    let answers = engine.knn_batch(&queries, 5).expect("batch");
    for (q, ans) in queries.iter().zip(&answers) {
        let truth = knn_standard(&data, q, 5, Measure::EuclideanSq).expect("scan");
        assert_eq!(ans, &truth.neighbors, "online == offline, bit for bit");
    }
    println!(
        "4 queries answered; nearest to query 0: id {} at ED^2 {:.4}",
        answers[0][0].0, answers[0][0].1
    );

    // Online mutation: insert lands in a spare crossbar row, delete
    // tombstones in place. Both are immediately visible.
    let new_row: Vec<f64> = queries[0].clone();
    let id = engine.insert(&new_row).expect("insert");
    let hit = engine.knn(&queries[0], 1).expect("query");
    assert_eq!(hit[0], (id, 0.0), "the inserted row is its own nearest");
    engine.delete(id).expect("delete");
    let miss = engine.knn(&queries[0], 1).expect("query");
    assert_ne!(miss[0].0, id, "tombstoned rows never surface");

    // Deleting enough rows triggers a wear-aware compacting reprogram;
    // `flush` forces it immediately.
    for victim in 0..6 {
        engine.delete(victim).expect("delete");
    }
    engine.flush().expect("flush");

    let stats = engine.stats().expect("stats");
    println!(
        "live {} | {} queries in {} batches | {} inserts, {} deletes | reprograms per shard: {:?}",
        stats.live,
        stats.queries,
        stats.batches,
        stats.inserts,
        stats.deletes,
        stats
            .shards
            .iter()
            .map(|s| s.replicas.iter().map(|r| r.reprograms).sum::<u64>())
            .collect::<Vec<_>>(),
    );
    drop(engine);

    // Replication: with R = 2 each shard lives on two banks. Fail-stop
    // one mid-flight — the next query detects the loss, fails over to
    // the sibling bank (bit-identically), and the repair loop
    // re-replicates the lost bank between commands.
    let engine = ServeEngine::open(ServeConfig { replicas: 2, ..cfg }, &data)
        .expect("open replicated engine");
    let before = engine.knn(&queries[0], 5).expect("query");
    engine.kill_bank(0, 0).expect("kill");
    let after = engine.knn(&queries[0], 5).expect("query through the loss");
    assert_eq!(before, after, "failover is invisible in the answers");
    let stats = engine.stats().expect("stats");
    println!(
        "bank (0, 0) killed: {} failover(s), {} repair(s), {}/{} replicas of shard 0 healthy",
        stats.failovers, stats.repairs, stats.shards[0].healthy, stats.replicas,
    );
}

//! Serving over the network: bind a [`NetServer`] on an ephemeral port,
//! drive it with a pipelined [`NetClient`] (queries, inserts, deletes,
//! and a mid-flight bank failure), then run an open-loop load schedule
//! and print the tail-latency SLO verdict.
//!
//! ```sh
//! cargo run --example network_serving
//! ```

use std::time::Duration;

use simpim::core::executor::ExecutorConfig;
use simpim::mining::knn::standard::knn_standard;
use simpim::net::{run_open_loop, NetClient, NetConfig, NetServer, OpenLoopConfig};
use simpim::obs::slo::evaluate_latency;
use simpim::reram::{CrossbarConfig, PimConfig};
use simpim::serve::{ServeConfig, ServeEngine};
use simpim::similarity::{Dataset, Measure};

fn main() {
    // A small normalized dataset, replicated R = 2 so a bank can die
    // mid-run without losing answers.
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..8)
                .map(|j| ((i * 13 + j * 29) % 101) as f64 / 100.0)
                .collect()
        })
        .collect();
    let data = Dataset::from_rows(&rows).expect("rectangular rows");
    let cfg = ServeConfig {
        shards: 2,
        replicas: 2,
        max_batch: 8,
        spare_rows: 8,
        executor: ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 16,
                    adc_bits: 12,
                    ..Default::default()
                },
                num_crossbars: 4096,
                ..Default::default()
            },
            alpha: 1e6,
            operand_bits: 32,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        },
        ..Default::default()
    };
    let engine = ServeEngine::open(cfg, &data).expect("open engine");

    // Port 0 binds an ephemeral port; every request now crosses a real
    // TCP socket through the length-prefixed wire format.
    let server = NetServer::bind("127.0.0.1:0", NetConfig::default(), engine).expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let client = NetClient::connect(addr).expect("connect");
    let query: Vec<f64> = (0..8).map(|j| ((j * 7) % 19) as f64 / 19.0).collect();

    // Pipelining: submit many requests before waiting on any. The client
    // demultiplexes responses by request id, so answers resolve in
    // whatever order the server finishes them.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            client
                .submit(simpim::net::Request::Query {
                    k: 5,
                    timeout_ms: 2_000,
                    vector: query.clone(),
                })
                .expect("submit")
        })
        .collect();
    let truth = knn_standard(&data, &query, 5, Measure::EuclideanSq).expect("scan");
    for handle in handles {
        let answer = handle.wait_query().expect("query");
        for ((gid, gv), n) in answer.iter().zip(&truth.neighbors) {
            assert_eq!((*gid as usize, *gv), *n, "wire answers == offline scan");
        }
    }
    println!("8 pipelined queries answered bit-identically to the offline scan");

    // Mutations over the wire: insert, observe, delete, observe.
    let id = client.insert(&query).expect("insert");
    let hit = client
        .knn(&query, 1, Duration::from_secs(2))
        .expect("query");
    assert_eq!(hit[0], (id, 0.0), "the inserted row is its own nearest");
    assert!(client.delete(id).expect("delete"), "delete finds the row");
    let miss = client
        .knn(&query, 1, Duration::from_secs(2))
        .expect("query");
    assert_ne!(miss[0].0, id, "tombstoned rows never surface");
    client.flush().expect("flush");
    println!("insert/delete/flush round-tripped over the wire");

    // Fail-stop a bank mid-service: the next query fails over to the
    // sibling replica, still bit-identical, and the repair loop restores
    // the lost bank between commands.
    let before = client
        .knn(&query, 5, Duration::from_secs(2))
        .expect("query");
    server.engine().kill_bank(0, 0).expect("kill bank");
    let after = client
        .knn(&query, 5, Duration::from_secs(2))
        .expect("query through the loss");
    assert_eq!(before, after, "failover is invisible in the answers");
    println!("bank (0, 0) killed mid-run; answers unchanged");
    drop(client);

    // Open-loop load: a fixed arrival schedule over 4 connections, with
    // latency charged from the *scheduled* send time so queueing delay is
    // not hidden (no coordinated omission).
    let queries = vec![query];
    let load = OpenLoopConfig {
        connections: 4,
        total: 200,
        rate: 100.0,
        k: 5,
        timeout: Duration::from_secs(2),
    };
    let report = run_open_loop(addr, &load, &queries).expect("open loop");
    println!(
        "open loop: {} answered, {} shed, {} timed out, {} failed, {} transport errors \
         ({:.0} req/s scheduled, {:.0} achieved)",
        report.answered,
        report.shed,
        report.timeout,
        report.failed,
        report.transport_errors,
        report.scheduled_rate,
        report.achieved_rate,
    );
    assert_eq!(report.transport_errors, 0, "sheds are not socket errors");

    // The SLO verdict over the measured distribution. The threshold here
    // is deliberately generous — this example runs unoptimized.
    let slo = evaluate_latency(
        "example_net_p99",
        0.99,
        Duration::from_secs(2).as_nanos() as u64,
        &report.latency_ns,
    );
    println!(
        "p50 {:.2} ms | p95 {:.2} ms | p99 {:.2} ms | {} -> attained: {}",
        report.latency_ns.quantile(0.50) as f64 / 1e6,
        report.latency_ns.quantile(0.95) as f64 / 1e6,
        report.latency_ns.quantile(0.99) as f64 / 1e6,
        slo.objective,
        slo.attained,
    );

    let stats = server.stats();
    println!(
        "server saw {} connections, {} frames in, {} sheds, {} transport errors",
        stats.connections_accepted,
        stats.frames_rx,
        stats.window_sheds + stats.engine_sheds,
        stats.transport_errors,
    );
    server.shutdown();
}

//! Quickstart: accelerate one kNN query with ReRAM PIM, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's pipeline on a small synthetic workload:
//! 1. generate normalized data,
//! 2. program its α-quantized floors onto the simulated PIM array
//!    (offline stage, Fig. 9),
//! 3. answer a query with `Standard` (linear scan) and with
//!    `Standard-PIM` (LB_PIM-ED filter + exact refinement),
//! 4. verify both return identical neighbors and report the modeled
//!    times.

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate, sample_queries, SyntheticConfig};
use simpim::mining::knn::pim::knn_pim_ed;
use simpim::mining::knn::standard::knn_standard;
use simpim::similarity::{Measure, NormalizedDataset};
use simpim::simkit::HostParams;
use simpim_bounds::BoundCascade;

fn main() {
    // 1. A 20k × 128 clustered dataset, values already in [0, 1].
    let data = generate(&SyntheticConfig {
        n: 20_000,
        d: 128,
        clusters: 16,
        cluster_std: 0.05,
        stat_uniformity: 0.1,
        seed: 7,
    });
    let query = sample_queries(&data, 1, 0.02, 99).remove(0);
    println!("dataset: {} × {}", data.len(), data.dim());

    // 2. Offline: quantize (α = 1e6) and program the PIM array.
    let nds = NormalizedDataset::assert_normalized(data.clone());
    let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds)
        .expect("dataset fits the 2 GB PIM array");
    let rep = exec.report();
    println!(
        "programmed {} crossbars ({} cell writes, {:.2} ms offline) — bound: {}",
        rep.crossbars_used,
        rep.cell_writes,
        rep.program_ns / 1e6,
        exec.bound_name()
    );

    // 3. Query both ways.
    let k = 10;
    let baseline = knn_standard(&data, &query, k, Measure::EuclideanSq).expect("float measure");
    let pim =
        knn_pim_ed(&mut exec, &data, &BoundCascade::empty(), &query, k).expect("prepared executor");

    // 4. Same answer, less data transfer.
    assert_eq!(
        baseline.indices(),
        pim.indices(),
        "PIM result must be exact"
    );
    println!("k = {k} nearest neighbors agree: {:?}", pim.indices());

    let params = HostParams::default();
    let t_base = baseline.report.total_ms(&params);
    let t_pim = pim.report.total_ms(&params);
    println!("Standard      : {:>8.3} ms (model)", t_base);
    println!(
        "Standard-PIM  : {:>8.3} ms (model, incl. {:.3} ms on crossbars)",
        t_pim,
        pim.report.pim.total_ns() / 1e6
    );
    println!("speedup       : {:>8.1}x", t_base / t_pim);

    let refined = pim
        .report
        .profile
        .get("ED")
        .map(|r| r.counters.random_fetches)
        .unwrap_or(0);
    println!(
        "exact refinements after the PIM filter: {refined} of {} candidates",
        data.len()
    );
}

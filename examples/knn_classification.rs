//! kNN classification with PIM acceleration — the paper's motivating
//! workload (Section I).
//!
//! ```text
//! cargo run --release --example knn_classification
//! ```
//!
//! Generates a labeled dataset (latent cluster = class), classifies held-out
//! queries by majority vote among the k nearest neighbors, and shows that
//! the FNN cascade and its PIM-optimized variant produce the *same
//! predictions* as the exhaustive scan — accuracy is never compromised
//! (the paper's core claim) — while pruning almost all exact distance
//! computations.

use simpim::core::executor::{ExecutorConfig, PimExecutor};
use simpim::datasets::{generate_labeled, sample_queries, SyntheticConfig};
use simpim::mining::knn::algorithms::fnn_cascade;
use simpim::mining::knn::cascade::knn_cascade;
use simpim::mining::knn::pim::knn_pim_ed;
use simpim::mining::knn::standard::knn_standard;
use simpim::mining::knn::KnnResult;
use simpim::similarity::{Measure, NormalizedDataset};
use simpim::simkit::HostParams;
use simpim_bounds::BoundCascade;

/// Majority vote over the neighbor labels (lowest class wins ties).
fn classify(result: &KnnResult, labels: &[usize], classes: usize) -> usize {
    let mut votes = vec![0usize; classes];
    for &(i, _) in &result.neighbors {
        votes[labels[i]] += 1;
    }
    votes
        .iter()
        .enumerate()
        .max_by_key(|&(c, &v)| (v, usize::MAX - c))
        .map(|(c, _)| c)
        .expect("at least one class")
}

fn main() {
    let classes = 12;
    let (data, labels) = generate_labeled(&SyntheticConfig {
        n: 15_000,
        d: 256,
        clusters: classes,
        cluster_std: 0.06,
        stat_uniformity: 0.1,
        seed: 42,
    });
    let queries = sample_queries(&data, 40, 0.03, 4242);
    let k = 10;

    // Three classifiers over the same data.
    let cascade = fnn_cascade(&data).expect("divisible dims");
    let nds = NormalizedDataset::assert_normalized(data.clone());
    let mut exec =
        PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).expect("fits PIM array");

    let params = HostParams::default();
    let (mut t_std, mut t_fnn, mut t_pim) = (0.0, 0.0, 0.0);
    let mut agree = 0usize;
    let mut per_class_hits = 0usize;
    for q in &queries {
        let std_res = knn_standard(&data, q, k, Measure::EuclideanSq).expect("float measure");
        let fnn_res =
            knn_cascade(&data, &cascade, q, k, Measure::EuclideanSq).expect("float measure");
        let pim_res = knn_pim_ed(&mut exec, &data, &BoundCascade::empty(), q, k).expect("prepared");

        let c_std = classify(&std_res, &labels, classes);
        let c_fnn = classify(&fnn_res, &labels, classes);
        let c_pim = classify(&pim_res, &labels, classes);
        assert_eq!(std_res.indices(), fnn_res.indices(), "FNN must be exact");
        assert_eq!(std_res.indices(), pim_res.indices(), "PIM must be exact");
        assert_eq!(c_std, c_fnn);
        assert_eq!(c_std, c_pim);
        agree += 1;

        // Ground truth: the label of the nearest stored point.
        if c_std == labels[std_res.neighbors[0].0] {
            per_class_hits += 1;
        }
        t_std += std_res.report.total_ms(&params);
        t_fnn += fnn_res.report.total_ms(&params);
        t_pim += pim_res.report.total_ms(&params);
    }

    println!("queries classified:         {}", queries.len());
    println!("all three classifiers agree: {agree}/{}", queries.len());
    println!(
        "1-NN-label consistency:      {per_class_hits}/{}",
        queries.len()
    );
    println!("Standard      total: {t_std:>9.2} ms");
    println!(
        "FNN           total: {t_fnn:>9.2} ms   ({:.1}x vs Standard)",
        t_std / t_fnn
    );
    println!(
        "Standard-PIM  total: {t_pim:>9.2} ms   ({:.1}x vs Standard)",
        t_std / t_pim
    );
}

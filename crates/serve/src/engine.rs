//! The serving engine: a bounded submission queue in front of a
//! single scheduler thread that owns the replica sets.
//!
//! Batch lifecycle: clients enqueue commands onto a bounded
//! `sync_channel` (a full queue rejects with
//! [`ServeError::Overloaded`] — admission control). The scheduler
//! dequeues one command; if it is a query it greedily drains up to
//! `max_batch − 1` further *consecutive* queries without blocking,
//! forming one coalesced batch. Mutations act as batch barriers:
//! commands are always applied in arrival order, so a query sees
//! exactly the inserts and deletes that preceded it. The batch then
//! fans out across the shards — one scoped thread per shard, each
//! routing the coalesced PIM pass to its least-worn healthy replica —
//! and the per-shard partial top-k pools merge into each query's exact
//! global answer (see `mining::knn::resident` for the exactness
//! argument).
//!
//! Robustness plumbing (see [`crate::replica`] for the invariants):
//!
//! * a **repair tick** runs between commands — it sweeps every replica
//!   set for fail-stopped banks that no batch has routed to yet and
//!   re-replicates at most one lost replica per set per tick, so
//!   repair work interleaves with serving instead of blocking it;
//! * [`ServeEngine::flush`] is a **rolling reprogram**: one replica at
//!   a time leaves routing, compacts, and rejoins, with any queries
//!   that arrived during the step served from the other replicas
//!   between steps — under `R ≥ 2` a flush never blocks reads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use simpim_core::executor::ExecutorConfig;
use simpim_mining::knn::resident::merge_neighbors;
use simpim_obs::metrics::Histogram;
use simpim_obs::{SloReport, SloSpec, TraceCtx};
use simpim_similarity::Dataset;

use crate::error::ServeError;
use crate::flight::{FlightRecorder, FlightRecorderStats, Outcome, QuerySpan, QueryTrace};
use crate::replica::{ReplicaSet, ReplicaSetStats, RouteSample};
use crate::shard::ShardConfig;
use crate::Neighbor;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards the dataset is partitioned across.
    pub shards: usize,
    /// Replication factor `R`: each shard's rows are programmed onto
    /// this many distinct banks. `1` disables replication (no failover
    /// target; a lost bank degrades the shard to the exact host path).
    /// Defaults to the `SIMPIM_REPLICAS` environment variable, or 1.
    pub replicas: usize,
    /// Maximum queries coalesced into one scheduling batch (`Q`).
    pub max_batch: usize,
    /// Bounded submission-queue depth; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Spare object slots per shard for online appends.
    pub spare_rows: usize,
    /// Base tombstone ratio that triggers a compacting reprogram.
    pub tombstone_reprogram_ratio: f64,
    /// Program cycles after which the reprogram threshold has doubled.
    pub reprogram_wear_budget: u32,
    /// Executor (platform + quantization) configuration per shard.
    pub executor: ExecutorConfig,
    /// Deadline applied by [`ServeEngine::knn`] / [`ServeEngine::knn_batch`].
    pub default_timeout: Duration,
    /// Flight-recorder retention: the N slowest clean requests are kept
    /// (anomalous ones — failed, shed, timed out, degraded, failed over —
    /// ride in their own ring of the same size). `0` disables retention.
    pub flight_capacity: usize,
    /// Declarative service-level objectives evaluated on every
    /// [`ServeEngine::stats`] call from the engine's stage histograms and
    /// availability counters.
    pub slo: SloSpec,
}

fn replicas_from_env() -> usize {
    std::env::var("SIMPIM_REPLICAS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            replicas: replicas_from_env(),
            max_batch: 8,
            queue_depth: 64,
            spare_rows: 16,
            tombstone_reprogram_ratio: 0.25,
            reprogram_wear_budget: 1_000,
            executor: ExecutorConfig::default(),
            default_timeout: Duration::from_secs(5),
            flight_capacity: 32,
            slo: SloSpec::empty(),
        }
    }
}

impl ServeConfig {
    fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            executor: self.executor,
            spare_rows: self.spare_rows,
            tombstone_reprogram_ratio: self.tombstone_reprogram_ratio,
            reprogram_wear_budget: self.reprogram_wear_budget,
        }
    }
}

/// Latency summary of one request stage, with the exemplar that shows
/// *which* request to go look at: the trace id of the worst sample
/// recorded at or above the stage's p99 bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageLatency {
    /// Stage name: `queue`, `pass`, `merge`, `total`, or `mutation`.
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Worst sample near p99, in nanoseconds (`0` when empty).
    pub exemplar_ns: u64,
    /// Trace id of that sample — the key into the flight dump and the
    /// obs journal (`0` when unknown).
    pub exemplar_trace: u64,
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Per-shard replica-set breakdown.
    pub shards: Vec<ReplicaSetStats>,
    /// Live objects across all shards.
    pub live: usize,
    /// Replication factor the engine was opened with.
    pub replicas: usize,
    /// Queries answered (successfully or shed) since open.
    pub queries: u64,
    /// Scheduling batches formed since open.
    pub batches: u64,
    /// Inserts applied since open.
    pub inserts: u64,
    /// Deletes applied since open (including misses).
    pub deletes: u64,
    /// Queries rejected because their deadline expired in the queue.
    pub timeouts: u64,
    /// Queries rejected by admission control (full submission queue).
    pub overloaded: u64,
    /// Queries shed from a PIM pass to the exact host path by a
    /// recoverable bank failure (summed over shards and replicas).
    pub sheds: u64,
    /// Batches re-routed to another replica after a bank loss.
    pub failovers: u64,
    /// Lost replicas re-replicated onto spare banks since open.
    pub repairs: u64,
    /// Queries answered from the host mirror because a shard had no
    /// routable replica left.
    pub degraded_queries: u64,
    /// Shards currently with no routable replica (serving exact answers
    /// from the host mirror).
    pub degraded_shards: usize,
    /// Queries answered successfully (exact result delivered).
    pub answered_ok: u64,
    /// Queries answered with an error (deadline expiries count under
    /// [`EngineStats::timeouts`] instead).
    pub failed: u64,
    /// Per-stage latency breakdown (`queue`, `pass`, `merge`, `total`,
    /// `mutation`), each with its p99 exemplar trace id.
    pub stage_latency: Vec<StageLatency>,
    /// SLO attainment / error-budget / burn-rate reports for every
    /// objective in [`ServeConfig::slo`] (empty when none configured).
    pub slo: Vec<SloReport>,
    /// Flight-recorder occupancy.
    pub flight: FlightRecorderStats,
}

struct QueryReq {
    query: Vec<f64>,
    k: usize,
    deadline: Instant,
    enqueued: Instant,
    /// Request-scoped trace context, minted client-side at submission.
    /// Carries the query's identity through coalescing, the per-shard
    /// fan-out, and the merge, so its span tree is reconstructible even
    /// though one crossbar pass serves the whole batch.
    ctx: TraceCtx,
    reply: mpsc::Sender<Result<Vec<Neighbor>, ServeError>>,
}

enum Cmd {
    Query(QueryReq),
    Insert {
        row: Vec<f64>,
        enqueued: Instant,
        ctx: TraceCtx,
        reply: mpsc::Sender<Result<usize, ServeError>>,
    },
    Delete {
        id: usize,
        enqueued: Instant,
        ctx: TraceCtx,
        reply: mpsc::Sender<Result<bool, ServeError>>,
    },
    Flush {
        enqueued: Instant,
        ctx: TraceCtx,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    KillBank {
        shard: usize,
        replica: usize,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    Stats {
        reply: mpsc::Sender<EngineStats>,
    },
    FlightDump {
        reply: mpsc::Sender<String>,
    },
}

/// An in-flight command's reply handle, returned by the non-blocking
/// `*_submit` methods on [`ServeEngine`]. The command is already accepted
/// into the bounded queue when a `Pending` exists; [`Pending::wait`]
/// blocks only for execution, never for admission. Dropping it abandons
/// the reply (the scheduler's send simply finds no receiver) — the
/// command itself still executes.
#[derive(Debug)]
pub struct Pending<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> Pending<T> {
    /// Blocks until the scheduler answers. An engine that shuts down
    /// with the command still queued reports [`ServeError::Closed`].
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Non-blocking poll: `Some` once the scheduler has answered.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        match self.rx.try_recv() {
            Ok(out) => Some(out),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// A multi-threaded kNN serving engine over replicated resident ReRAM
/// shards.
///
/// Results are bit-identical to the offline [`simpim_mining::knn`]
/// variants on the same live rows: the PIM bounds are provably valid
/// (guard-banded under drift, host-exact under quarantine), refinement is
/// exact `f64` arithmetic, the per-shard top-k merge is order
/// independent, and replicas are interchangeable — so failover, repair,
/// rolling reprogram, and degraded mode never change an answer.
pub struct ServeEngine {
    tx: Option<SyncSender<Cmd>>,
    handle: Option<JoinHandle<()>>,
    dim: usize,
    default_timeout: Duration,
    overloaded: Arc<AtomicU64>,
}

impl ServeEngine {
    /// Opens an engine over `data` (values normalized into `[0, 1]`),
    /// partitioning the rows contiguously across `cfg.shards` shards and
    /// replicating each shard onto `cfg.replicas` distinct banks. Row `i`
    /// of `data` keeps `i` as its stable global id; inserts are assigned
    /// fresh ids counting up from `data.len()`.
    pub fn open(cfg: ServeConfig, data: &Dataset) -> Result<Self, ServeError> {
        Self::validate_cfg(&cfg)?;
        if data.is_empty() || data.len() < cfg.shards {
            return Err(ServeError::InvalidArgument {
                what: format!(
                    "need at least one row per shard ({} rows, {} shards)",
                    data.len(),
                    cfg.shards
                ),
            });
        }
        if data.as_flat().iter().any(|v| !(0.0..=1.0).contains(v)) {
            return Err(ServeError::InvalidArgument {
                what: "dataset values must be normalized into [0, 1]".to_string(),
            });
        }
        let span = simpim_obs::span!(
            "serve.engine.open",
            n = data.len() as u64,
            shards = cfg.shards as u64,
            replicas = cfg.replicas as u64
        );
        let mut sets = Vec::with_capacity(cfg.shards);
        let chunk = data.len().div_ceil(cfg.shards);
        let mut start = 0;
        while start < data.len() {
            let end = (start + chunk).min(data.len());
            let mut rows = Dataset::with_dim(data.dim()).map_err(simpim_core::CoreError::from)?;
            for i in start..end {
                rows.append_row(data.row(i))
                    .map_err(simpim_core::CoreError::from)?;
            }
            sets.push(ReplicaSet::open(
                cfg.shard_config(),
                cfg.replicas,
                rows,
                (start..end).collect(),
            )?);
            start = end;
        }
        drop(span);
        Ok(Self::spawn(sets, cfg, data.len(), data.dim()))
    }

    /// Opens an engine by **streaming** rows out of `source`, without
    /// ever materializing the whole dataset in one piece: rows flow in
    /// [`simpim_datasets::env_block_rows`]-sized blocks into one shard
    /// mirror at a time, and each shard's replicas program their banks
    /// straight from that mirror — so peak host memory beyond the
    /// resident mirrors is one block, not a second copy of the dataset.
    /// Row `i` of the stream keeps `i` as its stable global id, and the
    /// produced engine is bit-identical to
    /// [`ServeEngine::open`] over `source.materialize()`.
    pub fn open_source(
        cfg: ServeConfig,
        source: &mut dyn simpim_datasets::DatasetSource,
    ) -> Result<Self, ServeError> {
        Self::validate_cfg(&cfg)?;
        let n = source.total();
        if n == 0 || n < cfg.shards {
            return Err(ServeError::InvalidArgument {
                what: format!(
                    "need at least one row per shard ({n} rows, {} shards)",
                    cfg.shards
                ),
            });
        }
        let chunk = n.div_ceil(cfg.shards);
        let mut shard_rows = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            shard_rows.push(end - start);
            start = end;
        }
        let shard_cfgs = vec![cfg.shard_config(); shard_rows.len()];
        let span = simpim_obs::span!(
            "serve.engine.open",
            n = n as u64,
            shards = shard_rows.len() as u64,
            replicas = cfg.replicas as u64,
            streamed = 1u64
        );
        let sets = Self::stream_sets(source, &shard_rows, &shard_cfgs, cfg.replicas)?;
        drop(span);
        let dim = source.dim();
        Ok(Self::spawn(sets, cfg, n, dim))
    }

    /// Opens an engine from a fleet placement plan
    /// ([`simpim_core::FleetPlanner::plan`]): shard boundaries come from
    /// the plan's contiguous row ranges and each shard's executor is
    /// budgeted to its assigned bank's crossbar count, so heterogeneous
    /// banks each run the Theorem 4 / Eq. 13 configuration the planner
    /// modeled for them. Rows stream from `source` exactly as in
    /// [`ServeEngine::open_source`]; `cfg.shards` is ignored in favor of
    /// the plan. Answers are placement-independent — only throughput
    /// changes.
    pub fn open_planned(
        mut cfg: ServeConfig,
        source: &mut dyn simpim_datasets::DatasetSource,
        plan: &simpim_core::FleetPlan,
        banks: &[simpim_core::BankProfile],
    ) -> Result<Self, ServeError> {
        cfg.shards = plan.shards.len();
        Self::validate_cfg(&cfg)?;
        let n = source.total();
        let planned: usize = plan.shards.iter().map(|s| s.rows).sum();
        let contiguous = plan
            .shards
            .iter()
            .scan(0usize, |next, s| {
                let ok = s.start == *next && s.rows > 0;
                *next = s.start + s.rows;
                Some(ok)
            })
            .all(|ok| ok);
        if planned != n || !contiguous {
            return Err(ServeError::InvalidArgument {
                what: format!(
                    "plan covers {planned} rows (contiguous: {contiguous}), source has {n}"
                ),
            });
        }
        let mut shard_rows = Vec::with_capacity(plan.shards.len());
        let mut shard_cfgs = Vec::with_capacity(plan.shards.len());
        for placement in &plan.shards {
            let Some(bank) = banks.get(placement.bank) else {
                return Err(ServeError::InvalidArgument {
                    what: format!(
                        "plan references bank {} but only {} profiled",
                        placement.bank,
                        banks.len()
                    ),
                });
            };
            let mut shard_cfg = cfg.shard_config();
            shard_cfg.executor.pim.num_crossbars = bank.crossbars;
            shard_rows.push(placement.rows);
            shard_cfgs.push(shard_cfg);
        }
        let span = simpim_obs::span!(
            "serve.engine.open",
            n = n as u64,
            shards = shard_rows.len() as u64,
            replicas = cfg.replicas as u64,
            planned = 1u64
        );
        let sets = Self::stream_sets(source, &shard_rows, &shard_cfgs, cfg.replicas)?;
        drop(span);
        let dim = source.dim();
        Ok(Self::spawn(sets, cfg, n, dim))
    }

    /// Shared up-front configuration checks. A malformed fault model is
    /// rejected before any bank is programmed — a bad rate would
    /// otherwise only surface once the first shard opens (or worse, once
    /// the first scrub runs).
    fn validate_cfg(cfg: &ServeConfig) -> Result<(), ServeError> {
        if cfg.shards == 0 || cfg.replicas == 0 || cfg.max_batch == 0 || cfg.queue_depth == 0 {
            return Err(ServeError::InvalidArgument {
                what: "shards, replicas, max_batch and queue_depth must be non-zero".to_string(),
            });
        }
        if let Some(faults) = &cfg.executor.faults {
            faults.validate().map_err(|e| ServeError::Config {
                what: e.to_string(),
            })?;
        }
        Ok(())
    }

    /// The streaming materialization loop shared by
    /// [`ServeEngine::open_source`] and [`ServeEngine::open_planned`]:
    /// pulls `env_block_rows()`-sized blocks, validates them, fills one
    /// shard mirror at a time, and opens each replica set as soon as its
    /// mirror completes — at any instant only the finished mirrors plus
    /// one in-flight block are resident.
    fn stream_sets(
        source: &mut dyn simpim_datasets::DatasetSource,
        shard_rows: &[usize],
        shard_cfgs: &[ShardConfig],
        replicas: usize,
    ) -> Result<Vec<ReplicaSet>, ServeError> {
        let d = source.dim();
        let block = simpim_datasets::env_block_rows();
        let mut sets = Vec::with_capacity(shard_rows.len());
        let mut buf = Vec::new();
        let mut start = 0usize;
        for (&target, shard_cfg) in shard_rows.iter().zip(shard_cfgs) {
            let mut rows = Dataset::with_dim(d).map_err(simpim_core::CoreError::from)?;
            while rows.len() < target {
                buf.clear();
                let want = block.min(target - rows.len());
                let got = source.next_block(want, &mut buf);
                if got == 0 {
                    return Err(ServeError::InvalidArgument {
                        what: format!(
                            "source drained after {} rows, {} planned",
                            start + rows.len(),
                            shard_rows.iter().sum::<usize>()
                        ),
                    });
                }
                if buf.iter().any(|v| !(0.0..=1.0).contains(v)) {
                    return Err(ServeError::InvalidArgument {
                        what: "dataset values must be normalized into [0, 1]".to_string(),
                    });
                }
                for row in buf.chunks_exact(d) {
                    rows.append_row(row).map_err(simpim_core::CoreError::from)?;
                }
            }
            sets.push(ReplicaSet::open(
                *shard_cfg,
                replicas,
                rows,
                (start..start + target).collect(),
            )?);
            start += target;
        }
        Ok(sets)
    }

    /// Spawns the scheduler thread over the opened replica sets.
    fn spawn(sets: Vec<ReplicaSet>, cfg: ServeConfig, next_id: usize, dim: usize) -> Self {
        let default_timeout = cfg.default_timeout;
        // The timestamp origin every stage span is expressed against.
        // Created before the scheduler spawns so client-side enqueue
        // instants are never earlier than it.
        let epoch = Instant::now();
        let (tx, rx) = mpsc::sync_channel(cfg.queue_depth);
        let handle = thread::Builder::new()
            .name("simpim-serve-scheduler".to_string())
            .spawn(move || Scheduler::new(sets, cfg, next_id, epoch).run(rx))
            .expect("spawn scheduler thread");
        Self {
            tx: Some(tx),
            handle: Some(handle),
            dim,
            default_timeout,
            overloaded: Arc::new(AtomicU64::new(0)),
        }
    }

    fn tx(&self) -> &SyncSender<Cmd> {
        self.tx.as_ref().expect("engine open")
    }

    fn validate_query(&self, query: &[f64], k: usize) -> Result<(), ServeError> {
        if query.len() != self.dim {
            return Err(ServeError::InvalidArgument {
                what: format!(
                    "query has {} dimensions, engine serves {}",
                    query.len(),
                    self.dim
                ),
            });
        }
        if k == 0 {
            return Err(ServeError::InvalidArgument {
                what: "k must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// Exact kNN under squared ED with the default deadline. Subject to
    /// admission control: a full queue returns
    /// [`ServeError::Overloaded`] immediately instead of blocking.
    pub fn knn(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        self.knn_deadline(query, k, self.default_timeout)
    }

    /// [`ServeEngine::knn`] with an explicit deadline: if the query is
    /// still queued when it expires, it is dropped with
    /// [`ServeError::DeadlineExpired`] instead of occupying a batch slot.
    pub fn knn_deadline(
        &self,
        query: &[f64],
        k: usize,
        timeout: Duration,
    ) -> Result<Vec<Neighbor>, ServeError> {
        self.knn_submit(query, k, timeout, TraceCtx::root())?.wait()
    }

    /// Non-blocking admission of one query under an externally minted
    /// [`TraceCtx`] — the entry point for front-ends (the TCP server)
    /// that manage their own reply plumbing and propagate a client's
    /// trace id across process boundaries. A full queue sheds with
    /// [`ServeError::Overloaded`] immediately; on success the returned
    /// [`Pending`] resolves to the answer.
    pub fn knn_submit(
        &self,
        query: &[f64],
        k: usize,
        timeout: Duration,
        ctx: TraceCtx,
    ) -> Result<Pending<Vec<Neighbor>>, ServeError> {
        self.validate_query(query, k)?;
        let (reply, rx) = mpsc::channel();
        let now = Instant::now();
        let req = Cmd::Query(QueryReq {
            query: query.to_vec(),
            k,
            deadline: now + timeout,
            enqueued: now,
            ctx: if ctx.is_none() { TraceCtx::root() } else { ctx },
            reply,
        });
        self.admit(req)?;
        Ok(Pending { rx })
    }

    /// Non-blocking admission of one insert (see [`ServeEngine::knn_submit`]
    /// for the admission semantics). Unlike [`ServeEngine::insert`], a
    /// full queue sheds instead of blocking the caller.
    pub fn insert_submit(&self, row: &[f64], ctx: TraceCtx) -> Result<Pending<usize>, ServeError> {
        if row.len() != self.dim {
            return Err(ServeError::InvalidArgument {
                what: format!(
                    "row has {} dimensions, engine serves {}",
                    row.len(),
                    self.dim
                ),
            });
        }
        let (reply, rx) = mpsc::channel();
        self.admit(Cmd::Insert {
            row: row.to_vec(),
            enqueued: Instant::now(),
            ctx: if ctx.is_none() { TraceCtx::root() } else { ctx },
            reply,
        })?;
        Ok(Pending { rx })
    }

    /// Non-blocking admission of one delete (shedding semantics of
    /// [`ServeEngine::knn_submit`]).
    pub fn delete_submit(&self, id: usize, ctx: TraceCtx) -> Result<Pending<bool>, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.admit(Cmd::Delete {
            id,
            enqueued: Instant::now(),
            ctx: if ctx.is_none() { TraceCtx::root() } else { ctx },
            reply,
        })?;
        Ok(Pending { rx })
    }

    /// Non-blocking admission of a rolling flush (shedding semantics of
    /// [`ServeEngine::knn_submit`]).
    pub fn flush_submit(&self, ctx: TraceCtx) -> Result<Pending<()>, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.admit(Cmd::Flush {
            enqueued: Instant::now(),
            ctx: if ctx.is_none() { TraceCtx::root() } else { ctx },
            reply,
        })?;
        Ok(Pending { rx })
    }

    /// Admission control shared by every `*_submit`: try for a queue
    /// slot, shed with [`ServeError::Overloaded`] when full.
    fn admit(&self, cmd: Cmd) -> Result<(), ServeError> {
        match self.tx().try_send(cmd) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                simpim_obs::metrics::counter_add("simpim.serve.overloaded", 1);
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// Submits a whole batch of queries and waits for every answer.
    /// Unlike [`ServeEngine::knn`] this blocks for queue space instead of
    /// shedding — it is the closed-loop client's entry point, so results
    /// come back for every query, in order.
    pub fn knn_batch(
        &self,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>, ServeError> {
        for q in queries {
            self.validate_query(q, k)?;
        }
        let mut pending = Vec::with_capacity(queries.len());
        for q in queries {
            let (reply, rx) = mpsc::channel();
            let now = Instant::now();
            let req = Cmd::Query(QueryReq {
                query: q.clone(),
                k,
                deadline: now + self.default_timeout,
                enqueued: now,
                ctx: TraceCtx::root(),
                reply,
            });
            self.tx().send(req).map_err(|_| ServeError::Closed)?;
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| ServeError::Closed)?)
            .collect()
    }

    /// Inserts a normalized row, returning its assigned global id.
    pub fn insert(&self, row: &[f64]) -> Result<usize, ServeError> {
        if row.len() != self.dim {
            return Err(ServeError::InvalidArgument {
                what: format!(
                    "row has {} dimensions, engine serves {}",
                    row.len(),
                    self.dim
                ),
            });
        }
        let (reply, rx) = mpsc::channel();
        self.tx()
            .send(Cmd::Insert {
                row: row.to_vec(),
                enqueued: Instant::now(),
                ctx: TraceCtx::root(),
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Deletes a global id; returns whether it was present.
    pub fn delete(&self, id: usize) -> Result<bool, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx()
            .send(Cmd::Delete {
                id,
                enqueued: Instant::now(),
                ctx: TraceCtx::root(),
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Forces pending compaction onto the crossbars as a *rolling
    /// reprogram*: one replica at a time leaves routing, compacts, and
    /// rejoins, with queries served from the other replicas between
    /// steps — under `R ≥ 2` a flush never blocks reads.
    pub fn flush(&self) -> Result<(), ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx()
            .send(Cmd::Flush {
                enqueued: Instant::now(),
                ctx: TraceCtx::root(),
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Dumps the flight recorder as JSONL — one [`QueryTrace`] per line,
    /// anomalies (failed / shed / timed-out / degraded / failed-over
    /// requests) first, then the N slowest clean requests, slowest
    /// first. Feed it to `simpim flight` for per-stage waterfalls.
    pub fn flight_dump(&self) -> Result<String, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx()
            .send(Cmd::FlightDump { reply })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Fail-stops the bank under `shard`'s replica `replica` — the
    /// fault-injection entry point for recovery drills. Detection,
    /// failover, and re-replication then run exactly as they would for
    /// an organic bank loss.
    pub fn kill_bank(&self, shard: usize, replica: usize) -> Result<(), ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx()
            .send(Cmd::KillBank {
                shard,
                replica,
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> Result<EngineStats, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx()
            .send(Cmd::Stats { reply })
            .map_err(|_| ServeError::Closed)?;
        let mut stats = rx.recv().map_err(|_| ServeError::Closed)?;
        // Overload shedding happens client-side (the scheduler never
        // sees rejected commands), so it merges in here.
        stats.overloaded = self.overloaded.load(Ordering::Relaxed);
        Ok(stats)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Closing the channel ends the scheduler loop; join so shard
        // state (and its bank simulation) tears down before the process
        // moves on.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The engine-owned per-stage latency histograms. Each sample is
/// recorded with its request's trace id, so every bucket remembers the
/// worst offender that landed in it (the exemplar) — the jump-off point
/// from a p99 number to a concrete flight-recorder trace.
#[derive(Default)]
struct StageHists {
    queue: Histogram,
    pass: Histogram,
    merge: Histogram,
    total: Histogram,
    mutation: Histogram,
}

impl StageHists {
    /// Stage histogram by short name (`queue`) or full metric name
    /// (`simpim.serve.stage.queue_ns`) — both spellings work in SLO
    /// objectives.
    fn by_name(&self, name: &str) -> Option<&Histogram> {
        match name {
            "queue" | "simpim.serve.stage.queue_ns" => Some(&self.queue),
            "pass" | "simpim.serve.stage.pass_ns" => Some(&self.pass),
            "merge" | "simpim.serve.stage.merge_ns" => Some(&self.merge),
            "total" | "simpim.serve.stage.total_ns" | "simpim.serve.latency_ns" => {
                Some(&self.total)
            }
            "mutation" | "simpim.serve.stage.mutation_ns" => Some(&self.mutation),
            _ => None,
        }
    }

    fn summaries(&self) -> Vec<StageLatency> {
        ["queue", "pass", "merge", "total", "mutation"]
            .iter()
            .map(|&stage| {
                let h = self.by_name(stage).expect("known stage");
                let (exemplar_ns, exemplar_trace) =
                    h.exemplar_near_quantile(0.99).unwrap_or((0, 0));
                StageLatency {
                    stage: stage.to_string(),
                    count: h.count,
                    p50_ns: h.quantile(0.5),
                    p95_ns: h.quantile(0.95),
                    p99_ns: h.quantile(0.99),
                    exemplar_ns,
                    exemplar_trace,
                }
            })
            .collect()
    }
}

struct Scheduler {
    sets: Vec<ReplicaSet>,
    cfg: ServeConfig,
    next_id: usize,
    /// Non-query commands pulled off the channel by a mid-flush drain;
    /// replayed (in order) before anything new is dequeued.
    stashed: VecDeque<Cmd>,
    /// Timestamp origin for every stage span (set before spawn, shared
    /// with clients through their `enqueued` instants).
    epoch: Instant,
    stages: StageHists,
    flight: FlightRecorder,
    queries: u64,
    batches: u64,
    inserts: u64,
    deletes: u64,
    timeouts: u64,
    answered_ok: u64,
    failed: u64,
}

impl Scheduler {
    fn new(sets: Vec<ReplicaSet>, cfg: ServeConfig, next_id: usize, epoch: Instant) -> Self {
        let flight = FlightRecorder::new(cfg.flight_capacity);
        Self {
            sets,
            cfg,
            next_id,
            stashed: VecDeque::new(),
            epoch,
            stages: StageHists::default(),
            flight,
            queries: 0,
            batches: 0,
            inserts: 0,
            deletes: 0,
            timeouts: 0,
            answered_ok: 0,
            failed: 0,
        }
    }

    /// Nanoseconds since the engine epoch — the clock every flight-span
    /// timestamp is expressed in.
    fn ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    fn run(mut self, rx: Receiver<Cmd>) {
        loop {
            let cmd = match self.stashed.pop_front() {
                Some(c) => c,
                None => match rx.recv() {
                    Ok(c) => c,
                    Err(_) => break, // all senders dropped: shut down
                },
            };
            let mut deferred = None;
            match cmd {
                Cmd::Query(first) => {
                    let mut batch = vec![first];
                    // Greedy, non-blocking coalesce of consecutive
                    // queries. The first non-query command defers until
                    // the batch completes — arrival order is preserved.
                    while batch.len() < self.cfg.max_batch {
                        match rx.try_recv() {
                            Ok(Cmd::Query(q)) => batch.push(q),
                            Ok(other) => {
                                deferred = Some(other);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    simpim_obs::metrics::gauge_set("simpim.serve.queue_depth", batch.len() as f64);
                    self.process_queries(batch);
                }
                Cmd::Flush {
                    enqueued,
                    ctx,
                    reply,
                } => {
                    let dequeued = Instant::now();
                    let out = self.rolling_flush(&rx);
                    self.record_mutation_trace("flush", ctx, enqueued, dequeued, out.is_ok(), &[]);
                    let _ = reply.send(out);
                }
                other => deferred = Some(other),
            }
            if let Some(cmd) = deferred {
                self.process_mutation(cmd);
            }
            // Opportunistic repair between commands: re-replicate lost
            // banks while the queue is quiet instead of blocking a batch.
            self.repair_tick();
        }
    }

    /// The re-replicate stage of the repair loop, run between commands.
    /// Detection is traffic-driven — a lost bank is noticed (and
    /// quarantined) by the first batch that routes to it, which fails
    /// over to a sibling replica; this tick then rebuilds at most one
    /// lost replica per set, keeping each tick's latency bite bounded.
    /// A failed repair leaves the replica quarantined; the next tick
    /// retries. (An idle engine with a dead bank therefore stays
    /// un-repaired until traffic returns — like real scrubbing, the
    /// loop needs either queries or an explicit sweep to notice a
    /// loss; [`ReplicaSet::quarantine_lost`] is that sweep.)
    fn repair_tick(&mut self) {
        for set in &mut self.sets {
            if set.needs_repair() {
                let _ = set.repair_one();
            }
        }
    }

    /// Rolling reprogram across every replica of every shard: each
    /// replica leaves routing, compacts, rejoins — and between steps any
    /// queries that queued up are served from the replicas still in
    /// rotation. The first error is reported but the roll continues, so
    /// one bad replica cannot leave the rest uncompacted.
    fn rolling_flush(&mut self, rx: &Receiver<Cmd>) -> Result<(), ServeError> {
        let mut out = Ok(());
        for si in 0..self.sets.len() {
            for ri in 0..self.cfg.replicas {
                if let Err(e) = self.sets[si].reprogram_replica(ri) {
                    if out.is_ok() {
                        out = Err(e);
                    }
                }
                self.drain_queries(rx);
            }
        }
        out
    }

    /// Serves queries that arrived while a reprogram step held one
    /// replica out of rotation. Only *consecutive* queries are drained;
    /// the first non-query command is stashed and the drain stops, so
    /// arrival order is preserved (the stash replays before the channel
    /// is read again).
    fn drain_queries(&mut self, rx: &Receiver<Cmd>) {
        if !self.stashed.is_empty() {
            return; // a stashed mutation must run before newer queries
        }
        let mut batch = Vec::new();
        while batch.len() < self.cfg.max_batch {
            match rx.try_recv() {
                Ok(Cmd::Query(q)) => batch.push(q),
                Ok(other) => {
                    self.stashed.push_back(other);
                    break;
                }
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            self.process_queries(batch);
        }
    }

    fn process_queries(&mut self, batch: Vec<QueryReq>) {
        let now = Instant::now();
        let (live, expired): (Vec<_>, Vec<_>) = batch.into_iter().partition(|q| q.deadline >= now);
        for q in expired {
            self.timeouts += 1;
            simpim_obs::metrics::counter_add("simpim.serve.timeouts", 1);
            self.record_timeout_trace(&q, now);
            let _ = q.reply.send(Err(ServeError::DeadlineExpired));
        }
        if live.is_empty() {
            return;
        }
        self.batches += 1;
        self.queries += live.len() as u64;
        simpim_obs::metrics::counter_add("simpim.serve.batches", 1);
        simpim_obs::metrics::counter_add("simpim.serve.queries", live.len() as u64);
        simpim_obs::metrics::histogram_record("simpim.serve.batch_size", live.len() as u64);
        // The batch root in the obs journal. Every member query's flight
        // trace carries this batch's sequence number, and the per-shard
        // `serve.replica.pass` / executor spans parent on this context —
        // so one crossbar pass serving Q queries stays attributable.
        let batch_seq = self.batches;
        let (mut span, batch_ctx) = simpim_obs::trace::open_root_span(
            "serve.engine.batch",
            &[("queries", live.len() as f64), ("batch", batch_seq as f64)],
        );

        let queries: Vec<Vec<f64>> = live.iter().map(|q| q.query.clone()).collect();
        let ks: Vec<usize> = live.iter().map(|q| q.k).collect();
        let queries_ref = &queries;
        let ks_ref = &ks;
        // One job per shard on the shared `simpim-par` pool: each routes
        // the coalesced PIM pass to its least-worn healthy replica,
        // concurrently, with results returned in shard order (honors
        // `SIMPIM_THREADS`). Failover happens inside the job — a shard
        // whose routed bank died retries on its other replicas before
        // the merge ever sees it.
        type ShardBatch = (Vec<Result<Vec<Neighbor>, ServeError>>, RouteSample);
        let pass_start = Instant::now();
        let jobs: Vec<simpim_par::Job<'_, ShardBatch>> = self
            .sets
            .iter_mut()
            .enumerate()
            .map(|(si, set)| {
                Box::new(move || set.query_batch_traced(queries_ref, ks_ref, batch_ctx, si))
                    as simpim_par::Job<'_, _>
            })
            .collect();
        let shard_results: Vec<ShardBatch> = simpim_par::join_all(jobs);
        let pass_end = Instant::now();

        // Batch-level fault annotations, shared by every member query's
        // flight trace: which replica served each shard, and what
        // failover / shed / degraded handling the batch absorbed.
        let mut annotations = Vec::new();
        let mut degraded = false;
        let mut failovers = 0u64;
        let mut sheds = 0u64;
        for (si, (_, sample)) in shard_results.iter().enumerate() {
            failovers += sample.failovers;
            sheds += sample.sheds;
            degraded |= sample.degraded;
            if sample.failovers > 0 {
                annotations.push(format!(
                    "shard {si}: {} bank loss(es) detected, batch failed over",
                    sample.failovers
                ));
            }
            if sample.degraded {
                annotations.push(format!(
                    "shard {si}: no routable replica, served from exact host mirror"
                ));
            } else if let Some(r) = sample.replica {
                if sample.failovers > 0 {
                    annotations.push(format!("shard {si}: answered by replica {r}"));
                }
            }
            if sample.sheds > 0 {
                annotations.push(format!(
                    "shard {si}: {} query(ies) shed to host path by a recoverable PIM fault",
                    sample.sheds
                ));
            }
        }

        for (qi, req) in live.into_iter().enumerate() {
            let merge_start = Instant::now();
            let mut parts = Vec::with_capacity(shard_results.len());
            let mut failure = None;
            for (per_shard, _) in &shard_results {
                match &per_shard[qi] {
                    Ok(neighbors) => parts.push(neighbors.clone()),
                    Err(e) => failure = Some(e.clone()),
                }
            }
            let answer = match failure {
                Some(e) => Err(e),
                None => Ok(merge_neighbors(&parts, req.k, true)),
            };
            let done = Instant::now();
            let outcome = match &answer {
                Err(_) => Outcome::Failed,
                Ok(_) if degraded => Outcome::Degraded,
                Ok(_) if failovers > 0 => Outcome::Failover,
                Ok(_) if sheds > 0 => Outcome::Shed,
                Ok(_) => Outcome::Ok,
            };
            match &answer {
                Ok(_) => {
                    self.answered_ok += 1;
                    simpim_obs::metrics::counter_add("simpim.serve.answered_ok", 1);
                }
                Err(e) => {
                    self.failed += 1;
                    simpim_obs::metrics::counter_add("simpim.serve.failed", 1);
                    annotations.push(format!("query failed: {e}"));
                }
            }
            let mut anns = annotations.clone();
            if let Err(e) = &answer {
                anns.push(format!("error: {e}"));
            }
            self.record_query_trace(
                &req,
                now,
                pass_start,
                pass_end,
                merge_start,
                done,
                batch_seq,
                outcome,
                anns,
            );
            let _ = req.reply.send(answer);
        }
        span.record("shards", self.sets.len() as f64);
    }

    /// Records the stage latencies of one answered query (engine-local
    /// histograms + exemplar-tagged global metrics) and offers its
    /// explicitly-built span tree to the flight recorder. Built from the
    /// request's [`TraceCtx`] whether or not journal tracing is enabled.
    #[allow(clippy::too_many_arguments)]
    fn record_query_trace(
        &mut self,
        req: &QueryReq,
        dequeued: Instant,
        pass_start: Instant,
        pass_end: Instant,
        merge_start: Instant,
        done: Instant,
        batch_seq: u64,
        outcome: Outcome,
        annotations: Vec<String>,
    ) {
        let trace_id = req.ctx.trace_id;
        let queue_ns = dequeued.saturating_duration_since(req.enqueued).as_nanos() as u64;
        let pass_ns = pass_end.saturating_duration_since(pass_start).as_nanos() as u64;
        let merge_ns = done.saturating_duration_since(merge_start).as_nanos() as u64;
        let total_ns = done.saturating_duration_since(req.enqueued).as_nanos() as u64;
        self.stages.queue.record_exemplar(queue_ns, trace_id);
        self.stages.pass.record_exemplar(pass_ns, trace_id);
        self.stages.merge.record_exemplar(merge_ns, trace_id);
        self.stages.total.record_exemplar(total_ns, trace_id);
        simpim_obs::metrics::histogram_record_exemplar(
            "simpim.serve.stage.queue_ns",
            queue_ns,
            trace_id,
        );
        simpim_obs::metrics::histogram_record_exemplar(
            "simpim.serve.stage.pass_ns",
            pass_ns,
            trace_id,
        );
        simpim_obs::metrics::histogram_record_exemplar(
            "simpim.serve.stage.merge_ns",
            merge_ns,
            trace_id,
        );
        simpim_obs::metrics::histogram_record_exemplar(
            "simpim.serve.stage.total_ns",
            total_ns,
            trace_id,
        );
        simpim_obs::metrics::histogram_record_exemplar(
            "simpim.serve.latency_ns",
            total_ns,
            trace_id,
        );
        let root = QuerySpan {
            span_id: req.ctx.span_id,
            parent: None,
            name: "serve.query".into(),
            start_ns: self.ns(req.enqueued),
            end_ns: self.ns(done),
            attrs: vec![
                ("k".into(), req.k as f64),
                ("batch".into(), batch_seq as f64),
            ],
        };
        let child =
            |name: &str, start: Instant, end: Instant, attrs: Vec<(String, f64)>| QuerySpan {
                span_id: req.ctx.child().span_id,
                parent: Some(req.ctx.span_id),
                name: name.into(),
                start_ns: self.ns(start),
                end_ns: self.ns(end),
                attrs,
            };
        let spans = vec![
            root,
            child("serve.query.queue", req.enqueued, dequeued, vec![]),
            child(
                "serve.query.pass",
                pass_start,
                pass_end,
                vec![
                    ("shards".into(), self.sets.len() as f64),
                    ("batch".into(), batch_seq as f64),
                ],
            ),
            child("serve.query.merge", merge_start, done, vec![]),
        ];
        self.flight.record(QueryTrace {
            trace_id,
            kind: "query".into(),
            outcome,
            total_ns,
            spans,
            annotations,
        });
    }

    /// Flight-records a query whose deadline expired in the queue. Its
    /// tree is just root + queue — it never reached a crossbar — and
    /// timeouts are anomalies, so the recorder always retains them.
    fn record_timeout_trace(&mut self, req: &QueryReq, dequeued: Instant) {
        let waited = dequeued.saturating_duration_since(req.enqueued);
        let queue = QuerySpan {
            span_id: req.ctx.child().span_id,
            parent: Some(req.ctx.span_id),
            name: "serve.query.queue".into(),
            start_ns: self.ns(req.enqueued),
            end_ns: self.ns(dequeued),
            attrs: vec![],
        };
        let root = QuerySpan {
            span_id: req.ctx.span_id,
            parent: None,
            name: "serve.query".into(),
            start_ns: self.ns(req.enqueued),
            end_ns: self.ns(dequeued),
            attrs: vec![("k".into(), req.k as f64)],
        };
        self.flight.record(QueryTrace {
            trace_id: req.ctx.trace_id,
            kind: "query".into(),
            outcome: Outcome::Timeout,
            total_ns: waited.as_nanos() as u64,
            spans: vec![root, queue],
            annotations: vec![format!(
                "deadline expired after {:.3}ms in queue",
                waited.as_secs_f64() * 1e3
            )],
        });
    }

    /// Flight-records one mutation (`insert` / `delete` / `flush`):
    /// root + queue + apply spans, apply time into the `mutation` stage
    /// histogram. Failed mutations are anomalies and always retained.
    fn record_mutation_trace(
        &mut self,
        kind: &str,
        ctx: TraceCtx,
        enqueued: Instant,
        dequeued: Instant,
        ok: bool,
        attrs: &[(&str, f64)],
    ) {
        let done = Instant::now();
        let trace_id = ctx.trace_id;
        let apply_ns = done.saturating_duration_since(dequeued).as_nanos() as u64;
        let total_ns = done.saturating_duration_since(enqueued).as_nanos() as u64;
        self.stages.mutation.record_exemplar(apply_ns, trace_id);
        simpim_obs::metrics::histogram_record_exemplar(
            "simpim.serve.stage.mutation_ns",
            apply_ns,
            trace_id,
        );
        let root = QuerySpan {
            span_id: ctx.span_id,
            parent: None,
            name: format!("serve.{kind}"),
            start_ns: self.ns(enqueued),
            end_ns: self.ns(done),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let spans = vec![
            root,
            QuerySpan {
                span_id: ctx.child().span_id,
                parent: Some(ctx.span_id),
                name: "serve.query.queue".into(),
                start_ns: self.ns(enqueued),
                end_ns: self.ns(dequeued),
                attrs: vec![],
            },
            QuerySpan {
                span_id: ctx.child().span_id,
                parent: Some(ctx.span_id),
                name: format!("serve.{kind}.apply"),
                start_ns: self.ns(dequeued),
                end_ns: self.ns(done),
                attrs: vec![],
            },
        ];
        self.flight.record(QueryTrace {
            trace_id,
            kind: kind.into(),
            outcome: if ok { Outcome::Ok } else { Outcome::Failed },
            total_ns,
            spans,
            annotations: if ok {
                vec![]
            } else {
                vec![format!("{kind} failed")]
            },
        });
    }

    fn process_mutation(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Query(_) => unreachable!("queries are batched in run()"),
            Cmd::Flush { .. } => unreachable!("flush is rolled in run()"),
            Cmd::Insert {
                row,
                enqueued,
                ctx,
                reply,
            } => {
                let dequeued = Instant::now();
                let id = self.next_id;
                let shard = id % self.sets.len();
                let out = self.sets[shard].insert(id, &row).map(|()| {
                    self.next_id += 1;
                    self.inserts += 1;
                    simpim_obs::metrics::counter_add("simpim.serve.inserts", 1);
                    id
                });
                self.record_mutation_trace(
                    "insert",
                    ctx,
                    enqueued,
                    dequeued,
                    out.is_ok(),
                    &[("id", id as f64), ("shard", shard as f64)],
                );
                let _ = reply.send(out);
            }
            Cmd::Delete {
                id,
                enqueued,
                ctx,
                reply,
            } => {
                let dequeued = Instant::now();
                let mut out = Ok(false);
                for set in &mut self.sets {
                    match set.delete(id) {
                        Ok(true) => {
                            out = Ok(true);
                            break;
                        }
                        Ok(false) => {}
                        Err(e) => {
                            out = Err(e);
                            break;
                        }
                    }
                }
                self.deletes += 1;
                simpim_obs::metrics::counter_add("simpim.serve.deletes", 1);
                self.record_mutation_trace(
                    "delete",
                    ctx,
                    enqueued,
                    dequeued,
                    out.is_ok(),
                    &[("id", id as f64)],
                );
                let _ = reply.send(out);
            }
            Cmd::KillBank {
                shard,
                replica,
                reply,
            } => {
                let out = if shard >= self.sets.len() || replica >= self.cfg.replicas {
                    Err(ServeError::InvalidArgument {
                        what: format!(
                            "no replica ({shard}, {replica}): engine has {} shards × {} replicas",
                            self.sets.len(),
                            self.cfg.replicas
                        ),
                    })
                } else {
                    self.sets[shard].kill_replica(replica);
                    Ok(())
                };
                let _ = reply.send(out);
            }
            Cmd::Stats { reply } => {
                let shards: Vec<ReplicaSetStats> = self.sets.iter().map(|s| s.stats()).collect();
                // Availability: a query is "good" when it returned an
                // exact answer; errors and deadline expiries are "bad".
                let good = self.answered_ok;
                let total = self.answered_ok + self.failed + self.timeouts;
                let slo = simpim_obs::slo::evaluate_spec(
                    &self.cfg.slo,
                    |name| self.stages.by_name(name).cloned(),
                    |_| Some((good, total)),
                );
                for r in &slo {
                    simpim_obs::metrics::gauge_set(
                        &format!("simpim.serve.slo.{}.attainment", r.name),
                        r.attainment,
                    );
                    simpim_obs::metrics::gauge_set(
                        &format!("simpim.serve.slo.{}.budget_remaining", r.name),
                        r.budget_remaining,
                    );
                    simpim_obs::metrics::gauge_set(
                        &format!("simpim.serve.slo.{}.burn_rate", r.name),
                        r.burn_rate,
                    );
                }
                let stats = EngineStats {
                    live: shards.iter().map(|s| s.live).sum(),
                    replicas: self.cfg.replicas,
                    queries: self.queries,
                    batches: self.batches,
                    inserts: self.inserts,
                    deletes: self.deletes,
                    timeouts: self.timeouts,
                    overloaded: 0, // merged client-side
                    sheds: shards
                        .iter()
                        .flat_map(|s| s.replicas.iter())
                        .map(|r| r.sheds)
                        .sum(),
                    failovers: shards.iter().map(|s| s.failovers).sum(),
                    repairs: shards.iter().map(|s| s.repairs).sum(),
                    degraded_queries: shards.iter().map(|s| s.degraded_queries).sum(),
                    degraded_shards: shards.iter().filter(|s| s.degraded).count(),
                    answered_ok: self.answered_ok,
                    failed: self.failed,
                    stage_latency: self.stages.summaries(),
                    slo,
                    flight: self.flight.stats(),
                    shards,
                };
                simpim_obs::metrics::gauge_set(
                    "simpim.serve.degraded_shards",
                    stats.degraded_shards as f64,
                );
                let _ = reply.send(stats);
            }
            Cmd::FlightDump { reply } => {
                let _ = reply.send(self.flight.dump_jsonl());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_datasets::DatasetSource;
    use simpim_mining::knn::standard::knn_standard;
    use simpim_reram::{CrossbarConfig, FaultConfig, PimConfig};
    use simpim_similarity::Measure;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            shards: 2,
            replicas: 1,
            max_batch: 4,
            queue_depth: 32,
            spare_rows: 4,
            executor: ExecutorConfig {
                pim: PimConfig {
                    crossbar: CrossbarConfig {
                        size: 16,
                        adc_bits: 12,
                        ..Default::default()
                    },
                    num_crossbars: 4096,
                    ..Default::default()
                },
                alpha: 1e6,
                operand_bits: 32,
                double_buffer: false,
                parallel_regions: true,
                faults: None,
                scrub_interval: 0,
            },
            ..Default::default()
        }
    }

    fn replicated_cfg(r: usize) -> ServeConfig {
        ServeConfig {
            replicas: r,
            ..small_cfg()
        }
    }

    fn data() -> Dataset {
        Dataset::from_rows(
            &(0..12)
                .map(|i| {
                    (0..4)
                        .map(|j| ((i * 7 + j * 13) % 97) as f64 / 96.0)
                        .collect()
                })
                .collect::<Vec<Vec<f64>>>(),
        )
        .unwrap()
    }

    #[test]
    fn knn_matches_offline_scan() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        let q = vec![0.4, 0.3, 0.9, 0.1];
        let truth = knn_standard(&ds, &q, 3, Measure::EuclideanSq).unwrap();
        let got = engine.knn(&q, 3).unwrap();
        assert_eq!(got, truth.neighbors);
    }

    #[test]
    fn knn_batch_matches_offline_per_query() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        let queries: Vec<Vec<f64>> = vec![
            vec![0.4, 0.3, 0.9, 0.1],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.1, 0.2, 0.3, 0.4],
        ];
        let got = engine.knn_batch(&queries, 2).unwrap();
        for (q, res) in queries.iter().zip(&got) {
            let truth = knn_standard(&ds, q, 2, Measure::EuclideanSq).unwrap();
            assert_eq!(*res, truth.neighbors);
        }
        let stats = engine.stats().unwrap();
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn submitted_commands_carry_the_external_trace_into_the_flight_dump() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        let q = vec![0.4, 0.3, 0.9, 0.1];
        let truth = knn_standard(&ds, &q, 3, Measure::EuclideanSq).unwrap();
        // The shape of a cross-wire request: the trace id was minted by a
        // remote peer, the span id is joined locally.
        let remote_trace = TraceCtx::root().trace_id;
        let ctx = TraceCtx::join(remote_trace);
        let pending = engine
            .knn_submit(&q, 3, Duration::from_secs(5), ctx)
            .unwrap();
        assert_eq!(pending.wait().unwrap(), truth.neighbors);
        let ins = engine
            .insert_submit(&[0.1, 0.2, 0.3, 0.4], ctx)
            .unwrap()
            .wait()
            .unwrap();
        assert!(engine.delete_submit(ins, ctx).unwrap().wait().unwrap());
        engine.flush_submit(ctx).unwrap().wait().unwrap();
        let dump = engine.flight_dump().unwrap();
        let traces = crate::flight::parse_dump(&dump).unwrap();
        let carried = traces.iter().filter(|t| t.trace_id == remote_trace).count();
        assert_eq!(
            carried, 4,
            "query, insert, delete and flush all reconstruct under the remote trace id"
        );
        for t in traces.iter().filter(|t| t.trace_id == remote_trace) {
            t.validate_tree().unwrap();
        }
    }

    #[test]
    fn pending_try_wait_polls_without_blocking() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        let pending = engine
            .knn_submit(&[0.5; 4], 2, Duration::from_secs(5), TraceCtx::NONE)
            .unwrap();
        let mut out = None;
        for _ in 0..10_000 {
            if let Some(o) = pending.try_wait() {
                out = Some(o);
                break;
            }
            thread::yield_now();
        }
        let got = out.expect("scheduler answers well within the spin budget");
        let truth = knn_standard(&ds, &[0.5; 4], 2, Measure::EuclideanSq).unwrap();
        assert_eq!(got.unwrap(), truth.neighbors);
    }

    #[test]
    fn inserts_and_deletes_are_visible_to_later_queries() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        let row = vec![0.11, 0.22, 0.33, 0.44];
        let id = engine.insert(&row).unwrap();
        assert_eq!(id, 12);
        let got = engine.knn(&row, 1).unwrap();
        assert_eq!(got[0].0, id);
        assert!(engine.delete(id).unwrap());
        let got = engine.knn(&row, 1).unwrap();
        assert_ne!(got[0].0, id);
        assert!(!engine.delete(id).unwrap());
        let stats = engine.stats().unwrap();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.live, 12);
    }

    #[test]
    fn flush_compacts_all_shards() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        engine.delete(0).unwrap();
        engine.delete(7).unwrap();
        engine.flush().unwrap();
        let stats = engine.stats().unwrap();
        let tombstones: usize = stats
            .shards
            .iter()
            .flat_map(|s| s.replicas.iter())
            .map(|r| r.tombstones)
            .sum();
        assert_eq!(tombstones, 0);
        assert_eq!(stats.live, 10);
    }

    #[test]
    fn invalid_arguments_are_rejected_without_contacting_shards() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        assert!(matches!(
            engine.knn(&[0.5; 3], 1),
            Err(ServeError::InvalidArgument { .. })
        ));
        assert!(matches!(
            engine.knn(&[0.5; 4], 0),
            Err(ServeError::InvalidArgument { .. })
        ));
        assert!(matches!(
            engine.insert(&[0.5; 3]),
            Err(ServeError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn expired_deadlines_are_shed_not_served() {
        let ds = data();
        let engine = ServeEngine::open(small_cfg(), &ds).unwrap();
        let out = engine.knn_deadline(&[0.5; 4], 1, Duration::from_nanos(0));
        // A zero deadline either expires in the queue or races a fast
        // dequeue; anything else (Overloaded, Closed, ...) is a bug.
        assert!(matches!(out, Err(ServeError::DeadlineExpired) | Ok(_)));
    }

    #[test]
    fn open_rejects_bad_configs() {
        let ds = data();
        let mut c = small_cfg();
        c.shards = 0;
        assert!(ServeEngine::open(c, &ds).is_err());
        let mut c = small_cfg();
        c.replicas = 0;
        assert!(ServeEngine::open(c, &ds).is_err());
        let mut c = small_cfg();
        c.shards = 13; // more shards than rows
        assert!(ServeEngine::open(c, &ds).is_err());
        let bad = Dataset::from_rows(&[vec![1.5, 0.5]]).unwrap();
        assert!(matches!(
            ServeEngine::open(small_cfg(), &bad),
            Err(ServeError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn open_validates_the_fault_model_up_front() {
        let ds = data();
        let mut c = small_cfg();
        c.executor.faults = Some(FaultConfig {
            stuck_low_rate: 1.5, // out of range
            ..Default::default()
        });
        assert!(matches!(
            ServeEngine::open(c, &ds),
            Err(ServeError::Config { .. })
        ));
    }

    #[test]
    fn killed_replica_fails_over_and_is_repaired() {
        let ds = data();
        let engine = ServeEngine::open(replicated_cfg(2), &ds).unwrap();
        let q = vec![0.4, 0.3, 0.9, 0.1];
        let truth = knn_standard(&ds, &q, 3, Measure::EuclideanSq).unwrap();
        assert_eq!(engine.knn(&q, 3).unwrap(), truth.neighbors);

        engine.kill_bank(0, 0).unwrap();
        assert!(matches!(
            engine.kill_bank(9, 0),
            Err(ServeError::InvalidArgument { .. })
        ));
        // The next query routes to the dead bank, detects the loss, and
        // fails over — answering bit-identically through it...
        assert_eq!(engine.knn(&q, 3).unwrap(), truth.neighbors);
        // ...and the between-command repair tick re-replicates the lost
        // bank: by the time stats answer, the set is whole again.
        let stats = engine.stats().unwrap();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.shards[0].healthy, 2);
        assert_eq!(stats.degraded_shards, 0);
        assert_eq!(engine.knn(&q, 3).unwrap(), truth.neighbors);
    }

    #[test]
    fn stats_report_the_replication_shape() {
        let ds = data();
        let engine = ServeEngine::open(replicated_cfg(2), &ds).unwrap();
        let stats = engine.stats().unwrap();
        assert_eq!(stats.replicas, 2);
        assert_eq!(stats.shards.len(), 2);
        for set in &stats.shards {
            assert_eq!(set.replicas.len(), 2);
            assert_eq!(set.healthy, 2);
            assert!(!set.degraded);
        }
        assert_eq!(stats.overloaded, 0);
        assert_eq!(stats.failovers, 0);
    }

    #[test]
    fn rolling_flush_compacts_every_replica() {
        let ds = data();
        let engine = ServeEngine::open(replicated_cfg(2), &ds).unwrap();
        engine.delete(0).unwrap();
        engine.delete(7).unwrap();
        engine.flush().unwrap();
        let stats = engine.stats().unwrap();
        for set in &stats.shards {
            for replica in &set.replicas {
                assert_eq!(replica.tombstones, 0);
            }
            assert_eq!(set.healthy, 2, "every replica rejoined routing");
        }
        assert_eq!(stats.live, 10);
    }

    fn synth_source() -> simpim_datasets::SynthSource {
        simpim_datasets::SynthSource::new(simpim_datasets::SyntheticConfig {
            n: 12,
            d: 4,
            clusters: 2,
            cluster_std: 0.08,
            stat_uniformity: 0.5,
            seed: 11,
        })
    }

    #[test]
    fn open_source_answers_like_the_in_memory_open() {
        let ds = synth_source().materialize();
        let in_memory = ServeEngine::open(small_cfg(), &ds).unwrap();
        let streamed = ServeEngine::open_source(small_cfg(), &mut synth_source()).unwrap();
        for i in 0..3 {
            let q: Vec<f64> = (0..4)
                .map(|j| ((i * 5 + j * 3) % 11) as f64 / 10.0)
                .collect();
            let truth = knn_standard(&ds, &q, 3, Measure::EuclideanSq).unwrap();
            assert_eq!(in_memory.knn(&q, 3).unwrap(), truth.neighbors);
            assert_eq!(streamed.knn(&q, 3).unwrap(), truth.neighbors);
        }
        // Mutations behave identically on the streamed engine.
        let id = streamed.insert(&[0.5; 4]).unwrap();
        assert_eq!(id, 12);
        assert!(streamed.delete(3).unwrap());
        let stats = streamed.stats().unwrap();
        assert_eq!(stats.live, 12);
    }

    #[test]
    fn open_planned_places_shards_on_profiled_banks() {
        use simpim_core::{BankProfile, CandidateBound, FleetPlanner};
        let cfg = small_cfg();
        let banks = [
            BankProfile {
                crossbars: 4096,
                wear: 3,
                healthy: true,
            },
            BankProfile {
                crossbars: 4096,
                wear: 0,
                healthy: true,
            },
        ];
        let planner = FleetPlanner {
            d: 4,
            operand_bits: cfg.executor.operand_bits,
            buffer_factor: 1,
            base_pim: cfg.executor.pim,
            refine_bytes_per_object: 64,
            candidates: vec![CandidateBound {
                name: "LB_PIM-FNN".to_string(),
                transfer_bytes: 24,
                pruning_ratio: 0.9,
                is_pim: true,
            }],
            pim_reference_s: 4,
            spare_rows: cfg.spare_rows,
            merge_bytes_per_shard: 1.0,
        };
        let plan = planner.plan(12, &banks).unwrap();
        let ds = synth_source().materialize();
        let engine = ServeEngine::open_planned(cfg, &mut synth_source(), &plan, &banks).unwrap();
        let q = vec![0.4, 0.3, 0.9, 0.1];
        let truth = knn_standard(&ds, &q, 3, Measure::EuclideanSq).unwrap();
        assert_eq!(
            engine.knn(&q, 3).unwrap(),
            truth.neighbors,
            "placement must be invisible in answers"
        );
        assert_eq!(engine.stats().unwrap().shards.len(), plan.shards.len());
    }

    #[test]
    fn open_planned_rejects_a_plan_that_mismatches_the_source() {
        use simpim_core::{FleetPlan, ShardPlacement};
        let mut src = synth_source();
        let plan = FleetPlan {
            shards: Vec::<ShardPlacement>::new(),
            makespan_bytes: 0.0,
            modeled_qps: 0.0,
        };
        assert!(matches!(
            ServeEngine::open_planned(small_cfg(), &mut src, &plan, &[]),
            Err(ServeError::InvalidArgument { .. })
        ));
    }
}

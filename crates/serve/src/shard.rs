//! One serving shard: a host-side mirror of the rows plus a PIM
//! *residency* (the programmed crossbar state) on its own ReRAM bank.
//!
//! The split matters for replication: a [`crate::ReplicaSet`] programs
//! the same rows onto `R` banks, and before this split each replica
//! carried its own full host mirror — `R` copies of every vector. Now
//! the mirror ([`ShardMirror`]) is hoisted out and shared; each replica
//! keeps only a [`Residency`]: the executor, the bank, and a compact
//! `order` map from crossbar object positions to mirror rows.
//!
//! The mirror tracks three populations per row:
//!
//! * **resident** rows — present in a residency's `order`, i.e.
//!   programmed on that bank (at open, at the last reprogram, or
//!   appended into Theorem 4's spare rows);
//! * **tombstoned** rows — deleted (`live = false`) but possibly still
//!   programmed; the PIM batch keeps producing bounds for them, the
//!   refinement never surfaces them;
//! * **delta** rows — live rows a residency has *not* programmed (its
//!   spare rows ran out, or its bank was dead at insert). They simply
//!   get no PIM bound: the refinement sees bound `0.0` — never prunable
//!   — so they are evaluated exactly, which is precisely the old
//!   separate delta scan without the second pass.
//!
//! Because residencies on different banks age differently (repair gives
//! one a fresh bank, appends land on some and overflow on others), each
//! keeps its own `order`; the mirror only compacts tombstones away once
//! *every* residency over it has folded them (see
//! [`ShardMirror::compact`]).
//!
//! The wear-aware reprogram policy is unchanged: a reprogram rewrites
//! every crossbar of the residency, so the tombstone ratio that
//! triggers one *rises* with the wear already accumulated — a fresh
//! bank compacts eagerly, a worn bank tolerates more dead weight before
//! burning endurance.
//!
//! Programming is **streamed**: rows flow from the mirror into the bank
//! in [`simpim_datasets::env_block_rows`]-sized blocks through
//! [`simpim_core::ResidentBuilder`], which is bit-identical to one-shot
//! preparation (matrix, Φ, wear, timing) but never materializes a
//! second copy of the shard — open, repair, and reprogram all share it.

use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_core::{CoreError, ResidentBuilder};
use simpim_datasets::env_block_rows;
use simpim_mining::knn::resident::{refine_resident, ShardView};
use simpim_similarity::{Dataset, Measure};
use simpim_simkit::OpCounters;

use crate::error::ServeError;
use crate::Neighbor;

/// Per-shard policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Executor (platform + quantization) configuration.
    pub executor: ExecutorConfig,
    /// Spare object slots reserved per shard for online appends.
    pub spare_rows: usize,
    /// Base tombstone ratio that triggers a compacting reprogram.
    pub tombstone_reprogram_ratio: f64,
    /// Program cycles after which the reprogram threshold has doubled
    /// (the wear-aware part of the policy).
    pub reprogram_wear_budget: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            executor: ExecutorConfig::default(),
            spare_rows: 16,
            tombstone_reprogram_ratio: 0.25,
            reprogram_wear_budget: 1_000,
        }
    }
}

/// Point-in-time shard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Live objects (resident + delta, tombstones excluded).
    pub live: usize,
    /// Tombstoned slots still programmed on this residency's bank.
    pub tombstones: usize,
    /// Live rows this residency has not programmed (host-only until the
    /// next reprogram folds them in).
    pub delta: usize,
    /// Spare crossbar rows still available for appends.
    pub spare: usize,
    /// Compacting reprograms performed since open.
    pub reprograms: u64,
    /// Queries served from the host path because the PIM batch failed.
    pub sheds: u64,
    /// Highest program count over this shard's crossbars (wear).
    pub max_crossbar_programs: u32,
    /// Whether this shard's bank is fail-stopped (bank loss).
    pub lost: bool,
}

/// The host-side truth for one shard's rows: vectors, stable global
/// ids, and liveness. Shared by every replica of the shard — mutations
/// apply here once, residencies only track what their bank holds.
#[derive(Debug)]
pub struct ShardMirror {
    rows: Dataset,
    ids: Vec<usize>,
    live: Vec<bool>,
    dead: usize,
}

impl ShardMirror {
    /// Wraps `rows` (values normalized into `[0, 1]`) with their stable
    /// global `ids`. Takes ownership — no copy is made, and none is made
    /// per replica either.
    pub fn new(rows: Dataset, ids: Vec<usize>) -> Self {
        assert_eq!(rows.len(), ids.len(), "ids must parallel rows");
        assert!(!rows.is_empty(), "a shard needs at least one row");
        let live = vec![true; rows.len()];
        Self {
            rows,
            ids,
            live,
            dead: 0,
        }
    }

    /// An empty mirror to stream rows into (see [`ShardMirror::append`]).
    pub fn with_dim(d: usize) -> Result<Self, ServeError> {
        Ok(Self {
            rows: Dataset::with_dim(d)
                .map_err(CoreError::from)
                .map_err(ServeError::from)?,
            ids: Vec::new(),
            live: Vec::new(),
            dead: 0,
        })
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.rows.dim()
    }

    /// All slots, tombstoned included.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the mirror holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Live rows.
    pub fn live_len(&self) -> usize {
        self.rows.len() - self.dead
    }

    /// Tombstoned slots awaiting compaction.
    pub fn dead_len(&self) -> usize {
        self.dead
    }

    /// Appends a row, returning its mirror index.
    pub fn append(&mut self, id: usize, row: &[f64]) -> Result<usize, ServeError> {
        let idx = self
            .rows
            .append_row(row)
            .map_err(CoreError::from)
            .map_err(ServeError::from)?;
        self.ids.push(id);
        self.live.push(true);
        Ok(idx)
    }

    /// Tombstones global `id`; returns its mirror index if it was live.
    pub fn tombstone(&mut self, id: usize) -> Option<usize> {
        let idx = self.ids.iter().position(|&x| x == id)?;
        if !self.live[idx] {
            return None; // already tombstoned
        }
        self.live[idx] = false;
        self.dead += 1;
        Some(idx)
    }

    /// Mirror indices of the live rows, in row order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.rows.len()).filter(|&i| self.live[i])
    }

    /// Snapshot of the live rows with their stable global ids — the
    /// compacted layout a reprogram produces. Answers over the snapshot
    /// are bit-identical to answers over the mirror (compaction
    /// invariance).
    pub fn snapshot_live(&self) -> Result<(Dataset, Vec<usize>), ServeError> {
        let mut rows = Dataset::with_dim(self.dim())
            .map_err(CoreError::from)
            .map_err(ServeError::from)?;
        let mut ids = Vec::new();
        for i in self.live_indices() {
            rows.append_row(self.rows.row(i))
                .map_err(CoreError::from)
                .map_err(ServeError::from)?;
            ids.push(self.ids[i]);
        }
        Ok((rows, ids))
    }

    /// Drops tombstoned rows, returning `old index → new index` (dead
    /// slots map to `None`). Only call once every residency over this
    /// mirror has folded its tombstones (their `order`s are remapped
    /// with the returned table via [`Residency::remap`]); compacting
    /// under a residency that still has dead rows programmed would
    /// desynchronize its bound batch from the mirror.
    pub fn compact(&mut self) -> Vec<Option<usize>> {
        let mut remap = vec![None; self.rows.len()];
        if self.dead == 0 {
            for (i, slot) in remap.iter_mut().enumerate() {
                *slot = Some(i);
            }
            return remap;
        }
        let mut rows = Dataset::with_dim(self.dim()).expect("dim is valid");
        let mut ids = Vec::with_capacity(self.live_len());
        for (i, slot) in remap.iter_mut().enumerate() {
            if self.live[i] {
                *slot = Some(rows.len());
                rows.append_row(self.rows.row(i)).expect("row dims match");
                ids.push(self.ids[i]);
            }
        }
        self.rows = rows;
        self.ids = ids;
        self.live = vec![true; self.ids.len()];
        self.dead = 0;
        remap
    }

    /// Exact host-side answer over every live row, ignoring crossbars
    /// entirely — the degraded / shed path. Bit-identical to the PIM
    /// path by the refinement's exactness argument.
    pub fn host_query(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let zeros = vec![0.0; self.rows.len()];
        self.refine(query, k, &zeros)
    }

    /// Refines one query given per-mirror-row bound values (`0.0` =
    /// no bound, refine exactly). Tombstones never surface.
    fn refine(&self, query: &[f64], k: usize, bounds: &[f64]) -> Result<Vec<Neighbor>, ServeError> {
        let mut counters = OpCounters::new();
        let out = refine_resident(
            &ShardView {
                rows: &self.rows,
                ids: &self.ids,
                live: &self.live,
                bounds,
            },
            query,
            k,
            Measure::EuclideanSq,
            &mut counters,
        )?;
        Ok(out.neighbors)
    }
}

/// One bank's programmed state over a [`ShardMirror`]: the executor and
/// the map from crossbar object positions to mirror rows. This is all a
/// replica owns — the vectors themselves live in the shared mirror.
#[derive(Debug)]
pub struct Residency {
    cfg: ShardConfig,
    exec: PimExecutor,
    /// `order[j]` = mirror index of the bank's `j`-th programmed object.
    order: Vec<usize>,
    reprograms: u64,
    sheds: u64,
}

impl Residency {
    /// Programs the mirror's live rows onto a fresh bank, streaming
    /// block-by-block (no second copy of the rows is ever built).
    pub fn open(cfg: ShardConfig, mirror: &ShardMirror) -> Result<Self, ServeError> {
        let (exec, order) = Self::program(&cfg, mirror)?;
        Ok(Self {
            cfg,
            exec,
            order,
            reprograms: 0,
            sheds: 0,
        })
    }

    /// Streams the mirror's live rows through [`ResidentBuilder`] in
    /// [`env_block_rows`]-sized blocks.
    fn program(
        cfg: &ShardConfig,
        mirror: &ShardMirror,
    ) -> Result<(PimExecutor, Vec<usize>), ServeError> {
        assert!(mirror.live_len() > 0, "a residency needs at least one row");
        let d = mirror.dim();
        let block = env_block_rows();
        let mut builder: ResidentBuilder = PimExecutor::begin_euclidean_resident(
            cfg.executor,
            mirror.live_len(),
            d,
            cfg.spare_rows,
        )?;
        let mut order = Vec::with_capacity(mirror.live_len());
        let mut buf = Vec::with_capacity(block.min(mirror.live_len()) * d);
        for i in mirror.live_indices() {
            buf.extend_from_slice(mirror.rows.row(i));
            order.push(i);
            if buf.len() >= block * d {
                builder.push_rows(&buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            builder.push_rows(&buf)?;
        }
        Ok((builder.finish()?, order))
    }

    /// Tries to absorb a freshly appended mirror row (`idx`) into the
    /// bank's spare rows. `Ok(true)` when it is now resident; `Ok(false)`
    /// when the spares are exhausted or the bank is lost — the row stays
    /// host-only (delta) for this residency until the next reprogram.
    pub fn absorb_insert(&mut self, idx: usize, row: &[f64]) -> Result<bool, ServeError> {
        match self.exec.append_row(row) {
            Ok(_) => {
                self.order.push(idx);
                Ok(true)
            }
            Err(CoreError::ReRam(
                simpim_reram::ReRamError::InsufficientCapacity { .. }
                | simpim_reram::ReRamError::BankLost,
            )) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Serves a coalesced batch through this bank: one PIM bound pass,
    /// bounds scattered into mirror order (rows without one — the delta
    /// — get `0.0` and are refined exactly), then exact host refinement.
    /// Whole-bank loss surfaces as the outer `Err` for failover; every
    /// *recoverable* PIM failure sheds the batch to the exact host scan
    /// internally.
    pub fn try_query_batch_ctx(
        &mut self,
        mirror: &ShardMirror,
        queries: &[Vec<f64>],
        ks: &[usize],
        parent: simpim_obs::TraceCtx,
    ) -> Result<Vec<Result<Vec<Neighbor>, ServeError>>, ServeError> {
        assert_eq!(queries.len(), ks.len(), "ks must parallel queries");
        match self.exec.lb_ed_batch_multi_ctx(queries, parent) {
            Ok(batches) => {
                let mut pass_ns = 0.0;
                let mut scattered = vec![0.0; mirror.len()];
                let out = queries
                    .iter()
                    .zip(ks)
                    .zip(&batches)
                    .map(|((q, &k), batch)| {
                        pass_ns += batch.timing.total_ns();
                        debug_assert_eq!(batch.values.len(), self.order.len());
                        scattered.iter_mut().for_each(|v| *v = 0.0);
                        for (j, &idx) in self.order.iter().enumerate() {
                            scattered[idx] = batch.values[j];
                        }
                        mirror.refine(q, k, &scattered)
                    })
                    .collect();
                simpim_obs::metrics::histogram_record(
                    "simpim.serve.shard.pim_pass_ns",
                    pass_ns as u64,
                );
                Ok(out)
            }
            Err(e) => {
                let e = ServeError::from(e);
                if e.is_bank_loss() {
                    // The bank fail-stopped: this replica cannot serve
                    // from its crossbars at all. Let the caller route the
                    // batch elsewhere (or degrade to the host mirror).
                    return Err(e);
                }
                // Recoverable bank-level failure (e.g. ADC retries
                // exhausted under an aggressive fault model): shed the
                // whole batch to the host scan. Exactness is preserved;
                // only the PIM filter is lost.
                self.sheds += queries.len() as u64;
                simpim_obs::metrics::counter_add("simpim.serve.sheds", queries.len() as u64);
                Ok(queries
                    .iter()
                    .zip(ks)
                    .map(|(q, &k)| mirror.host_query(q, k))
                    .collect())
            }
        }
    }

    /// Tombstoned slots still programmed on this bank.
    pub fn tombstoned(&self, mirror: &ShardMirror) -> usize {
        self.order.iter().filter(|&&i| !mirror.live[i]).count()
    }

    /// Live rows this residency has not programmed.
    pub fn delta(&self, mirror: &ShardMirror) -> usize {
        let live_resident = self.order.len() - self.tombstoned(mirror);
        mirror.live_len() - live_resident
    }

    /// Whether a reprogram would change anything: tombstones to drop or
    /// delta rows to fold in.
    fn needs_fold(&self, mirror: &ShardMirror) -> bool {
        self.tombstoned(mirror) > 0 || self.delta(mirror) > 0
    }

    /// `true` when no tombstoned row is still programmed here — the
    /// per-residency precondition for [`ShardMirror::compact`].
    pub fn order_clean(&self, mirror: &ShardMirror) -> bool {
        self.tombstoned(mirror) == 0
    }

    /// Rewrites this residency's `order` through a
    /// [`ShardMirror::compact`] remap table.
    pub fn remap(&mut self, table: &[Option<usize>]) {
        for slot in &mut self.order {
            *slot = table[*slot].expect("compacted away a row still programmed on a residency");
        }
    }

    /// The wear-adjusted tombstone threshold: `base · (1 + wear/budget)`.
    /// A worn bank tolerates proportionally more tombstones before it
    /// spends another full-region program on compaction.
    fn reprogram_threshold(&self) -> f64 {
        let wear = self.max_wear() as f64 / self.cfg.reprogram_wear_budget.max(1) as f64;
        self.cfg.tombstone_reprogram_ratio * (1.0 + wear)
    }

    /// Compacts when the tombstone ratio crosses the wear-adjusted
    /// threshold.
    pub fn maybe_reprogram(&mut self, mirror: &ShardMirror) -> Result<(), ServeError> {
        let ratio = self.tombstoned(mirror) as f64 / self.order.len().max(1) as f64;
        if ratio > self.reprogram_threshold() {
            self.reprogram(mirror)?;
        }
        Ok(())
    }

    /// Compacts this residency: programs the mirror's live rows (delta
    /// folded in, tombstones dropped) onto a fresh resident layout with
    /// a full complement of spare slots, streamed from the mirror. A
    /// no-op on a lost bank — nothing can be programmed there; the
    /// repair loop owns those — and when there is nothing to fold.
    pub fn reprogram(&mut self, mirror: &ShardMirror) -> Result<(), ServeError> {
        if self.bank_lost() || !self.needs_fold(mirror) {
            return Ok(());
        }
        if mirror.live_len() == 0 {
            // Everything deleted: keep the old (all-tombstoned)
            // residency rather than programming an empty region. Queries
            // already return nothing.
            return Ok(());
        }
        let (exec, order) = Self::program(&self.cfg, mirror)?;
        self.exec = exec;
        self.order = order;
        self.reprograms += 1;
        simpim_obs::metrics::counter_add("simpim.serve.reprograms", 1);
        Ok(())
    }

    /// Runs one scrub-and-remap pass over the resident regions now (a
    /// no-op without a fault model) — called after a repair re-programs
    /// this residency onto a spare bank, so the fresh residency is
    /// surveyed before it rejoins routing.
    pub fn scrub(&mut self) -> Result<(), ServeError> {
        self.exec.scrub_now().map_err(ServeError::from)
    }

    /// Ages every crossbar of this bank by `extra` program cycles — the
    /// wear-injection hook for wear-leveling and routing experiments
    /// (see [`simpim_reram::PimArray::age_crossbars`]).
    pub fn age_bank(&mut self, extra: u32) {
        self.exec.bank_mut().pim_mut().age_crossbars(extra);
    }

    /// Fail-stops this bank — the whole-bank-loss injection hook
    /// ([`simpim_reram::ReRamBank::kill`]).
    pub fn kill_bank(&mut self) {
        self.exec.bank_mut().kill();
    }

    /// Whether this bank is fail-stopped.
    pub fn bank_lost(&self) -> bool {
        self.exec.bank_lost()
    }

    /// Queries shed to the host path by recoverable PIM failures.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Highest per-crossbar program count on this bank — the wear signal
    /// the replica router balances on.
    pub fn wear(&self) -> u32 {
        self.max_wear()
    }

    fn max_wear(&self) -> u32 {
        let pim = self.exec.bank().pim();
        (0..self.cfg.executor.pim.num_crossbars)
            .map(|i| pim.crossbar_programs(i))
            .max()
            .unwrap_or(0)
    }

    /// Point-in-time statistics of this residency over `mirror`.
    pub fn stats(&self, mirror: &ShardMirror) -> ShardStats {
        ShardStats {
            live: mirror.live_len(),
            tombstones: self.tombstoned(mirror),
            delta: self.delta(mirror),
            spare: self.exec.spare_capacity().unwrap_or(0),
            reprograms: self.reprograms,
            sheds: self.sheds,
            max_crossbar_programs: self.max_wear(),
            lost: self.bank_lost(),
        }
    }
}

/// A standalone shard: one mirror, one residency — the unreplicated
/// serving unit (and the building block [`crate::ReplicaSet`] shares a
/// mirror across).
#[derive(Debug)]
pub struct Shard {
    mirror: ShardMirror,
    res: Residency,
}

impl Shard {
    /// Opens a shard over `rows` whose stable global ids are `ids`.
    pub fn open(cfg: ShardConfig, rows: Dataset, ids: Vec<usize>) -> Result<Self, ServeError> {
        let mirror = ShardMirror::new(rows, ids);
        let res = Residency::open(cfg, &mirror)?;
        Ok(Self { mirror, res })
    }

    /// Row dimensionality this shard serves.
    pub fn dim(&self) -> usize {
        self.mirror.dim()
    }

    /// Live object count (resident + delta).
    pub fn live_len(&self) -> usize {
        self.mirror.live_len()
    }

    /// Inserts a normalized row under global id `id`. Appends into the
    /// bank's spare rows when any remain; otherwise (spares exhausted, or
    /// the bank is lost and cannot be programmed at all) the row is
    /// host-only delta until the next reprogram — so the mirror stays
    /// current even on a dead bank, which keeps degraded-mode queries
    /// exact.
    pub fn insert(&mut self, id: usize, row: &[f64]) -> Result<(), ServeError> {
        validate_row(row, self.mirror.dim())?;
        let idx = self.mirror.append(id, row)?;
        self.res.absorb_insert(idx, row)?;
        Ok(())
    }

    /// Deletes global id `id` if this shard holds it: the row is
    /// tombstoned (it stays programmed until the next reprogram folds it
    /// out).
    pub fn delete(&mut self, id: usize) -> Result<bool, ServeError> {
        if self.mirror.tombstone(id).is_none() {
            return Ok(false);
        }
        self.res.maybe_reprogram(&self.mirror)?;
        self.try_compact();
        Ok(true)
    }

    /// Drops tombstones from the mirror once the residency has folded
    /// them (single-residency shard: right after any reprogram).
    fn try_compact(&mut self) {
        if self.mirror.dead > 0 && self.res.order_clean(&self.mirror) {
            let table = self.mirror.compact();
            self.res.remap(&table);
        }
    }

    /// Serves a coalesced batch of queries: one PIM bound pass per query
    /// over the resident region and per-query host refinement (delta
    /// rows carry no bound, so they are always refined exactly). If the
    /// PIM batch fails, every query in the batch sheds to the exact host
    /// path — results stay identical, only the filter is lost.
    pub fn query_batch(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Vec<Result<Vec<Neighbor>, ServeError>> {
        match self.try_query_batch(queries, ks) {
            Ok(out) => out,
            // A standalone shard has no replica to fail over to; a lost
            // bank degrades it to the (still exact) host path.
            Err(_) => queries
                .iter()
                .zip(ks)
                .map(|(q, &k)| self.mirror.host_query(q, k))
                .collect(),
        }
    }

    /// Like [`Shard::query_batch`], but surfaces whole-bank loss as the
    /// outer `Err` instead of silently degrading to the host path — the
    /// replication layer's entry point, so it can fail the batch over to
    /// another replica.
    pub fn try_query_batch(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Result<Vec<Result<Vec<Neighbor>, ServeError>>, ServeError> {
        self.res
            .try_query_batch_ctx(&self.mirror, queries, ks, simpim_obs::TraceCtx::NONE)
    }

    /// Exact host-side answer, ignoring the crossbars entirely.
    pub fn host_query(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        self.mirror.host_query(query, k)
    }

    /// Runs one scrub-and-remap pass over the resident regions now.
    pub fn scrub(&mut self) -> Result<(), ServeError> {
        self.res.scrub()
    }

    /// Ages every crossbar of this shard's bank by `extra` program
    /// cycles (wear injection).
    pub fn age_bank(&mut self, extra: u32) {
        self.res.age_bank(extra);
    }

    /// Fail-stops this shard's bank (whole-bank-loss injection).
    pub fn kill_bank(&mut self) {
        self.res.kill_bank();
    }

    /// Whether this shard's bank is fail-stopped.
    pub fn bank_lost(&self) -> bool {
        self.res.bank_lost()
    }

    /// Snapshot of the live rows with their stable global ids — the
    /// compacted layout a reprogram programs. Answers over the snapshot
    /// are bit-identical to answers over this shard (compaction
    /// invariance).
    pub fn snapshot_live(&self) -> Result<(Dataset, Vec<usize>), ServeError> {
        self.mirror.snapshot_live()
    }

    /// Highest per-crossbar program count on this shard's bank.
    pub fn wear(&self) -> u32 {
        self.res.wear()
    }

    /// Forces pending compaction (tombstones or delta rows) onto the
    /// crossbars, regardless of the wear-aware threshold.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        self.res.reprogram(&self.mirror)?;
        self.try_compact();
        Ok(())
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ShardStats {
        self.res.stats(&self.mirror)
    }
}

/// Rejects rows the quantizer cannot represent: wrong dimensionality or
/// values outside the normalized `[0, 1]` domain.
pub(crate) fn validate_row(row: &[f64], d: usize) -> Result<(), ServeError> {
    if row.len() != d {
        return Err(ServeError::InvalidArgument {
            what: format!("row has {} dimensions, shard serves {d}", row.len()),
        });
    }
    if row.iter().any(|v| !(0.0..=1.0).contains(v)) {
        return Err(ServeError::InvalidArgument {
            what: "row values must be normalized into [0, 1]".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_mining::knn::standard::knn_standard;
    use simpim_reram::{CrossbarConfig, PimConfig};

    fn cfg() -> ShardConfig {
        ShardConfig {
            executor: ExecutorConfig {
                pim: PimConfig {
                    crossbar: CrossbarConfig {
                        size: 16,
                        adc_bits: 12,
                        ..Default::default()
                    },
                    num_crossbars: 4096,
                    ..Default::default()
                },
                alpha: 1e6,
                operand_bits: 32,
                double_buffer: false,
                parallel_regions: true,
                faults: None,
                scrub_interval: 0,
            },
            spare_rows: 2,
            tombstone_reprogram_ratio: 0.4,
            reprogram_wear_budget: 1_000,
        }
    }

    fn rows() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2],
            vec![0.4, 0.6, 0.2, 0.8],
        ])
        .unwrap()
    }

    #[test]
    fn shard_queries_match_offline_scan() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds.clone(), vec![0, 1, 2, 3]).unwrap();
        let q = vec![0.45, 0.55, 0.4, 0.6];
        let truth = knn_standard(&ds, &q, 2, Measure::EuclideanSq).unwrap();
        let got = shard.query_batch(&[q], &[2]).remove(0).unwrap();
        assert_eq!(got, truth.neighbors);
    }

    #[test]
    fn insert_lands_in_spares_then_delta() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(shard.stats().spare, 2);
        shard.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        shard.insert(5, &[0.6, 0.7, 0.8, 0.9]).unwrap();
        assert_eq!(shard.stats().spare, 0);
        assert_eq!(shard.stats().delta, 0);
        // Spares exhausted → delta.
        shard.insert(6, &[0.15, 0.25, 0.35, 0.45]).unwrap();
        assert_eq!(shard.stats().delta, 1);
        assert_eq!(shard.live_len(), 7);
        // All seven ids are queryable, including the delta row.
        let q = vec![0.15, 0.25, 0.35, 0.45];
        let got = shard.query_batch(&[q], &[1]).remove(0).unwrap();
        assert_eq!(got[0].0, 6);
        // A flush folds the delta into the resident layout.
        shard.flush().unwrap();
        assert_eq!(shard.stats().delta, 0);
        assert_eq!(shard.stats().spare, 2);
        assert_eq!(shard.stats().reprograms, 1);
    }

    #[test]
    fn delete_tombstones_and_reprogram_compacts() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds, vec![0, 1, 2, 3]).unwrap();
        assert!(shard.delete(1).unwrap());
        assert!(!shard.delete(1).unwrap(), "double delete is a no-op");
        assert!(!shard.delete(99).unwrap(), "unknown id");
        assert_eq!(shard.stats().tombstones, 1);
        let q = vec![0.5, 0.5, 0.5, 0.5];
        let got = shard
            .query_batch(std::slice::from_ref(&q), &[4])
            .remove(0)
            .unwrap();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(id, _)| id != 1));
        // Second delete crosses the 0.4 ratio → automatic reprogram.
        assert!(shard.delete(0).unwrap());
        assert_eq!(shard.stats().tombstones, 0);
        assert_eq!(shard.stats().reprograms, 1);
        let got = shard.query_batch(&[q], &[4]).remove(0).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn invalid_rows_are_rejected() {
        let mut shard = Shard::open(cfg(), rows(), vec![0, 1, 2, 3]).unwrap();
        assert!(matches!(
            shard.insert(9, &[0.5; 3]),
            Err(ServeError::InvalidArgument { .. })
        ));
        assert!(matches!(
            shard.insert(9, &[0.5, 0.5, 0.5, 1.5]),
            Err(ServeError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn killed_bank_degrades_to_exact_host_path() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds.clone(), vec![0, 1, 2, 3]).unwrap();
        let q = vec![0.45, 0.55, 0.4, 0.6];
        let truth = knn_standard(&ds, &q, 2, Measure::EuclideanSq).unwrap();
        shard.kill_bank();
        assert!(shard.bank_lost());
        assert!(shard.stats().lost);
        // try_query_batch surfaces the loss for failover...
        let err = shard
            .try_query_batch(std::slice::from_ref(&q), &[2])
            .unwrap_err();
        assert!(err.is_bank_loss());
        // ...while the plain path stays exact via the host mirror.
        let got = shard
            .query_batch(std::slice::from_ref(&q), &[2])
            .remove(0)
            .unwrap();
        assert_eq!(got, truth.neighbors);
        // Mutations keep working host-side: inserts go to the delta,
        // deletes tombstone, and neither tries to program the dead bank.
        shard.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        assert_eq!(shard.stats().delta, 1);
        assert!(shard.delete(0).unwrap());
        assert!(shard.delete(1).unwrap());
        assert_eq!(shard.stats().reprograms, 0, "no reprogram on a dead bank");
        let got = shard.query_batch(&[q], &[5]).remove(0).unwrap();
        assert!(got.iter().all(|&(id, _)| id != 0 && id != 1));
        assert!(got.iter().any(|&(id, _)| id == 4));
    }

    #[test]
    fn snapshot_live_matches_compacted_state() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds, vec![0, 1, 2, 3]).unwrap();
        shard.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        shard.insert(5, &[0.6, 0.7, 0.8, 0.9]).unwrap();
        shard.insert(6, &[0.15, 0.25, 0.35, 0.45]).unwrap(); // delta
        shard.delete(2).unwrap();
        let (rows, ids) = shard.snapshot_live().unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(ids, vec![0, 1, 3, 4, 5, 6]);
        // A replica rebuilt from the snapshot answers identically.
        let mut rebuilt = Shard::open(cfg(), rows, ids).unwrap();
        let q = vec![0.45, 0.55, 0.4, 0.6];
        let want = shard
            .query_batch(std::slice::from_ref(&q), &[4])
            .remove(0)
            .unwrap();
        let got = rebuilt.query_batch(&[q], &[4]).remove(0).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn wear_raises_the_reprogram_threshold() {
        let mut c = cfg();
        c.reprogram_wear_budget = 1;
        let mut shard = Shard::open(c, rows(), vec![0, 1, 2, 3]).unwrap();
        // Age the bank far past the one-cycle budget: threshold at least
        // doubles, so the delete ratio that would have compacted no
        // longer does.
        shard.age_bank(10);
        assert!(shard.delete(0).unwrap());
        assert!(shard.delete(1).unwrap());
        assert_eq!(
            shard.stats().reprograms,
            0,
            "worn shard must defer compaction"
        );
    }

    #[test]
    fn streamed_block_size_does_not_change_answers() {
        // The programming path streams mirror rows in SIMPIM_BLOCK_ROWS
        // blocks; the block size must be invisible in every answer.
        // (Uses explicit tiny shards rather than the env knob to stay
        // parallel-test safe.)
        let mut all = Vec::new();
        for n in [1usize, 3, 7, 16] {
            let ds = Dataset::from_rows(
                &(0..n)
                    .map(|i| {
                        (0..4)
                            .map(|j| ((i * 31 + j * 17) % 89) as f64 / 88.0)
                            .collect()
                    })
                    .collect::<Vec<Vec<f64>>>(),
            )
            .unwrap();
            let mut shard = Shard::open(cfg(), ds.clone(), (0..n).collect()).unwrap();
            let q = vec![0.45, 0.55, 0.4, 0.6];
            let truth = knn_standard(&ds, &q, n.min(3), Measure::EuclideanSq).unwrap();
            let got = shard.query_batch(&[q], &[n.min(3)]).remove(0).unwrap();
            assert_eq!(got, truth.neighbors);
            all.push(got);
        }
        assert_eq!(all.len(), 4);
    }
}

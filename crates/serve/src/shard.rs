//! One serving shard: a resident partition of the dataset on its own
//! ReRAM bank.
//!
//! The shard keeps three populations:
//!
//! * **resident** rows — programmed on the bank's crossbars at open (or
//!   last reprogram) plus online appends into the spare rows Theorem 4's
//!   plan reserved;
//! * **tombstoned** rows — deleted but still programmed; the PIM batch
//!   keeps producing bounds for them, the refinement never surfaces them;
//! * **delta** rows — inserts that arrived after the spare rows ran out.
//!   They are host-only (exact scan, no bound) until the next reprogram
//!   folds them in.
//!
//! The wear-aware reprogram policy: a reprogram rewrites every crossbar
//! of the shard, so the tombstone ratio that triggers one *rises* with
//! the wear already accumulated — a fresh shard compacts eagerly, a
//! worn shard tolerates more dead weight before burning endurance.

use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_core::CoreError;
use simpim_mining::knn::resident::{merge_neighbors, refine_resident, ShardView};
use simpim_similarity::{Dataset, Measure, NormalizedDataset};
use simpim_simkit::OpCounters;

use crate::error::ServeError;
use crate::Neighbor;

/// Per-shard policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Executor (platform + quantization) configuration.
    pub executor: ExecutorConfig,
    /// Spare object slots reserved per shard for online appends.
    pub spare_rows: usize,
    /// Base tombstone ratio that triggers a compacting reprogram.
    pub tombstone_reprogram_ratio: f64,
    /// Program cycles after which the reprogram threshold has doubled
    /// (the wear-aware part of the policy).
    pub reprogram_wear_budget: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            executor: ExecutorConfig::default(),
            spare_rows: 16,
            tombstone_reprogram_ratio: 0.25,
            reprogram_wear_budget: 1_000,
        }
    }
}

/// Point-in-time shard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Live objects (resident + delta, tombstones excluded).
    pub live: usize,
    /// Tombstoned resident slots awaiting the next reprogram.
    pub tombstones: usize,
    /// Host-only delta rows awaiting the next reprogram.
    pub delta: usize,
    /// Spare crossbar rows still available for appends.
    pub spare: usize,
    /// Compacting reprograms performed since open.
    pub reprograms: u64,
    /// Queries served from the host path because the PIM batch failed.
    pub sheds: u64,
    /// Highest program count over this shard's crossbars (wear).
    pub max_crossbar_programs: u32,
    /// Whether this shard's bank is fail-stopped (bank loss).
    pub lost: bool,
}

/// A resident partition of the dataset on one ReRAM bank.
#[derive(Debug)]
pub struct Shard {
    cfg: ShardConfig,
    exec: PimExecutor,
    /// Rows mirrored on the crossbars, in executor object order.
    rows: Dataset,
    ids: Vec<usize>,
    live: Vec<bool>,
    tombstones: usize,
    /// Host-only overflow rows (spare slots exhausted).
    delta_rows: Dataset,
    delta_ids: Vec<usize>,
    reprograms: u64,
    sheds: u64,
}

impl Shard {
    /// Opens a shard over `rows` whose stable global ids are `ids`.
    pub fn open(cfg: ShardConfig, rows: Dataset, ids: Vec<usize>) -> Result<Self, ServeError> {
        assert_eq!(rows.len(), ids.len(), "ids must parallel rows");
        assert!(!rows.is_empty(), "a shard needs at least one row");
        let d = rows.dim();
        let exec = PimExecutor::prepare_euclidean_resident(
            cfg.executor,
            &NormalizedDataset::assert_normalized(rows.clone()),
            cfg.spare_rows,
        )?;
        let live = vec![true; rows.len()];
        Ok(Self {
            cfg,
            exec,
            rows,
            ids,
            live,
            tombstones: 0,
            delta_rows: Dataset::with_dim(d).map_err(CoreError::from)?,
            delta_ids: Vec::new(),
            reprograms: 0,
            sheds: 0,
        })
    }

    /// Row dimensionality this shard serves.
    pub fn dim(&self) -> usize {
        self.rows.dim()
    }

    /// Live object count (resident + delta).
    pub fn live_len(&self) -> usize {
        self.rows.len() - self.tombstones + self.delta_rows.len()
    }

    /// Inserts a normalized row under global id `id`. Appends into the
    /// bank's spare rows when any remain; otherwise (spares exhausted, or
    /// the bank is lost and cannot be programmed at all) the row joins
    /// the host-only delta until the next reprogram — so the host mirror
    /// stays current even on a dead bank, which keeps degraded-mode
    /// queries exact and lets healthy replicas be re-replicated from any
    /// mirror.
    pub fn insert(&mut self, id: usize, row: &[f64]) -> Result<(), ServeError> {
        validate_row(row, self.rows.dim())?;
        match self.exec.append_row(row) {
            Ok(_) => {
                self.rows.append_row(row).map_err(CoreError::from)?;
                self.ids.push(id);
                self.live.push(true);
                Ok(())
            }
            Err(CoreError::ReRam(
                simpim_reram::ReRamError::InsufficientCapacity { .. }
                | simpim_reram::ReRamError::BankLost,
            )) => {
                self.delta_rows.append_row(row).map_err(CoreError::from)?;
                self.delta_ids.push(id);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Deletes global id `id` if this shard holds it. Resident rows are
    /// tombstoned (they stay programmed until the next reprogram); delta
    /// rows are dropped immediately.
    pub fn delete(&mut self, id: usize) -> Result<bool, ServeError> {
        if let Some(i) = self.ids.iter().position(|&x| x == id) {
            if !self.live[i] {
                return Ok(false); // already tombstoned
            }
            self.live[i] = false;
            self.tombstones += 1;
            self.maybe_reprogram()?;
            return Ok(true);
        }
        if let Some(i) = self.delta_ids.iter().position(|&x| x == id) {
            self.delta_rows
                .swap_remove_row(i)
                .map_err(CoreError::from)?;
            self.delta_ids.swap_remove(i);
            return Ok(true);
        }
        Ok(false)
    }

    /// Serves a coalesced batch of queries: one PIM bound pass per query
    /// over the resident region, per-query host refinement, and an exact
    /// scan of the delta rows. If the PIM batch fails, every query in the
    /// batch sheds to the exact host path — results stay identical, only
    /// the filter is lost.
    pub fn query_batch(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Vec<Result<Vec<Neighbor>, ServeError>> {
        match self.try_query_batch(queries, ks) {
            Ok(out) => out,
            // A standalone shard has no replica to fail over to; a lost
            // bank degrades it to the (still exact) host path.
            Err(_) => self.host_query_batch(queries, ks),
        }
    }

    /// Like [`Shard::query_batch`], but surfaces whole-bank loss as the
    /// outer `Err` instead of silently degrading to the host path —
    /// the replication layer's entry point, so it can fail the batch
    /// over to another replica. Every *recoverable* PIM failure (ADC
    /// retry exhaustion and the like) still sheds to the exact host scan
    /// internally.
    pub fn try_query_batch(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Result<Vec<Result<Vec<Neighbor>, ServeError>>, ServeError> {
        self.try_query_batch_ctx(queries, ks, simpim_obs::TraceCtx::NONE)
    }

    /// [`Shard::try_query_batch`] under an explicit trace context: the
    /// crossbar pass span parents on `parent` (the serving layer's batch
    /// span) so the pass stays attributable to its request even though
    /// the dispatch crossed onto a pool worker thread.
    pub fn try_query_batch_ctx(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
        parent: simpim_obs::TraceCtx,
    ) -> Result<Vec<Result<Vec<Neighbor>, ServeError>>, ServeError> {
        assert_eq!(queries.len(), ks.len(), "ks must parallel queries");
        match self.exec.lb_ed_batch_multi_ctx(queries, parent) {
            Ok(batches) => {
                let mut pass_ns = 0.0;
                let out = queries
                    .iter()
                    .zip(ks)
                    .zip(&batches)
                    .map(|((q, &k), batch)| {
                        pass_ns += batch.timing.total_ns();
                        self.refine(q, k, &batch.values)
                    })
                    .collect();
                simpim_obs::metrics::histogram_record(
                    "simpim.serve.shard.pim_pass_ns",
                    pass_ns as u64,
                );
                Ok(out)
            }
            Err(e) => {
                let e = ServeError::from(e);
                if e.is_bank_loss() {
                    // The bank fail-stopped: this replica cannot serve
                    // from its crossbars at all. Let the caller route the
                    // batch elsewhere (or degrade to the host mirror).
                    return Err(e);
                }
                // Recoverable bank-level failure (e.g. ADC retries
                // exhausted under an aggressive fault model): shed the
                // whole batch to the host scan. Exactness is preserved;
                // only the PIM filter is lost.
                self.sheds += queries.len() as u64;
                simpim_obs::metrics::counter_add("simpim.serve.sheds", queries.len() as u64);
                Ok(self.host_query_batch(queries, ks))
            }
        }
    }

    /// The exact host path for a whole batch.
    fn host_query_batch(
        &self,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Vec<Result<Vec<Neighbor>, ServeError>> {
        queries
            .iter()
            .zip(ks)
            .map(|(q, &k)| self.host_query(q, k))
            .collect()
    }

    /// Refines one query given its PIM bound values over the resident
    /// rows, merging in the exact delta scan.
    fn refine(&self, query: &[f64], k: usize, bounds: &[f64]) -> Result<Vec<Neighbor>, ServeError> {
        let mut counters = OpCounters::new();
        let resident = refine_resident(
            &ShardView {
                rows: &self.rows,
                ids: &self.ids,
                live: &self.live,
                bounds,
            },
            query,
            k,
            Measure::EuclideanSq,
            &mut counters,
        )?;
        if self.delta_rows.is_empty() {
            return Ok(resident.neighbors);
        }
        let delta = self.scan_delta(query, k, &mut counters)?;
        Ok(merge_neighbors(&[resident.neighbors, delta], k, true))
    }

    /// Exact host-side answer, ignoring the crossbars entirely — the shed
    /// path, and also the delta complement of every refined query.
    pub fn host_query(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let mut counters = OpCounters::new();
        let zeros = vec![0.0; self.rows.len()];
        let resident = refine_resident(
            &ShardView {
                rows: &self.rows,
                ids: &self.ids,
                live: &self.live,
                bounds: &zeros,
            },
            query,
            k,
            Measure::EuclideanSq,
            &mut counters,
        )?;
        if self.delta_rows.is_empty() {
            return Ok(resident.neighbors);
        }
        let delta = self.scan_delta(query, k, &mut counters)?;
        Ok(merge_neighbors(&[resident.neighbors, delta], k, true))
    }

    fn scan_delta(
        &self,
        query: &[f64],
        k: usize,
        counters: &mut OpCounters,
    ) -> Result<Vec<Neighbor>, ServeError> {
        let live = vec![true; self.delta_rows.len()];
        let zeros = vec![0.0; self.delta_rows.len()];
        let out = refine_resident(
            &ShardView {
                rows: &self.delta_rows,
                ids: &self.delta_ids,
                live: &live,
                bounds: &zeros,
            },
            query,
            k,
            Measure::EuclideanSq,
            counters,
        )?;
        Ok(out.neighbors)
    }

    /// Runs one scrub-and-remap pass over the resident regions now (a
    /// no-op without a fault model) — called after a repair re-programs
    /// this shard onto a spare bank, so the fresh residency is surveyed
    /// before it rejoins routing.
    pub fn scrub(&mut self) -> Result<(), ServeError> {
        self.exec.scrub_now().map_err(ServeError::from)
    }

    /// Ages every crossbar of this shard's bank by `extra` program cycles
    /// — the wear-injection hook for wear-leveling and routing
    /// experiments (see [`simpim_reram::PimArray::age_crossbars`]).
    pub fn age_bank(&mut self, extra: u32) {
        self.exec.bank_mut().pim_mut().age_crossbars(extra);
    }

    /// Fail-stops this shard's bank — the whole-bank-loss injection hook
    /// ([`simpim_reram::ReRamBank::kill`]). Queries and appends keep
    /// working through the host mirror; the crossbar filter is gone until
    /// the shard is re-replicated onto a fresh bank.
    pub fn kill_bank(&mut self) {
        self.exec.bank_mut().kill();
    }

    /// Whether this shard's bank is fail-stopped.
    pub fn bank_lost(&self) -> bool {
        self.exec.bank_lost()
    }

    /// Snapshot of the live rows (resident survivors in residency order,
    /// then the host delta) with their stable global ids — exactly the
    /// layout a compacting reprogram would produce, which is what the
    /// repair path programs onto a spare bank. Answers over the snapshot
    /// are bit-identical to answers over this shard (compaction
    /// invariance).
    pub fn snapshot_live(&self) -> Result<(Dataset, Vec<usize>), ServeError> {
        let mut rows = Dataset::with_dim(self.rows.dim()).map_err(CoreError::from)?;
        let mut ids = Vec::new();
        for (i, row) in self.rows.rows().enumerate() {
            if self.live[i] {
                rows.append_row(row).map_err(CoreError::from)?;
                ids.push(self.ids[i]);
            }
        }
        for (i, row) in self.delta_rows.rows().enumerate() {
            rows.append_row(row).map_err(CoreError::from)?;
            ids.push(self.delta_ids[i]);
        }
        Ok((rows, ids))
    }

    /// Highest per-crossbar program count on this shard's bank — the
    /// wear signal the replica router balances on.
    pub fn wear(&self) -> u32 {
        self.max_wear()
    }

    /// Highest per-crossbar program count on this shard's bank.
    fn max_wear(&self) -> u32 {
        let pim = self.exec.bank().pim();
        (0..self.cfg.executor.pim.num_crossbars)
            .map(|i| pim.crossbar_programs(i))
            .max()
            .unwrap_or(0)
    }

    /// The wear-adjusted tombstone threshold: `base · (1 + wear/budget)`.
    /// A worn shard tolerates proportionally more tombstones before it
    /// spends another full-region program on compaction.
    fn reprogram_threshold(&self) -> f64 {
        let wear = self.max_wear() as f64 / self.cfg.reprogram_wear_budget.max(1) as f64;
        self.cfg.tombstone_reprogram_ratio * (1.0 + wear)
    }

    fn maybe_reprogram(&mut self) -> Result<(), ServeError> {
        let ratio = self.tombstones as f64 / self.rows.len().max(1) as f64;
        if ratio > self.reprogram_threshold() {
            self.reprogram()?;
        }
        Ok(())
    }

    /// Compacts the shard: drops tombstones, folds the delta in, and
    /// programs the surviving rows onto a fresh resident layout with a
    /// full complement of spare slots. A no-op on a lost bank — nothing
    /// can be programmed there; the tombstones and delta stay host-side
    /// until the repair loop re-replicates the shard.
    pub fn reprogram(&mut self) -> Result<(), ServeError> {
        if self.bank_lost() {
            return Ok(());
        }
        if self.tombstones == 0 && self.delta_rows.is_empty() {
            return Ok(());
        }
        let d = self.rows.dim();
        let (rows, ids) = self.snapshot_live()?;
        if rows.is_empty() {
            // Everything deleted: keep the old (all-tombstoned) residency
            // rather than programming an empty region. Queries already
            // return nothing.
            return Ok(());
        }
        self.exec = PimExecutor::prepare_euclidean_resident(
            self.cfg.executor,
            &NormalizedDataset::assert_normalized(rows.clone()),
            self.cfg.spare_rows,
        )?;
        self.live = vec![true; rows.len()];
        self.tombstones = 0;
        self.rows = rows;
        self.ids = ids;
        self.delta_rows = Dataset::with_dim(d).map_err(CoreError::from)?;
        self.delta_ids.clear();
        self.reprograms += 1;
        simpim_obs::metrics::counter_add("simpim.serve.reprograms", 1);
        Ok(())
    }

    /// Forces pending compaction (tombstones or delta rows) onto the
    /// crossbars, regardless of the wear-aware threshold.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        self.reprogram()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            live: self.live_len(),
            tombstones: self.tombstones,
            delta: self.delta_rows.len(),
            spare: self.exec.spare_capacity().unwrap_or(0),
            reprograms: self.reprograms,
            sheds: self.sheds,
            max_crossbar_programs: self.max_wear(),
            lost: self.bank_lost(),
        }
    }
}

/// Rejects rows the quantizer cannot represent: wrong dimensionality or
/// values outside the normalized `[0, 1]` domain.
fn validate_row(row: &[f64], d: usize) -> Result<(), ServeError> {
    if row.len() != d {
        return Err(ServeError::InvalidArgument {
            what: format!("row has {} dimensions, shard serves {d}", row.len()),
        });
    }
    if row.iter().any(|v| !(0.0..=1.0).contains(v)) {
        return Err(ServeError::InvalidArgument {
            what: "row values must be normalized into [0, 1]".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_mining::knn::standard::knn_standard;
    use simpim_reram::{CrossbarConfig, PimConfig};

    fn cfg() -> ShardConfig {
        ShardConfig {
            executor: ExecutorConfig {
                pim: PimConfig {
                    crossbar: CrossbarConfig {
                        size: 16,
                        adc_bits: 12,
                        ..Default::default()
                    },
                    num_crossbars: 4096,
                    ..Default::default()
                },
                alpha: 1e6,
                operand_bits: 32,
                double_buffer: false,
                parallel_regions: true,
                faults: None,
                scrub_interval: 0,
            },
            spare_rows: 2,
            tombstone_reprogram_ratio: 0.4,
            reprogram_wear_budget: 1_000,
        }
    }

    fn rows() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2],
            vec![0.4, 0.6, 0.2, 0.8],
        ])
        .unwrap()
    }

    #[test]
    fn shard_queries_match_offline_scan() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds.clone(), vec![0, 1, 2, 3]).unwrap();
        let q = vec![0.45, 0.55, 0.4, 0.6];
        let truth = knn_standard(&ds, &q, 2, Measure::EuclideanSq).unwrap();
        let got = shard.query_batch(&[q], &[2]).remove(0).unwrap();
        assert_eq!(got, truth.neighbors);
    }

    #[test]
    fn insert_lands_in_spares_then_delta() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(shard.stats().spare, 2);
        shard.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        shard.insert(5, &[0.6, 0.7, 0.8, 0.9]).unwrap();
        assert_eq!(shard.stats().spare, 0);
        assert_eq!(shard.stats().delta, 0);
        // Spares exhausted → delta.
        shard.insert(6, &[0.15, 0.25, 0.35, 0.45]).unwrap();
        assert_eq!(shard.stats().delta, 1);
        assert_eq!(shard.live_len(), 7);
        // All seven ids are queryable, including the delta row.
        let q = vec![0.15, 0.25, 0.35, 0.45];
        let got = shard.query_batch(&[q], &[1]).remove(0).unwrap();
        assert_eq!(got[0].0, 6);
        // A flush folds the delta into the resident layout.
        shard.flush().unwrap();
        assert_eq!(shard.stats().delta, 0);
        assert_eq!(shard.stats().spare, 2);
        assert_eq!(shard.stats().reprograms, 1);
    }

    #[test]
    fn delete_tombstones_and_reprogram_compacts() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds, vec![0, 1, 2, 3]).unwrap();
        assert!(shard.delete(1).unwrap());
        assert!(!shard.delete(1).unwrap(), "double delete is a no-op");
        assert!(!shard.delete(99).unwrap(), "unknown id");
        assert_eq!(shard.stats().tombstones, 1);
        let q = vec![0.5, 0.5, 0.5, 0.5];
        let got = shard
            .query_batch(std::slice::from_ref(&q), &[4])
            .remove(0)
            .unwrap();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(id, _)| id != 1));
        // Second delete crosses the 0.4 ratio → automatic reprogram.
        assert!(shard.delete(0).unwrap());
        assert_eq!(shard.stats().tombstones, 0);
        assert_eq!(shard.stats().reprograms, 1);
        let got = shard.query_batch(&[q], &[4]).remove(0).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn invalid_rows_are_rejected() {
        let mut shard = Shard::open(cfg(), rows(), vec![0, 1, 2, 3]).unwrap();
        assert!(matches!(
            shard.insert(9, &[0.5; 3]),
            Err(ServeError::InvalidArgument { .. })
        ));
        assert!(matches!(
            shard.insert(9, &[0.5, 0.5, 0.5, 1.5]),
            Err(ServeError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn killed_bank_degrades_to_exact_host_path() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds.clone(), vec![0, 1, 2, 3]).unwrap();
        let q = vec![0.45, 0.55, 0.4, 0.6];
        let truth = knn_standard(&ds, &q, 2, Measure::EuclideanSq).unwrap();
        shard.kill_bank();
        assert!(shard.bank_lost());
        assert!(shard.stats().lost);
        // try_query_batch surfaces the loss for failover...
        let err = shard
            .try_query_batch(std::slice::from_ref(&q), &[2])
            .unwrap_err();
        assert!(err.is_bank_loss());
        // ...while the plain path stays exact via the host mirror.
        let got = shard
            .query_batch(std::slice::from_ref(&q), &[2])
            .remove(0)
            .unwrap();
        assert_eq!(got, truth.neighbors);
        // Mutations keep working host-side: inserts go to the delta,
        // deletes tombstone, and neither tries to program the dead bank.
        shard.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        assert_eq!(shard.stats().delta, 1);
        assert!(shard.delete(0).unwrap());
        assert!(shard.delete(1).unwrap());
        assert_eq!(shard.stats().reprograms, 0, "no reprogram on a dead bank");
        let got = shard.query_batch(&[q], &[5]).remove(0).unwrap();
        assert!(got.iter().all(|&(id, _)| id != 0 && id != 1));
        assert!(got.iter().any(|&(id, _)| id == 4));
    }

    #[test]
    fn snapshot_live_matches_compacted_state() {
        let ds = rows();
        let mut shard = Shard::open(cfg(), ds, vec![0, 1, 2, 3]).unwrap();
        shard.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        shard.insert(5, &[0.6, 0.7, 0.8, 0.9]).unwrap();
        shard.insert(6, &[0.15, 0.25, 0.35, 0.45]).unwrap(); // delta
        shard.delete(2).unwrap();
        let (rows, ids) = shard.snapshot_live().unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(ids, vec![0, 1, 3, 4, 5, 6]);
        // A replica rebuilt from the snapshot answers identically.
        let mut rebuilt = Shard::open(cfg(), rows, ids).unwrap();
        let q = vec![0.45, 0.55, 0.4, 0.6];
        let want = shard
            .query_batch(std::slice::from_ref(&q), &[4])
            .remove(0)
            .unwrap();
        let got = rebuilt.query_batch(&[q], &[4]).remove(0).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn wear_raises_the_reprogram_threshold() {
        let mut c = cfg();
        c.reprogram_wear_budget = 1;
        let mut shard = Shard::open(c, rows(), vec![0, 1, 2, 3]).unwrap();
        // Age the bank far past the one-cycle budget: threshold at least
        // doubles, so the delete ratio that would have compacted no
        // longer does.
        shard.exec.bank_mut().pim_mut().age_crossbars(10);
        assert!(shard.delete(0).unwrap());
        assert!(shard.delete(1).unwrap());
        assert_eq!(
            shard.stats().reprograms,
            0,
            "worn shard must defer compaction"
        );
    }
}

//! `simpim-serve`: an online, sharded, batch-scheduled kNN
//! query-serving engine over the resident ReRAM banks.
//!
//! The offline pipeline (`simpim-core` + `simpim-mining`) answers one
//! query at a time over a dataset it programs from scratch. This crate
//! turns that pipeline into a long-lived service:
//!
//! - **Shards** ([`shard::Shard`]) partition the dataset across banks,
//!   each planned by Theorem 4 with spare rows for online appends.
//!   Inserts land in the spare crossbar rows (overflow spills to a
//!   host-side delta buffer), deletes tombstone in place, and a
//!   wear-aware policy reprograms a shard only when its tombstone ratio
//!   crosses a threshold that *rises* with accumulated crossbar wear —
//!   worn shards compact less eagerly.
//! - **Replica sets** ([`replica::ReplicaSet`]) program each shard's
//!   rows onto `R` distinct banks. Every coalesced batch routes to the
//!   least-worn healthy replica (wear-leveling doubles as load
//!   balancing); a fail-stopped bank is detected in-line, quarantined,
//!   and the batch fails over transparently; a background repair loop
//!   re-replicates lost replicas onto spare banks; compacting
//!   reprograms roll one replica at a time so `R − 1` replicas stay
//!   queryable throughout; and with every replica lost the set degrades
//!   to the exact host mirror rather than erroring.
//! - **The engine** ([`engine::ServeEngine`]) puts a bounded submission
//!   queue in front of a scheduler thread that coalesces up to `Q`
//!   in-flight queries into a single crossbar pass per shard (amortizing
//!   the programming cost that dominates single-query latency), then
//!   refines per query on the host with the usual bound cascade.
//! - **Exactness**: every answer is bit-identical to what the offline
//!   `mining::knn` would return on the same live rows. Bounds stay
//!   valid under drift (guard-band) and quarantine (host fallback), the
//!   per-shard top-k merge is offer-order independent, and replicas are
//!   interchangeable — routing, failover, repair, and degraded mode are
//!   all invisible in the answers.
//!
//! Observability: `simpim.serve.*` counters and histograms (queue
//! depth, batch size, latency, sheds) flow into the same process-wide
//! registry as the rest of the stack and land in run artifacts.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod flight;
pub mod replica;
pub mod shard;

/// A `(global id, measure value)` neighbor pair, best first in result
/// vectors — the same shape `mining::knn` returns.
pub type Neighbor = (usize, f64);

pub use engine::{EngineStats, Pending, ServeConfig, ServeEngine, StageLatency};
pub use error::ServeError;
pub use flight::{FlightRecorder, FlightRecorderStats, Outcome, QuerySpan, QueryTrace};
pub use replica::{ReplicaSet, ReplicaSetStats, ReplicaState, RouteSample};
pub use shard::{Residency, Shard, ShardConfig, ShardMirror, ShardStats};

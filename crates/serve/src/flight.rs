//! Slow-query flight recorder: bounded retention of the span trees and
//! replica/fault annotations of the requests worth looking at.
//!
//! The scheduler classifies every finished request and offers its
//! [`QueryTrace`] — the per-request span tree the engine builds
//! explicitly from [`simpim_obs::TraceCtx`] ids, independent of whether
//! the obs journal is enabled — to a [`FlightRecorder`]. The recorder
//! keeps two bounded sets:
//!
//! * the **N slowest** well-behaved requests (a min-threshold list keyed
//!   on total latency), and
//! * **every anomaly** — failed, shed, timed-out, degraded, or
//!   failed-over request — in a ring that evicts oldest-first.
//!
//! Both dump as JSONL (one trace per line) for `simpim flight` to render
//! as per-stage waterfalls. Trace ids match the exemplar trace ids in the
//! `simpim.serve.stage.*` histograms and the obs journal's `trace_id`
//! field, so a p99 exemplar, a flight line, and a `--trace` dump all
//! cross-reference.

use std::collections::VecDeque;

use simpim_obs::json::{Json, JsonError};

/// How a request ended, from the flight recorder's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered exactly, on the routed replica, in time.
    Ok,
    /// Answered exactly but at least one shard fell back to the host
    /// mirror with every replica lost.
    Degraded,
    /// Answered exactly but at least one shard failed over to another
    /// replica mid-batch.
    Failover,
    /// Answered exactly but a recoverable PIM fault shed at least one
    /// shard's pass to the host.
    Shed,
    /// Deadline expired before the scheduler got to it.
    Timeout,
    /// The engine returned an error.
    Failed,
}

impl Outcome {
    /// Stable string form used in JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Failover => "failover",
            Outcome::Shed => "shed",
            Outcome::Timeout => "timeout",
            Outcome::Failed => "failed",
        }
    }

    /// Parses the stable string form.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => Outcome::Ok,
            "degraded" => Outcome::Degraded,
            "failover" => Outcome::Failover,
            "shed" => Outcome::Shed,
            "timeout" => Outcome::Timeout,
            "failed" => Outcome::Failed,
            _ => return None,
        })
    }

    /// Anything other than a clean, on-replica, in-time answer.
    pub fn is_anomaly(&self) -> bool {
        !matches!(self, Outcome::Ok)
    }
}

/// One span in a request's tree. Ids come from the process-wide
/// [`simpim_obs::TraceCtx`] mint, so they are unique across requests and
/// line up with the obs journal.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpan {
    /// Process-unique span id.
    pub span_id: u64,
    /// Parent span id; `None` for the request root.
    pub parent: Option<u64>,
    /// Stage name, e.g. `serve.query.queue`.
    pub name: String,
    /// Start offset in ns (engine epoch).
    pub start_ns: u64,
    /// End offset in ns.
    pub end_ns: u64,
    /// Numeric attributes (batch size, shard index, replica index …).
    pub attrs: Vec<(String, f64)>,
}

impl QuerySpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("span_id", Json::Num(self.span_id as f64)),
            (
                "parent",
                match self.parent {
                    Some(p) => Json::Num(p as f64),
                    None => Json::Null,
                },
            ),
            ("name", Json::Str(self.name.clone())),
            ("start_ns", Json::Num(self.start_ns as f64)),
            ("end_ns", Json::Num(self.end_ns as f64)),
            (
                "attrs",
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            span_id: v
                .require("span_id")?
                .as_u64()
                .ok_or_else(|| JsonError::shape("span_id"))?,
            parent: match v.require("parent")? {
                Json::Null => None,
                p => Some(p.as_u64().ok_or_else(|| JsonError::shape("parent"))?),
            },
            name: v
                .require("name")?
                .as_str()
                .ok_or_else(|| JsonError::shape("span name"))?
                .to_string(),
            start_ns: v
                .require("start_ns")?
                .as_u64()
                .ok_or_else(|| JsonError::shape("start_ns"))?,
            end_ns: v
                .require("end_ns")?
                .as_u64()
                .ok_or_else(|| JsonError::shape("end_ns"))?,
            attrs: v
                .get("attrs")
                .and_then(Json::as_obj)
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

/// The complete flight record of one request: its span tree plus the
/// replica/fault annotations collected while serving it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Request trace id (matches histogram exemplars and the obs
    /// journal).
    pub trace_id: u64,
    /// Request kind: `query`, `insert`, `delete`, or `flush`.
    pub kind: String,
    /// How the request ended.
    pub outcome: Outcome,
    /// End-to-end latency in nanoseconds (root span duration).
    pub total_ns: u64,
    /// The span tree; `spans[0]` is the request root.
    pub spans: Vec<QuerySpan>,
    /// Human-readable annotations: routing decisions, failovers,
    /// degraded/shed notes (e.g. `shard 0: failover, served by replica
    /// 1`).
    pub annotations: Vec<String>,
}

impl QueryTrace {
    /// The root span, if the trace is non-empty.
    pub fn root(&self) -> Option<&QuerySpan> {
        self.spans.first()
    }

    /// One JSONL-ready JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::Num(self.trace_id as f64)),
            ("kind", Json::Str(self.kind.clone())),
            ("outcome", Json::Str(self.outcome.as_str().to_string())),
            ("total_ns", Json::Num(self.total_ns as f64)),
            (
                "spans",
                Json::Arr(self.spans.iter().map(QuerySpan::to_json).collect()),
            ),
            (
                "annotations",
                Json::Arr(
                    self.annotations
                        .iter()
                        .map(|a| Json::Str(a.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses one JSONL line back (the `simpim flight` reader).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let outcome = v
            .require("outcome")?
            .as_str()
            .and_then(Outcome::parse)
            .ok_or_else(|| JsonError::shape("outcome"))?;
        let mut spans = Vec::new();
        for s in v.require("spans")?.as_arr().unwrap_or(&[]) {
            spans.push(QuerySpan::from_json(s)?);
        }
        Ok(Self {
            trace_id: v
                .require("trace_id")?
                .as_u64()
                .ok_or_else(|| JsonError::shape("trace_id"))?,
            kind: v
                .require("kind")?
                .as_str()
                .ok_or_else(|| JsonError::shape("kind"))?
                .to_string(),
            outcome,
            total_ns: v
                .require("total_ns")?
                .as_u64()
                .ok_or_else(|| JsonError::shape("total_ns"))?,
            spans,
            annotations: v
                .get("annotations")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|a| a.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Tree sanity: exactly one root at `spans[0]`, every other span's
    /// parent is an earlier-listed span of this trace (so every span is
    /// reachable from the root), and span ids are unique. Returns the
    /// first problem found.
    pub fn validate_tree(&self) -> Result<(), String> {
        let Some(root) = self.spans.first() else {
            return Err("trace has no spans".into());
        };
        if root.parent.is_some() {
            return Err(format!("spans[0] ({}) has a parent", root.name));
        }
        let mut seen = std::collections::BTreeSet::new();
        for (i, s) in self.spans.iter().enumerate() {
            if !seen.insert(s.span_id) {
                return Err(format!("duplicate span id {}", s.span_id));
            }
            if i > 0 {
                let Some(p) = s.parent else {
                    return Err(format!("span {} ({}) is a second root", s.span_id, s.name));
                };
                if !self.spans[..i].iter().any(|q| q.span_id == p) {
                    return Err(format!(
                        "span {} ({}) has parent {} outside this trace",
                        s.span_id, s.name, p
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Point-in-time recorder occupancy, surfaced in `EngineStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightRecorderStats {
    /// Capacity of each retention set (slowest list and anomaly ring).
    pub capacity: usize,
    /// Slow traces currently retained.
    pub slow_retained: usize,
    /// Anomalous traces currently retained.
    pub anomalies_retained: usize,
    /// Total traces offered since open.
    pub recorded: u64,
    /// Anomalies evicted from the ring (oldest-first) because it was
    /// full.
    pub anomalies_evicted: u64,
}

/// Fixed-capacity retention of the traces worth keeping: the N slowest
/// clean requests plus every anomalous one (ring, oldest evicted).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    /// Clean requests, sorted slowest-first, truncated to `capacity`.
    slowest: Vec<QueryTrace>,
    /// Anomalous requests in arrival order.
    anomalies: VecDeque<QueryTrace>,
    recorded: u64,
    anomalies_evicted: u64,
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` slow traces and `capacity`
    /// anomalies (0 disables retention; offers are still counted).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slowest: Vec::new(),
            anomalies: VecDeque::new(),
            recorded: 0,
            anomalies_evicted: 0,
        }
    }

    /// Offers one finished request.
    pub fn record(&mut self, trace: QueryTrace) {
        self.recorded += 1;
        if self.capacity == 0 {
            return;
        }
        if trace.outcome.is_anomaly() {
            self.anomalies.push_back(trace);
            if self.anomalies.len() > self.capacity {
                self.anomalies.pop_front();
                self.anomalies_evicted += 1;
            }
            return;
        }
        if self.slowest.len() < self.capacity {
            self.slowest.push(trace);
            self.slowest.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        } else if trace.total_ns > self.slowest.last().map_or(0, |t| t.total_ns) {
            self.slowest.pop();
            let at = self
                .slowest
                .partition_point(|t| t.total_ns >= trace.total_ns);
            self.slowest.insert(at, trace);
        }
    }

    /// Occupancy counters for `EngineStats`.
    pub fn stats(&self) -> FlightRecorderStats {
        FlightRecorderStats {
            capacity: self.capacity,
            slow_retained: self.slowest.len(),
            anomalies_retained: self.anomalies.len(),
            recorded: self.recorded,
            anomalies_evicted: self.anomalies_evicted,
        }
    }

    /// Everything retained: anomalies in arrival order, then the slow
    /// list slowest-first.
    pub fn traces(&self) -> Vec<&QueryTrace> {
        self.anomalies.iter().chain(self.slowest.iter()).collect()
    }

    /// The whole recorder as JSONL, one [`QueryTrace`] per line
    /// (anomalies first).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for t in self.traces() {
            out.push_str(&t.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// Parses a flight-recorder JSONL dump (the `simpim flight` loader).
/// Blank lines are skipped; any malformed line is an error naming its
/// line number.
pub fn parse_dump(text: &str) -> Result<Vec<QueryTrace>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(QueryTrace::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(trace_id: u64, outcome: Outcome, total_ns: u64) -> QueryTrace {
        let root_id = trace_id * 100;
        QueryTrace {
            trace_id,
            kind: "query".into(),
            outcome,
            total_ns,
            spans: vec![
                QuerySpan {
                    span_id: root_id,
                    parent: None,
                    name: "serve.query".into(),
                    start_ns: 0,
                    end_ns: total_ns,
                    attrs: vec![("k".into(), 4.0)],
                },
                QuerySpan {
                    span_id: root_id + 1,
                    parent: Some(root_id),
                    name: "serve.query.queue".into(),
                    start_ns: 0,
                    end_ns: total_ns / 2,
                    attrs: vec![],
                },
            ],
            annotations: vec!["shard 0: replica 1".into()],
        }
    }

    #[test]
    fn keeps_n_slowest_clean_traces() {
        let mut fr = FlightRecorder::new(3);
        for (id, ns) in [(1, 50), (2, 10), (3, 99), (4, 70), (5, 5), (6, 80)] {
            fr.record(trace(id, Outcome::Ok, ns));
        }
        let kept: Vec<u64> = fr.traces().iter().map(|t| t.total_ns).collect();
        assert_eq!(kept, vec![99, 80, 70], "slowest three, sorted");
        let s = fr.stats();
        assert_eq!(s.recorded, 6);
        assert_eq!(s.slow_retained, 3);
        assert_eq!(s.anomalies_retained, 0);
    }

    #[test]
    fn anomalies_always_retained_in_bounded_ring() {
        let mut fr = FlightRecorder::new(2);
        fr.record(trace(1, Outcome::Ok, 1_000_000));
        // Anomalies are kept no matter how fast they were.
        fr.record(trace(2, Outcome::Degraded, 1));
        fr.record(trace(3, Outcome::Failover, 2));
        fr.record(trace(4, Outcome::Timeout, 3));
        let s = fr.stats();
        assert_eq!(s.anomalies_retained, 2, "ring bounded");
        assert_eq!(s.anomalies_evicted, 1, "oldest evicted");
        let ids: Vec<u64> = fr
            .traces()
            .iter()
            .filter(|t| t.outcome.is_anomaly())
            .map(|t| t.trace_id)
            .collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let mut fr = FlightRecorder::new(0);
        fr.record(trace(1, Outcome::Failed, 10));
        assert!(fr.traces().is_empty());
        assert_eq!(fr.stats().recorded, 1);
    }

    #[test]
    fn dump_roundtrips_and_validates() {
        let mut fr = FlightRecorder::new(4);
        fr.record(trace(1, Outcome::Ok, 500));
        fr.record(trace(2, Outcome::Shed, 900));
        let dump = fr.dump_jsonl();
        let back = parse_dump(&dump).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].outcome, Outcome::Shed, "anomalies first");
        for t in &back {
            t.validate_tree().unwrap();
            assert_eq!(t.annotations, vec!["shard 0: replica 1".to_string()]);
        }
        assert!(parse_dump("not json\n").is_err());
        assert!(parse_dump("").unwrap().is_empty());
    }

    #[test]
    fn validate_tree_catches_malformed_trees() {
        let mut t = trace(1, Outcome::Ok, 100);
        t.spans[1].parent = Some(424242);
        assert!(t
            .validate_tree()
            .unwrap_err()
            .contains("outside this trace"));
        let mut t = trace(1, Outcome::Ok, 100);
        t.spans[1].parent = None;
        assert!(t.validate_tree().unwrap_err().contains("second root"));
        let mut t = trace(1, Outcome::Ok, 100);
        t.spans[1].span_id = t.spans[0].span_id;
        assert!(t.validate_tree().unwrap_err().contains("duplicate"));
        let empty = QueryTrace {
            trace_id: 1,
            kind: "query".into(),
            outcome: Outcome::Ok,
            total_ns: 0,
            spans: vec![],
            annotations: vec![],
        };
        assert!(empty.validate_tree().is_err());
    }
}

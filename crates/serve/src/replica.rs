//! R-way shard replication across banks: failover routing, wear-leveled
//! load balancing, zero-downtime rolling reprogram, and a
//! detect → quarantine → re-replicate repair loop.
//!
//! A [`ReplicaSet`] programs one shard's rows onto `R` distinct ReRAM
//! banks. The rows themselves live in **one** shared [`ShardMirror`] —
//! each replica is only a [`Residency`] (its executor/bank plus the map
//! from crossbar positions to mirror rows), so replication costs `R`
//! banks but *one* host copy of the vectors, not `R`. The set maintains
//! three invariants:
//!
//! * **Bit-identical answers from any replica.** Every replica serves
//!   over the same mirror (mutations apply there once, then each
//!   residency absorbs or defers them independently), refinement is
//!   exact `f64` arithmetic, and the `simpim-par` merge order is
//!   deterministic — so routing is invisible to clients. A repaired
//!   replica is programmed straight from the mirror's live rows, which
//!   answers identically by the compaction-invariance property
//!   `tests/serving.rs` proves.
//! * **Wear-leveling doubles as load balancing.** Each coalesced batch
//!   routes to the healthy replica with the lowest maximum crossbar
//!   program count; appends and reprograms raise a replica's wear, so
//!   routing naturally drains queries toward the freshest bank.
//! * **At least `R − 1` replicas stay queryable through mutations.** A
//!   rolling reprogram compacts one replica at a time
//!   ([`ReplicaSet::reprogram_replica`]); while a replica is
//!   mid-reprogram it is excluded from routing and every other replica
//!   still answers — compaction never blocks reads.
//!
//! **Failure handling** is a three-stage loop. *Detect*: whole-bank loss
//! ([`simpim_reram::ReRamError::BankLost`]) surfaces through the
//! residency's batch pass; the set quarantines the replica (routes
//! around it) and retries the batch on the next healthy replica —
//! failover is invisible except for the extra pass. *Re-replicate*: the
//! repair loop ([`ReplicaSet::repair_one`], driven opportunistically by
//! the engine scheduler between batches) streams the mirror's live rows
//! onto a spare bank block-by-block (no snapshot copy), scrubs it, and
//! rejoins it to routing. *Degrade*: with every replica lost, queries
//! fall back to the exact shared host mirror, so answers stay
//! bit-identical — only the PIM filter's speed is lost — and the set
//! reports itself degraded instead of erroring.
//!
//! The mirror compacts tombstones away only once *every* residency has
//! folded them out of its programmed order (residencies age
//! independently — one may have reprogrammed while another still holds
//! the tombstoned slots), at which point all orders are remapped
//! atomically.

use std::time::Instant;

use simpim_similarity::Dataset;

use crate::error::ServeError;
use crate::shard::{validate_row, Residency, ShardConfig, ShardMirror, ShardStats};
use crate::Neighbor;

/// Routing state of one replica within a [`ReplicaSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// In the routing rotation.
    Healthy,
    /// Mid compacting reprogram (rolling drain) — temporarily excluded
    /// from routing; rejoins as soon as the reprogram completes.
    Reprogramming,
    /// Its bank fail-stopped — quarantined from routing until the repair
    /// loop re-replicates it onto a spare bank.
    Lost,
}

/// Point-in-time statistics of one replica set.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSetStats {
    /// Per-replica shard statistics (index = replica).
    pub replicas: Vec<ShardStats>,
    /// Per-replica routing state.
    pub states: Vec<ReplicaState>,
    /// Batches routed to each replica (wear-leveled load balance).
    pub routed: Vec<u64>,
    /// Replicas currently in the routing rotation.
    pub healthy: usize,
    /// `true` when no replica is routable: queries are served from the
    /// exact host mirror (correct but unfiltered).
    pub degraded: bool,
    /// Batches re-routed after a bank loss was detected.
    pub failovers: u64,
    /// Lost replicas re-replicated onto spare banks since open.
    pub repairs: u64,
    /// Queries answered from the host mirror because every replica was
    /// lost.
    pub degraded_queries: u64,
    /// Live objects (shared by all replicas).
    pub live: usize,
}

/// How one coalesced batch was actually served: the routing and fault
/// events observed while answering it. The engine folds these into each
/// member query's flight-recorder trace, which is what makes a tail
/// query attributable to a failover or a degraded host-mirror pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteSample {
    /// Replica that answered; `None` when every replica was lost and the
    /// batch was served from the exact host mirror.
    pub replica: Option<usize>,
    /// Bank losses detected (and failed over) while serving this batch.
    pub failovers: u64,
    /// Queries shed to the host path inside the answering replica.
    pub sheds: u64,
    /// Whether the batch was answered from the degraded host mirror.
    pub degraded: bool,
}

/// One shard's rows replicated across `R` distinct banks over a single
/// shared host mirror.
#[derive(Debug)]
pub struct ReplicaSet {
    cfg: ShardConfig,
    mirror: ShardMirror,
    replicas: Vec<Residency>,
    state: Vec<ReplicaState>,
    routed: Vec<u64>,
    failovers: u64,
    repairs: u64,
    degraded_queries: u64,
    /// Bumped per repair so each spare bank draws a fresh fault map.
    generation: u64,
}

/// Per-replica fault-model derivation: replicas are *distinct physical
/// banks*, so they must not share a fault map. The seed is perturbed by
/// the replica index and, on repair, by the spare-bank generation —
/// deterministic (reproducible runs) yet decorrelated across replicas.
fn replica_config(base: ShardConfig, replica: usize, generation: u64) -> ShardConfig {
    let mut cfg = base;
    if let Some(f) = &mut cfg.executor.faults {
        f.seed ^= (replica as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ generation.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    }
    cfg
}

impl ReplicaSet {
    /// Opens `r` replicas of the shard over `rows` / `ids`, each on its
    /// own bank with a decorrelated fault map. `rows` is taken by value
    /// and becomes the single shared mirror — no per-replica copy is
    /// made; each residency streams the mirror's rows onto its bank
    /// block-by-block.
    pub fn open(
        cfg: ShardConfig,
        r: usize,
        rows: Dataset,
        ids: Vec<usize>,
    ) -> Result<Self, ServeError> {
        assert!(r >= 1, "a replica set needs at least one replica");
        let mirror = ShardMirror::new(rows, ids);
        let replicas = (0..r)
            .map(|i| Residency::open(replica_config(cfg, i, 0), &mirror))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            cfg,
            mirror,
            state: vec![ReplicaState::Healthy; r],
            routed: vec![0; r],
            replicas,
            failovers: 0,
            repairs: 0,
            degraded_queries: 0,
            generation: 0,
        })
    }

    /// Replication factor `R`.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Live object count (the shared mirror's).
    pub fn live_len(&self) -> usize {
        self.mirror.live_len()
    }

    /// Routing state of replica `i`.
    pub fn replica_state(&self, i: usize) -> ReplicaState {
        self.state[i]
    }

    /// The routing decision: the healthy replica with the least crossbar
    /// wear (ties to the lowest index — deterministic). `None` when the
    /// set is degraded.
    pub fn route(&self) -> Option<usize> {
        (0..self.replicas.len())
            .filter(|&i| self.state[i] == ReplicaState::Healthy)
            .min_by_key(|&i| (self.replicas[i].wear(), i))
    }

    /// Serves one coalesced batch: route to the least-worn healthy
    /// replica; on detected bank loss, quarantine it and fail the batch
    /// over to the next replica; with no replica left, answer exactly
    /// from the host mirror (degraded mode).
    pub fn query_batch(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Vec<Result<Vec<Neighbor>, ServeError>> {
        self.query_batch_traced(queries, ks, simpim_obs::TraceCtx::NONE, 0)
            .0
    }

    /// Forces one batch through replica `i`, bypassing routing — the
    /// inspection hook replica-equivalence tests use to prove every
    /// replica answers bit-identically. A lost bank sheds to the host
    /// mirror inside the residency's own fallback, so this never fails
    /// over.
    pub fn query_replica(
        &mut self,
        i: usize,
        queries: &[Vec<f64>],
        ks: &[usize],
    ) -> Vec<Result<Vec<Neighbor>, ServeError>> {
        match self.replicas[i].try_query_batch_ctx(
            &self.mirror,
            queries,
            ks,
            simpim_obs::TraceCtx::NONE,
        ) {
            Ok(out) => out,
            Err(_) => queries
                .iter()
                .zip(ks)
                .map(|(q, &k)| self.mirror.host_query(q, k))
                .collect(),
        }
    }

    /// [`ReplicaSet::query_batch`] under an explicit trace context. The
    /// crossbar pass runs under a `serve.replica.pass` span parented on
    /// `parent` (so the pass stays attributable to its coalesced batch
    /// across the worker-thread hop), and the returned [`RouteSample`]
    /// reports which replica answered and what fault handling (failover,
    /// shed, degraded host mirror) the batch absorbed on the way.
    pub fn query_batch_traced(
        &mut self,
        queries: &[Vec<f64>],
        ks: &[usize],
        parent: simpim_obs::TraceCtx,
        shard: usize,
    ) -> (Vec<Result<Vec<Neighbor>, ServeError>>, RouteSample) {
        let mut sample = RouteSample::default();
        let (mut span, ctx) = if parent.is_none() {
            (None, simpim_obs::TraceCtx::NONE)
        } else {
            let (sp, ctx) = simpim_obs::trace::open_span_ctx(
                "serve.replica.pass",
                parent,
                &[("shard", shard as f64), ("queries", queries.len() as f64)],
            );
            (Some(sp), ctx)
        };
        while let Some(i) = self.route() {
            let sheds_before = self.replicas[i].sheds();
            match self.replicas[i].try_query_batch_ctx(&self.mirror, queries, ks, ctx) {
                Ok(out) => {
                    self.routed[i] += 1;
                    sample.replica = Some(i);
                    sample.sheds = self.replicas[i].sheds() - sheds_before;
                    if let Some(sp) = &mut span {
                        sp.record_all([
                            ("replica", i as f64),
                            ("failovers", sample.failovers as f64),
                            ("sheds", sample.sheds as f64),
                        ]);
                    }
                    return (out, sample);
                }
                Err(e) if e.is_bank_loss() => {
                    // Detect + quarantine: route around the dead bank and
                    // retry the whole batch elsewhere. Answers are
                    // replica-independent, so the retry is transparent.
                    self.state[i] = ReplicaState::Lost;
                    self.failovers += 1;
                    sample.failovers += 1;
                    simpim_obs::metrics::counter_add("simpim.serve.failovers", 1);
                }
                Err(e) => {
                    return (vec![Err(e); queries.len()], sample);
                }
            }
        }
        // Degraded: every replica lost. The host mirror is still exact.
        sample.degraded = true;
        self.degraded_queries += queries.len() as u64;
        simpim_obs::metrics::counter_add("simpim.serve.degraded_queries", queries.len() as u64);
        if let Some(sp) = &mut span {
            sp.record_all([("degraded", 1.0), ("failovers", sample.failovers as f64)]);
        }
        let out = queries
            .iter()
            .zip(ks)
            .map(|(q, &k)| self.mirror.host_query(q, k))
            .collect();
        (out, sample)
    }

    /// Inserts a row under `id`: appended to the shared mirror once,
    /// then offered to every replica's spare rows. Replicas whose spares
    /// are exhausted (or whose bank is lost) simply leave it in their
    /// delta — mirrors never diverge because there is only one.
    pub fn insert(&mut self, id: usize, row: &[f64]) -> Result<(), ServeError> {
        validate_row(row, self.mirror.dim())?;
        let idx = self.mirror.append(id, row)?;
        for replica in &mut self.replicas {
            replica.absorb_insert(idx, row)?;
        }
        Ok(())
    }

    /// Deletes `id`: tombstoned in the shared mirror once; each replica
    /// then compacts independently if its tombstone ratio crosses its
    /// wear-adjusted threshold. Returns whether the id was present.
    pub fn delete(&mut self, id: usize) -> Result<bool, ServeError> {
        if self.mirror.tombstone(id).is_none() {
            return Ok(false);
        }
        for replica in &mut self.replicas {
            replica.maybe_reprogram(&self.mirror)?;
        }
        self.try_compact();
        Ok(true)
    }

    /// Drops tombstones from the mirror once **every** residency has
    /// folded them out of its programmed order (they reprogram at
    /// different times — wear thresholds differ — so the mirror must
    /// wait for the slowest), then remaps all orders atomically.
    fn try_compact(&mut self) {
        if self.mirror.dead_len() == 0 {
            return;
        }
        if self.replicas.iter().any(|r| !r.order_clean(&self.mirror)) {
            return;
        }
        let table = self.mirror.compact();
        for replica in &mut self.replicas {
            replica.remap(&table);
        }
    }

    /// Takes replica `i` out of routing for a compacting reprogram. The
    /// caller (the engine's rolling-flush loop) serves queries from the
    /// remaining replicas between steps. Returns `false` (and does
    /// nothing) for a lost replica — the repair loop owns those.
    pub fn begin_reprogram(&mut self, i: usize) -> bool {
        if self.state[i] != ReplicaState::Healthy {
            return false;
        }
        self.state[i] = ReplicaState::Reprogramming;
        true
    }

    /// Rejoins replica `i` to routing after its reprogram step.
    pub fn finish_reprogram(&mut self, i: usize) {
        if self.state[i] == ReplicaState::Reprogramming {
            self.state[i] = ReplicaState::Healthy;
        }
    }

    /// One step of the rolling reprogram: drain replica `i` from
    /// routing, compact it, rejoin it. The other `R − 1` replicas stay
    /// queryable throughout, and answers are unchanged on both sides of
    /// the step (compaction invariance). Once the last dirty replica
    /// folds its tombstones, the shared mirror compacts too.
    pub fn reprogram_replica(&mut self, i: usize) -> Result<(), ServeError> {
        if !self.begin_reprogram(i) {
            return Ok(());
        }
        let out = self.replicas[i].reprogram(&self.mirror);
        self.finish_reprogram(i);
        self.try_compact();
        out
    }

    /// Whether any replica is quarantined awaiting re-replication.
    pub fn needs_repair(&self) -> bool {
        self.state.contains(&ReplicaState::Lost)
    }

    /// Proactive detection sweep: quarantines any replica whose bank has
    /// fail-stopped but which no batch has routed to yet (query-path
    /// detection only fires on routed traffic). Returns the number of
    /// replicas newly quarantined. The engine runs this between commands
    /// so idle banks don't hide their losses from the repair loop.
    pub fn quarantine_lost(&mut self) -> usize {
        let mut newly = 0;
        for i in 0..self.replicas.len() {
            if self.state[i] == ReplicaState::Healthy && self.replicas[i].bank_lost() {
                self.state[i] = ReplicaState::Lost;
                newly += 1;
            }
        }
        newly
    }

    /// Re-replicates one lost replica onto a spare bank: the shared
    /// mirror's live rows are streamed onto a fresh bank with a fresh
    /// fault map (block-by-block — no snapshot copy is materialized),
    /// scrubbed, and rejoined to routing. Returns `true` if a replica
    /// was repaired. Driven by the engine scheduler between batches, so
    /// repair work never blocks a query on a healthy replica.
    pub fn repair_one(&mut self) -> Result<bool, ServeError> {
        let Some(i) = self.state.iter().position(|&s| s == ReplicaState::Lost) else {
            return Ok(false);
        };
        if self.mirror.live_len() == 0 {
            // Nothing to program — an empty shard answers nothing from
            // any path, so leave the replica quarantined.
            return Ok(false);
        }
        let started = Instant::now();
        self.generation += 1;
        let mut spare =
            Residency::open(replica_config(self.cfg, i, self.generation), &self.mirror)?;
        spare.scrub()?;
        self.replicas[i] = spare;
        self.state[i] = ReplicaState::Healthy;
        self.repairs += 1;
        // The repaired residency programmed only live rows; if it was
        // the last one holding tombstones, the mirror can compact now.
        self.try_compact();
        simpim_obs::metrics::counter_add("simpim.serve.repairs", 1);
        simpim_obs::metrics::histogram_record(
            "simpim.serve.repair_ns",
            started.elapsed().as_nanos() as u64,
        );
        Ok(true)
    }

    /// Fail-stops the bank under replica `i` — fault injection only;
    /// detection (and the failover/repair that follows) happens on the
    /// next routed batch, exactly as for an organically lost bank.
    pub fn kill_replica(&mut self, i: usize) {
        self.replicas[i].kill_bank();
    }

    /// Direct access to replica `i`'s residency (wear injection,
    /// inspection). The rows live in the shared mirror, not here — use
    /// [`ReplicaSet::query_replica`] to answer through a specific
    /// replica.
    pub fn replica_mut(&mut self, i: usize) -> &mut Residency {
        &mut self.replicas[i]
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ReplicaSetStats {
        let healthy = self
            .state
            .iter()
            .filter(|&&s| s == ReplicaState::Healthy)
            .count();
        ReplicaSetStats {
            replicas: self
                .replicas
                .iter()
                .map(|r| r.stats(&self.mirror))
                .collect(),
            states: self.state.clone(),
            routed: self.routed.clone(),
            healthy,
            degraded: healthy == 0,
            failovers: self.failovers,
            repairs: self.repairs,
            degraded_queries: self.degraded_queries,
            live: self.live_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_core::executor::ExecutorConfig;
    use simpim_mining::knn::standard::knn_standard;
    use simpim_reram::{CrossbarConfig, FaultConfig, PimConfig};
    use simpim_similarity::Measure;

    fn cfg(faults: Option<FaultConfig>) -> ShardConfig {
        ShardConfig {
            executor: ExecutorConfig {
                pim: PimConfig {
                    crossbar: CrossbarConfig {
                        size: 16,
                        adc_bits: 12,
                        ..Default::default()
                    },
                    num_crossbars: 4096,
                    ..Default::default()
                },
                alpha: 1e6,
                operand_bits: 32,
                double_buffer: false,
                parallel_regions: true,
                faults,
                scrub_interval: 0,
            },
            spare_rows: 2,
            tombstone_reprogram_ratio: 0.4,
            reprogram_wear_budget: 1_000,
        }
    }

    fn rows() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2],
            vec![0.4, 0.6, 0.2, 0.8],
        ])
        .unwrap()
    }

    fn query() -> Vec<f64> {
        vec![0.45, 0.55, 0.4, 0.6]
    }

    #[test]
    fn routing_prefers_the_least_worn_healthy_replica() {
        let mut set = ReplicaSet::open(cfg(None), 3, rows(), vec![0, 1, 2, 3]).unwrap();
        assert_eq!(set.route(), Some(0), "equal wear ties to the lowest index");
        set.replica_mut(0).age_bank(10);
        set.replica_mut(1).age_bank(5);
        assert_eq!(set.route(), Some(2));
        set.replica_mut(2).age_bank(20);
        assert_eq!(set.route(), Some(1));
        // A batch routes there and the routed counter records it.
        let got = set.query_batch(&[query()], &[2]).remove(0).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(set.stats().routed, vec![0, 1, 0]);
    }

    #[test]
    fn failover_detects_quarantines_and_repairs() {
        let mut set = ReplicaSet::open(cfg(None), 2, rows(), vec![0, 1, 2, 3]).unwrap();
        let truth = knn_standard(&rows(), &query(), 2, Measure::EuclideanSq).unwrap();
        let before = set.query_batch(&[query()], &[2]).remove(0).unwrap();
        assert_eq!(before, truth.neighbors);

        // Kill the replica that routing would pick; the next batch must
        // detect the loss, fail over, and answer identically.
        let victim = set.route().unwrap();
        set.kill_replica(victim);
        let after = set.query_batch(&[query()], &[2]).remove(0).unwrap();
        assert_eq!(after, before, "failover must be bit-invisible");
        let stats = set.stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.healthy, 1);
        assert!(set.needs_repair());

        // Repair re-replicates onto a spare bank and rejoins routing.
        assert!(set.repair_one().unwrap());
        let stats = set.stats();
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.healthy, 2);
        assert!(!set.needs_repair());

        // The repaired replica serves bit-identically: kill the survivor
        // so the answer can only come from the repaired bank (whichever
        // replica routing tries first, the survivor is dead).
        let survivor = (0..2).find(|&i| i != victim).unwrap();
        let routed_before = set.stats().routed[victim];
        set.kill_replica(survivor);
        let repaired = set.query_batch(&[query()], &[2]).remove(0).unwrap();
        assert_eq!(repaired, before);
        assert_eq!(
            set.stats().routed[victim],
            routed_before + 1,
            "the repaired bank served the batch"
        );
    }

    #[test]
    fn all_replicas_lost_degrades_to_exact_host_mirror() {
        let mut set = ReplicaSet::open(cfg(None), 2, rows(), vec![0, 1, 2, 3]).unwrap();
        let truth = knn_standard(&rows(), &query(), 3, Measure::EuclideanSq).unwrap();
        set.kill_replica(0);
        set.kill_replica(1);
        let got = set.query_batch(&[query()], &[3]).remove(0).unwrap();
        assert_eq!(got, truth.neighbors, "degraded answers stay exact");
        let stats = set.stats();
        assert!(stats.degraded);
        assert_eq!(stats.healthy, 0);
        assert_eq!(stats.failovers, 2);
        assert_eq!(stats.degraded_queries, 1);
        // Mutations still apply (host-side) while degraded...
        set.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        assert!(set.delete(0).unwrap());
        // ...and the repair loop can rebuild from the shared mirror alone.
        assert!(set.repair_one().unwrap());
        assert!(set.repair_one().unwrap());
        let stats = set.stats();
        assert_eq!(stats.healthy, 2);
        assert!(!stats.degraded);
        let got = set.query_batch(&[query()], &[4]).remove(0).unwrap();
        assert!(got.iter().any(|&(id, _)| id == 4));
        assert!(got.iter().all(|&(id, _)| id != 0));
    }

    #[test]
    fn rolling_reprogram_keeps_r_minus_one_replicas_routable() {
        let mut set = ReplicaSet::open(cfg(None), 2, rows(), vec![0, 1, 2, 3]).unwrap();
        set.delete(1).unwrap(); // a tombstone for the reprogram to compact
        let before = set.query_batch(&[query()], &[3]).remove(0).unwrap();

        assert!(set.begin_reprogram(0));
        assert_eq!(set.replica_state(0), ReplicaState::Reprogramming);
        assert_eq!(set.route(), Some(1), "reads keep flowing mid-drain");
        let mid = set.query_batch(&[query()], &[3]).remove(0).unwrap();
        assert_eq!(mid, before, "mid-reprogram answers are unchanged");
        set.finish_reprogram(0);

        for i in 0..2 {
            set.reprogram_replica(i).unwrap();
        }
        let stats = set.stats();
        assert_eq!(stats.healthy, 2);
        assert!(stats.replicas.iter().all(|r| r.tombstones == 0));
        let after = set.query_batch(&[query()], &[3]).remove(0).unwrap();
        assert_eq!(after, before);
    }

    #[test]
    fn shared_mirror_compacts_once_every_replica_is_clean() {
        let mut set = ReplicaSet::open(cfg(None), 2, rows(), vec![0, 1, 2, 3]).unwrap();
        set.delete(1).unwrap();
        // One tombstone out of four is under the 0.4 threshold: both
        // residencies still hold the dead slot, so the mirror must not
        // have compacted yet.
        assert_eq!(set.stats().replicas[0].tombstones, 1);
        // Roll replica 0 only: the mirror still waits on replica 1.
        set.reprogram_replica(0).unwrap();
        let stats = set.stats();
        assert_eq!(stats.replicas[0].tombstones, 0);
        assert_eq!(stats.replicas[1].tombstones, 1);
        // Rolling the second replica makes every order clean → compact.
        set.reprogram_replica(1).unwrap();
        let stats = set.stats();
        assert!(stats.replicas.iter().all(|r| r.tombstones == 0));
        assert_eq!(stats.live, 3);
        // Answers unchanged through the whole sequence.
        let truth = {
            let mut remaining = rows();
            remaining.swap_remove_row(1).unwrap();
            knn_standard(&remaining, &query(), 3, Measure::EuclideanSq).unwrap()
        };
        let got = set.query_batch(&[query()], &[3]).remove(0).unwrap();
        assert_eq!(
            got.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            truth.neighbors.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
        assert!(got.iter().all(|&(id, _)| id != 1));
    }

    #[test]
    fn query_replica_answers_identically_on_every_replica() {
        let mut set = ReplicaSet::open(cfg(None), 3, rows(), vec![0, 1, 2, 3]).unwrap();
        set.insert(4, &[0.2, 0.3, 0.4, 0.5]).unwrap();
        set.delete(2).unwrap();
        let truth = set.query_batch(&[query()], &[3]).remove(0).unwrap();
        for i in 0..3 {
            let got = set
                .query_replica(i, std::slice::from_ref(&query()), &[3])
                .remove(0)
                .unwrap();
            assert_eq!(got, truth, "replica {i} diverged");
        }
        // Even through a dead bank (host-mirror shed path).
        set.kill_replica(1);
        let got = set
            .query_replica(1, std::slice::from_ref(&query()), &[3])
            .remove(0)
            .unwrap();
        assert_eq!(got, truth);
    }

    #[test]
    fn replica_fault_maps_are_decorrelated() {
        let base = cfg(Some(FaultConfig {
            dead_bitline_rate: 0.05,
            seed: 9,
            ..Default::default()
        }));
        let a = replica_config(base, 0, 0).executor.faults.unwrap();
        let b = replica_config(base, 1, 0).executor.faults.unwrap();
        let c = replica_config(base, 1, 1).executor.faults.unwrap();
        assert_ne!(a.seed, b.seed, "replicas must not share a fault map");
        assert_ne!(b.seed, c.seed, "spare banks draw fresh fault maps");
        // Faulty replicas still answer bit-identically (guard-band /
        // quarantine keep bounds valid), so failover stays invisible.
        let mut set = ReplicaSet::open(base, 2, rows(), vec![0, 1, 2, 3]).unwrap();
        let truth = knn_standard(&rows(), &query(), 2, Measure::EuclideanSq).unwrap();
        let first = set.query_batch(&[query()], &[2]).remove(0).unwrap();
        assert_eq!(first, truth.neighbors);
        set.kill_replica(set.route().unwrap());
        let second = set.query_batch(&[query()], &[2]).remove(0).unwrap();
        assert_eq!(second, first);
    }
}

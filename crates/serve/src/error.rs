//! Error type of the serving engine.

use std::error::Error;
use std::fmt;

use simpim_core::CoreError;
use simpim_mining::MiningError;

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is full — admission control rejected
    /// the request. Back off and retry.
    Overloaded,
    /// The request's deadline expired while it waited in the queue.
    DeadlineExpired,
    /// The engine has shut down (its scheduler thread exited).
    Closed,
    /// A caller-supplied argument is out of range — wrong dimensionality,
    /// non-normalized values, `k == 0`.
    InvalidArgument {
        /// What was wrong.
        what: String,
    },
    /// The engine configuration is invalid (e.g. a malformed
    /// [`simpim_reram::FaultConfig`]), rejected up front before any bank
    /// is programmed.
    Config {
        /// What was wrong.
        what: String,
    },
    /// A PIM execution failure that could not be shed to the host path.
    Core(CoreError),
    /// A refinement failure (measure/operand mismatch).
    Mining(MiningError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded => write!(
                f,
                "submission queue full: request shed by admission control"
            ),
            Self::DeadlineExpired => write!(f, "deadline expired before the query was scheduled"),
            Self::Closed => write!(f, "serving engine is shut down"),
            Self::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            Self::Config { what } => write!(f, "invalid configuration: {what}"),
            Self::Core(e) => write!(f, "PIM execution failed: {e}"),
            Self::Mining(e) => write!(f, "refinement failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Mining(e) => Some(e),
            _ => None,
        }
    }
}

impl ServeError {
    /// Whether this error is a whole-bank fail-stop
    /// ([`simpim_reram::ReRamError::BankLost`]) bubbling up through the
    /// execution stack — the signal that the replica's bank is gone and
    /// the query must fail over to another replica.
    pub fn is_bank_loss(&self) -> bool {
        matches!(
            self,
            Self::Core(CoreError::ReRam(simpim_reram::ReRamError::BankLost))
        )
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<MiningError> for ServeError {
    fn from(e: MiningError) -> Self {
        Self::Mining(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Overloaded.to_string().contains("queue full"));
        assert!(ServeError::Closed.to_string().contains("shut down"));
        let e = ServeError::from(CoreError::Mismatch { what: "test" });
        assert!(e.to_string().contains("PIM execution failed"));
        assert!(e.source().is_some());
        assert!(ServeError::Config { what: "bad".into() }
            .to_string()
            .contains("configuration"));
    }

    #[test]
    fn bank_loss_is_detected_through_the_error_stack() {
        let e = ServeError::from(CoreError::ReRam(simpim_reram::ReRamError::BankLost));
        assert!(e.is_bank_loss());
        assert!(!ServeError::Overloaded.is_bank_loss());
        assert!(!ServeError::from(CoreError::Mismatch { what: "x" }).is_bank_loss());
    }
}

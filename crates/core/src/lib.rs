#![warn(missing_docs)]
//! # simpim-core
//!
//! The paper's primary contribution (Section V): making a similarity-based
//! mining algorithm aware of ReRAM PIM without compromising result
//! accuracy.
//!
//! * [`decompose`] — PIM-aware function decomposition (Section V-A,
//!   Table 4): rewrite `F(p,q) = G(Φ(p), Φ(q), p·q)` so the dot product
//!   runs on crossbars, `Φ` is precomputed offline, and `G` costs O(1) on
//!   the host with `3·b` bits of transfer instead of `d·b` (Fig. 8).
//! * [`pim_bounds`] — PIM-aware bound computation (Section V-B): ReRAM
//!   operands are non-negative integers, so exact floating-point functions
//!   are replaced by *provably correct* bounds over the α-quantized
//!   vectors — `LB_PIM-ED` (Theorem 1), `LB_PIM-FNN` (Theorem 2), the
//!   Theorem 3 error bound, plus the upper bounds for CS/PCC and the exact
//!   PIM Hamming distance the paper defers to its technical report.
//! * [`memory`] — PIM memory management (Section V-C, Theorem 4): choose
//!   the largest compressed dimensionality `s` whose data + gather
//!   crossbars fit the PIM array, avoiding endurance-burning
//!   re-programming.
//! * [`executor`] — the offline/online machinery of Fig. 9: quantize,
//!   program crossbars, stage Φ in the memory array, then serve batched
//!   bound computations (query → `⌊q̄⌋` → dot-product batch → `G` on host).
//! * [`planner`] — execution-plan optimization (Section V-D, Eq. 13):
//!   measure pruning ratios offline, enumerate the `2^L` bound subsets, and
//!   pick the cascade with least estimated data transfer.
//! * [`framework`] — the end-to-end recipe of Section III-B tying
//!   profiling output to an offload decision.

pub mod decompose;
pub mod error;
pub mod executor;
pub mod framework;
pub mod memory;
pub mod pim_bounds;
pub mod planner;
pub mod stage;

pub use error::CoreError;
pub use executor::{PimExecutor, PreparedFunction, ResidentBuilder};
pub use memory::{choose_dimensionality, MemoryPlan};
pub use planner::{
    BankProfile, CandidateBound, ExecutionPlan, FleetPlan, FleetPlanner, Planner, PruningProfile,
    ShardPlacement,
};
pub use stage::{PimEdStage, PimFnnStage, PimSmStage};

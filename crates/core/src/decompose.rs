//! PIM-aware function decomposition (Section V-A, Table 4).
//!
//! A similarity or bound function is *PIM-aware* when it can be written as
//!
//! ```text
//! F(p, q) = G(Φ(p), Φ(q), p·q)        (Eq. 3)
//! ```
//!
//! where `Φ` has fixed-size output and is precomputable offline, `p·q` runs
//! on PIM, and `G` combines the three in O(1) on the host. Computing `F`
//! then transfers `3·b` bits instead of `d·b` (Fig. 8).
//!
//! This module implements Table 4 verbatim on floating-point vectors — the
//! algebraic identities behind the quantized bounds of
//! [`crate::pim_bounds`] — and carries the transfer-cost metadata used by
//! the planner. Each identity is verified against the direct Table 2
//! formula in tests.

use simpim_similarity::{stats, Measure, SegmentStats};

/// `Φ(p)` for ED: `Σ pᵢ²` (Table 4, row ED).
pub fn phi_ed(p: &[f64]) -> f64 {
    stats::norm_sq(p)
}

/// `G` for ED: `Φ(p) + Φ(q) − 2·p·q` (Eq. 4).
pub fn g_ed(phi_p: f64, phi_q: f64, dot: f64) -> f64 {
    phi_p + phi_q - 2.0 * dot
}

/// `Φ(p)` for CS: `√(Σ pᵢ²)` (Table 4, row CS).
pub fn phi_cs(p: &[f64]) -> f64 {
    stats::norm(p)
}

/// `G` for CS: `p·q / (Φ(p)·Φ(q))`; 0 when a norm vanishes.
pub fn g_cs(phi_p: f64, phi_q: f64, dot: f64) -> f64 {
    if phi_p == 0.0 || phi_q == 0.0 {
        0.0
    } else {
        dot / (phi_p * phi_q)
    }
}

/// The two Φ components for PCC (Table 4, row PCC):
/// `Φa(p) = √(d·Σpᵢ² − (Σpᵢ)²)` and `Φb(p) = Σpᵢ`.
pub fn phi_pcc(p: &[f64]) -> (f64, f64) {
    let d = p.len() as f64;
    let s = stats::sum(p);
    let phi_a = (d * stats::norm_sq(p) - s * s).max(0.0).sqrt();
    (phi_a, s)
}

/// `G` for PCC: `(d·p·q − Φb(p)·Φb(q)) / (Φa(p)·Φa(q))`; 0 when either
/// vector is constant.
pub fn g_pcc(d: usize, phi_a_p: f64, phi_b_p: f64, phi_a_q: f64, phi_b_q: f64, dot: f64) -> f64 {
    if phi_a_p == 0.0 || phi_a_q == 0.0 {
        0.0
    } else {
        (d as f64 * dot - phi_b_p * phi_b_q) / (phi_a_p * phi_a_q)
    }
}

/// `G` for HD (Table 4, row HD): `d − p·q − p̃·q̃` where `p̃` is the bitwise
/// complement. Both dot products run on PIM; HD is computed *exactly*.
pub fn g_hd(d: u64, dot: u64, dot_complement: u64) -> u64 {
    d - dot - dot_complement
}

/// `Φ(p)` for LB_FNN (Table 4, row LB_FNN):
/// `l · Σ (µ(p̂ᵢ)² + σ(p̂ᵢ)²)` over the `d′` segments.
pub fn phi_fnn(seg: &SegmentStats) -> f64 {
    let l = seg.segment_len as f64;
    l * seg
        .means
        .iter()
        .zip(&seg.stds)
        .map(|(&m, &s)| m * m + s * s)
        .sum::<f64>()
}

/// `G` for LB_FNN:
/// `Φ(p) + Φ(q) − 2l·(µ(p̂)·µ(q̂)) − 2l·(σ(p̂)·σ(q̂))` — the two dot
/// products over the segment-mean and segment-σ vectors run on PIM.
pub fn g_fnn(l: usize, phi_p: f64, phi_q: f64, dot_means: f64, dot_stds: f64) -> f64 {
    phi_p + phi_q - 2.0 * l as f64 * (dot_means + dot_stds)
}

/// Transfer cost in **bits** of evaluating `F(p,q)` once on a conventional
/// architecture: the whole vector moves (`d·b`, Fig. 8a).
pub fn conventional_transfer_bits(d: usize, b: u32) -> u64 {
    d as u64 * u64::from(b)
}

/// Transfer cost in **bits** of evaluating `G` once with PIM: `Φ(p)`, the
/// dot-product result, and the amortized `Φ(q)` — `3·b` (Fig. 8b).
pub fn pim_transfer_bits(b: u32) -> u64 {
    3 * u64::from(b)
}

/// Whether a measure is PIM-aware (all of Table 2/4 are; the enum exists so
/// the framework can answer the Section III-B question generically).
pub fn is_pim_aware(measure: Measure) -> bool {
    matches!(
        measure,
        Measure::EuclideanSq | Measure::Cosine | Measure::Pearson | Measure::Hamming
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::{measures, SegmentStats};

    fn p() -> Vec<f64> {
        vec![0.2, 0.8, 0.4, 0.9, 0.1, 0.6, 0.3, 0.7]
    }

    fn q() -> Vec<f64> {
        vec![0.5, 0.3, 0.6, 0.8, 0.2, 0.4, 0.9, 0.1]
    }

    #[test]
    fn ed_decomposition_matches_direct() {
        let (p, q) = (p(), q());
        let f = g_ed(phi_ed(&p), phi_ed(&q), stats::dot(&p, &q));
        assert!((f - measures::euclidean_sq(&p, &q)).abs() < 1e-12);
    }

    #[test]
    fn cs_decomposition_matches_direct() {
        let (p, q) = (p(), q());
        let f = g_cs(phi_cs(&p), phi_cs(&q), stats::dot(&p, &q));
        assert!((f - measures::cosine(&p, &q)).abs() < 1e-12);
        assert_eq!(g_cs(0.0, 1.0, 0.5), 0.0);
    }

    #[test]
    fn pcc_decomposition_matches_direct() {
        let (p, q) = (p(), q());
        let (pa, pb) = phi_pcc(&p);
        let (qa, qb) = phi_pcc(&q);
        let f = g_pcc(p.len(), pa, pb, qa, qb, stats::dot(&p, &q));
        assert!((f - measures::pearson(&p, &q)).abs() < 1e-12);
        // Constant vector → Φa = 0 → PCC defined as 0.
        let (ca, _) = phi_pcc(&[0.5, 0.5, 0.5]);
        assert_eq!(ca, 0.0);
        assert_eq!(g_pcc(3, ca, 1.5, qa, qb, 1.0), 0.0);
    }

    #[test]
    fn hd_decomposition_matches_xor() {
        // p = 10110100, q = 00111001 → HD = 4.
        let pb = [1u64, 0, 1, 1, 0, 1, 0, 0];
        let qb = [0u64, 0, 1, 1, 1, 0, 0, 1];
        let dot: u64 = pb.iter().zip(&qb).map(|(a, b)| a * b).sum();
        let dotc: u64 = pb.iter().zip(&qb).map(|(a, b)| (1 - a) * (1 - b)).sum();
        let hd_direct: u64 = pb.iter().zip(&qb).filter(|(a, b)| a != b).count() as u64;
        assert_eq!(g_hd(8, dot, dotc), hd_direct);
    }

    #[test]
    fn fnn_decomposition_matches_bound() {
        let (p, q) = (p(), q());
        let d_prime = 4;
        let sp = SegmentStats::compute(&p, d_prime).unwrap();
        let sq = SegmentStats::compute(&q, d_prime).unwrap();
        let l = sp.segment_len;
        let dot_means = stats::dot(&sp.means, &sq.means);
        let dot_stds = stats::dot(&sp.stds, &sq.stds);
        let via_g = g_fnn(l, phi_fnn(&sp), phi_fnn(&sq), dot_means, dot_stds);
        // Direct LB_FNN formula.
        let direct: f64 = (0..d_prime)
            .map(|i| {
                let dm = sp.means[i] - sq.means[i];
                let ds = sp.stds[i] - sq.stds[i];
                l as f64 * (dm * dm + ds * ds)
            })
            .sum();
        assert!((via_g - direct).abs() < 1e-12);
    }

    #[test]
    fn transfer_reduction_matches_fig8() {
        // d = 4096 (Trevi), b = 32: 4096·b → 3·b.
        assert_eq!(conventional_transfer_bits(4096, 32), 4096 * 32);
        assert_eq!(pim_transfer_bits(32), 96);
        let reduction = conventional_transfer_bits(4096, 32) as f64 / pim_transfer_bits(32) as f64;
        assert!(reduction > 1000.0);
    }

    #[test]
    fn all_table2_measures_are_pim_aware() {
        for m in [
            Measure::EuclideanSq,
            Measure::Cosine,
            Measure::Pearson,
            Measure::Hamming,
        ] {
            assert!(is_pim_aware(m));
        }
    }
}

//! Error type for the PIM-acceleration framework.

use std::fmt;

/// Errors raised by the PIM-acceleration layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Forwarded from the vector/quantization layer.
    Similarity(simpim_similarity::SimilarityError),
    /// Forwarded from the ReRAM simulator.
    ReRam(simpim_reram::ReRamError),
    /// The dataset cannot fit the PIM array even at the smallest
    /// compressed dimensionality.
    CannotFit {
        /// Number of vectors that were to be programmed.
        n: usize,
        /// The crossbar budget that was exceeded.
        crossbars: usize,
    },
    /// A query or configuration does not match the prepared function.
    Mismatch {
        /// What mismatched.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Similarity(e) => write!(f, "similarity layer: {e}"),
            Self::ReRam(e) => write!(f, "reram layer: {e}"),
            Self::CannotFit { n, crossbars } => {
                write!(
                    f,
                    "{n} vectors cannot fit a PIM array of {crossbars} crossbars at any s ≥ 1"
                )
            }
            Self::Mismatch { what } => write!(f, "mismatch: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<simpim_similarity::SimilarityError> for CoreError {
    fn from(e: simpim_similarity::SimilarityError) -> Self {
        Self::Similarity(e)
    }
}

impl From<simpim_reram::ReRamError> for CoreError {
    fn from(e: simpim_reram::ReRamError) -> Self {
        Self::ReRam(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = simpim_similarity::SimilarityError::EmptyDimension.into();
        assert!(e.to_string().contains("similarity"));
        let e: CoreError = simpim_reram::ReRamError::NotProgrammed.into();
        assert!(e.to_string().contains("reram"));
        let e = CoreError::CannotFit {
            n: 10,
            crossbars: 1,
        };
        assert!(e.to_string().contains("crossbars"));
    }
}

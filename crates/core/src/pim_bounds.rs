//! PIM-aware bound computation (Section V-B).
//!
//! ReRAM crossbars multiply **non-negative integers**, so a floating-point
//! similarity cannot be computed exactly in-memory. The paper's remedy:
//! normalize to `[0,1]`, scale by α, truncate (Eq. 5–6), and derive bounds
//! whose only online vector operation is an *integer* dot product:
//!
//! * **Theorem 1** — `LB_PIM-ED(p,q) = (Φ(p̄) + Φ(q̄) − 2·⌊p̄⌋·⌊q̄⌋ − 2d)/α²
//!   ≤ ED(p,q)` with `Φ(p̄) = Σ p̄ᵢ² − 2 Σ ⌊p̄ᵢ⌋`.
//! * **Theorem 2** — `LB_PIM-FNN` applies the same floor trick to the
//!   segment-mean and segment-σ vectors of `LB_FNN`.
//! * **Theorem 3** — the quantization error is bounded by
//!   `4d/α + 2d/α²`, so large α makes the bounds tight (the paper uses
//!   α = 10⁶).
//!
//! The analogous *upper* bounds for cosine similarity and PCC (deferred by
//! the paper to its technical report \[36\]) use
//! `p̄ᵢq̄ᵢ ≤ (⌊p̄ᵢ⌋+1)(⌊q̄ᵢ⌋+1)`; Hamming distance needs no bound at all —
//! binary codes are already integers and PIM computes it exactly
//! (Table 4).
//!
//! All bounds here are pure math over quantized summaries; the
//! [`crate::executor`] wires them to actual crossbar batches.

use simpim_similarity::{QuantizedVec, Quantizer, SegmentStats, SimilarityError};

/// Quantized form of one vector for `LB_PIM-ED`: the floors `⌊p̄⌋` (the
/// crossbar operand) and the precomputed scalar `Φ(p̄)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdQuant {
    /// `⌊p̄ᵢ⌋` — programmed on (or streamed to) crossbars.
    pub floors: Vec<u32>,
    /// `Φ(p̄) = Σ p̄ᵢ² − 2 Σ ⌊p̄ᵢ⌋`.
    pub phi: f64,
}

impl EdQuant {
    /// Builds the ED summary from a quantized vector.
    pub fn from_quantized(qv: QuantizedVec) -> Self {
        let phi = qv.stats.sum_sq_scaled - 2.0 * qv.stats.sum_floor as f64;
        Self {
            floors: qv.floors,
            phi,
        }
    }
}

/// Theorem 1: `LB_PIM-ED` from the precomputed Φ's and the PIM dot product
/// of the floor vectors. The result is clamped at 0 (a negative lower
/// bound of a squared distance carries no extra information).
pub fn lb_pim_ed(phi_p: f64, phi_q: f64, dot_floors: u64, d: usize, alpha: f64) -> f64 {
    let raw = (phi_p + phi_q - 2.0 * dot_floors as f64 - 2.0 * d as f64) / (alpha * alpha);
    raw.max(0.0)
}

/// Theorem 3: upper bound on `ED − LB_PIM-ED`, namely `4d/α + 2d/α²`.
pub fn error_bound_ed(d: usize, alpha: f64) -> f64 {
    4.0 * d as f64 / alpha + 2.0 * d as f64 / (alpha * alpha)
}

/// Guard-banded Theorem 1 for non-ideal crossbars (see
/// `simpim-reram::variation`): the analog dot product may deviate from the
/// exact integer value by up to `dot_error`; since `LB_PIM-ED` is
/// decreasing in the dot term, inflating the measured value by the
/// envelope keeps the result a valid lower bound — accuracy is preserved,
/// only pruning power shrinks.
pub fn lb_pim_ed_guarded(
    phi_p: f64,
    phi_q: f64,
    dot_measured: u64,
    d: usize,
    alpha: f64,
    dot_error: f64,
) -> f64 {
    assert!(dot_error >= 0.0, "error envelope must be non-negative");
    let raw = (phi_p + phi_q - 2.0 * (dot_measured as f64 + dot_error) - 2.0 * d as f64)
        / (alpha * alpha);
    raw.max(0.0)
}

/// Quantized form of one vector for `LB_PIM-FNN`: floors of the scaled
/// segment means and segment standard deviations, plus `Φ(p̂)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FnnQuant {
    /// `⌊µ(p̂ᵢ)⌋` over the α-scaled segments — first PIM region.
    pub mu_floors: Vec<u32>,
    /// `⌊σ(p̂ᵢ)⌋` over the α-scaled segments — second PIM region.
    pub sigma_floors: Vec<u32>,
    /// `Φ(p̂) = Σ µ̄ᵢ² + Σ σ̄ᵢ² − 2 Σ ⌊µ̄ᵢ⌋ − 2 Σ ⌊σ̄ᵢ⌋`.
    pub phi: f64,
    /// Segment length `l = d / d′`.
    pub segment_len: usize,
}

impl FnnQuant {
    /// Computes the summary for one **normalized** (values in `[0,1]`)
    /// vector at `d_prime` segments with scaling factor α.
    pub fn compute(
        normalized: &[f64],
        d_prime: usize,
        alpha: f64,
    ) -> Result<Self, SimilarityError> {
        let seg = SegmentStats::compute(normalized, d_prime)?;
        Ok(Self::from_segments(&seg, alpha))
    }

    /// Builds the summary from precomputed segment statistics of a
    /// normalized vector.
    pub fn from_segments(seg: &SegmentStats, alpha: f64) -> Self {
        let d_prime = seg.num_segments();
        let mut mu_floors = Vec::with_capacity(d_prime);
        let mut sigma_floors = Vec::with_capacity(d_prime);
        let mut phi = 0.0;
        let mut floor_sum = 0u64;
        for i in 0..d_prime {
            let mu_bar = seg.means[i] * alpha;
            let sg_bar = seg.stds[i] * alpha;
            let mf = mu_bar as u32;
            let sf = sg_bar as u32;
            phi += mu_bar * mu_bar + sg_bar * sg_bar;
            floor_sum += u64::from(mf) + u64::from(sf);
            mu_floors.push(mf);
            sigma_floors.push(sf);
        }
        phi -= 2.0 * floor_sum as f64;
        Self {
            mu_floors,
            sigma_floors,
            phi,
            segment_len: seg.segment_len,
        }
    }

    /// Number of segments `d′`.
    pub fn d_prime(&self) -> usize {
        self.mu_floors.len()
    }
}

/// Theorem 2: `LB_PIM-FNN` from the precomputed Φ's and the two PIM dot
/// products (floor-mean · floor-mean, floor-σ · floor-σ). Clamped at 0.
pub fn lb_pim_fnn(
    phi_p: f64,
    phi_q: f64,
    dot_mu: u64,
    dot_sigma: u64,
    d_prime: usize,
    segment_len: usize,
    alpha: f64,
) -> f64 {
    let raw = (segment_len as f64 / (alpha * alpha))
        * (phi_p + phi_q - 2.0 * dot_mu as f64 - 2.0 * dot_sigma as f64 - 4.0 * d_prime as f64);
    raw.max(0.0)
}

/// Upper bound on `LB_FNN − LB_PIM-FNN`: each of the `2d′` quantized
/// product terms errs by at most `2(x̄ + ȳ + 1) ≤ 2(2α + 1)`, giving
/// `8d/α + 4d/α²` after the `l/α²` scaling.
pub fn error_bound_fnn(d: usize, alpha: f64) -> f64 {
    8.0 * d as f64 / alpha + 4.0 * d as f64 / (alpha * alpha)
}

/// Guard-banded Theorem 2 for drifted crossbars (see
/// `simpim-reram::faults`): the two measured dot products may each deviate
/// from their exact values by up to `mu_error` / `sigma_error`; since
/// `LB_PIM-FNN` decreases in both dot terms, inflating the measured values
/// by their envelopes keeps the result a valid lower bound.
#[allow(clippy::too_many_arguments)] // mirrors lb_pim_fnn + the two fault envelopes
pub fn lb_pim_fnn_guarded(
    phi_p: f64,
    phi_q: f64,
    dot_mu: u64,
    dot_sigma: u64,
    d_prime: usize,
    segment_len: usize,
    alpha: f64,
    mu_error: f64,
    sigma_error: f64,
) -> f64 {
    assert!(
        mu_error >= 0.0 && sigma_error >= 0.0,
        "error envelopes must be non-negative"
    );
    let raw = (segment_len as f64 / (alpha * alpha))
        * (phi_p + phi_q
            - 2.0 * (dot_mu as f64 + mu_error)
            - 2.0 * (dot_sigma as f64 + sigma_error)
            - 4.0 * d_prime as f64);
    raw.max(0.0)
}

/// Quantized form of one vector for `LB_PIM-SM`: floors of the scaled
/// segment means plus `Φ`. This mean-only sibling of [`FnnQuant`] needs
/// only **one** crossbar region, so it fits budgets where the µ/σ pair
/// cannot — the paper's technical report \[36\] defers it; the derivation is
/// Theorem 1 applied to the segment-mean vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct SmQuant {
    /// `⌊µ(p̂ᵢ)⌋` over the α-scaled segments — the PIM region.
    pub mu_floors: Vec<u32>,
    /// `Φ(p̂) = Σ µ̄ᵢ² − 2 Σ ⌊µ̄ᵢ⌋`.
    pub phi: f64,
    /// Segment length `l = d / d′`.
    pub segment_len: usize,
}

impl SmQuant {
    /// Computes the summary for one normalized vector at `d_prime`
    /// segments with scaling factor α.
    pub fn compute(
        normalized: &[f64],
        d_prime: usize,
        alpha: f64,
    ) -> Result<Self, SimilarityError> {
        let seg = SegmentStats::compute(normalized, d_prime)?;
        let mut mu_floors = Vec::with_capacity(d_prime);
        let mut phi = 0.0;
        let mut floor_sum = 0u64;
        for &m in &seg.means {
            let mu_bar = m * alpha;
            let mf = mu_bar as u32;
            phi += mu_bar * mu_bar;
            floor_sum += u64::from(mf);
            mu_floors.push(mf);
        }
        phi -= 2.0 * floor_sum as f64;
        Ok(Self {
            mu_floors,
            phi,
            segment_len: seg.segment_len,
        })
    }

    /// Number of segments `d′`.
    pub fn d_prime(&self) -> usize {
        self.mu_floors.len()
    }
}

/// `LB_PIM-SM`: Theorem 1 applied to the segment-mean vectors, scaled by
/// the segment length (`LB_PIM-SM ≤ LB_SM ≤ ED`). Clamped at 0.
pub fn lb_pim_sm(
    phi_p: f64,
    phi_q: f64,
    dot_mu: u64,
    d_prime: usize,
    segment_len: usize,
    alpha: f64,
) -> f64 {
    let raw = (segment_len as f64 / (alpha * alpha))
        * (phi_p + phi_q - 2.0 * dot_mu as f64 - 2.0 * d_prime as f64);
    raw.max(0.0)
}

/// Upper bound on `LB_SM − LB_PIM-SM`: `4d/α + 2d/α²` (half the FNN
/// envelope — only the mean terms quantize).
pub fn error_bound_sm(d: usize, alpha: f64) -> f64 {
    4.0 * d as f64 / alpha + 2.0 * d as f64 / (alpha * alpha)
}

/// Guard-banded `LB_PIM-SM` for drifted crossbars: inflates the measured
/// mean dot product by `mu_error` before applying the bound (valid for the
/// same monotonicity reason as [`lb_pim_ed_guarded`]).
pub fn lb_pim_sm_guarded(
    phi_p: f64,
    phi_q: f64,
    dot_mu: u64,
    d_prime: usize,
    segment_len: usize,
    alpha: f64,
    mu_error: f64,
) -> f64 {
    assert!(mu_error >= 0.0, "error envelope must be non-negative");
    let raw = (segment_len as f64 / (alpha * alpha))
        * (phi_p + phi_q - 2.0 * (dot_mu as f64 + mu_error) - 2.0 * d_prime as f64);
    raw.max(0.0)
}

/// Quantized summary for the CS/PCC upper bounds: floors plus the exact
/// scaled norms/sums (computable offline).
#[derive(Debug, Clone, PartialEq)]
pub struct DotQuant {
    /// `⌊p̄ᵢ⌋` — the crossbar operand.
    pub floors: Vec<u32>,
    /// `Σ ⌊p̄ᵢ⌋`.
    pub sum_floor: u64,
    /// `‖p̄‖ = √(Σ p̄ᵢ²)` (exact, scaled).
    pub norm_scaled: f64,
    /// `Σ p̄ᵢ` (exact, scaled).
    pub sum_scaled: f64,
}

impl DotQuant {
    /// Builds the dot-product summary from a quantized vector.
    pub fn from_quantized(qv: QuantizedVec) -> Self {
        Self {
            sum_floor: qv.stats.sum_floor,
            norm_scaled: qv.stats.sum_sq_scaled.max(0.0).sqrt(),
            sum_scaled: qv.stats.sum_scaled,
            floors: qv.floors,
        }
    }
}

/// Upper bound on the scaled dot product `Σ p̄ᵢq̄ᵢ` from the PIM floor dot
/// product: `⌊p̄⌋·⌊q̄⌋ + Σ⌊p̄ᵢ⌋ + Σ⌊q̄ᵢ⌋ + d`.
pub fn ub_scaled_dot(dot_floors: u64, sum_floor_p: u64, sum_floor_q: u64, d: usize) -> f64 {
    (dot_floors + sum_floor_p + sum_floor_q + d as u64) as f64
}

/// Upper bound on cosine similarity (normalization cancels α):
/// `UB_PIM-CS = ub_scaled_dot / (‖p̄‖·‖q̄‖)`, clamped into `[0, 1]`
/// (cosine of non-negative vectors is itself in `[0, 1]`).
pub fn ub_pim_cs(p: &DotQuant, q: &DotQuant, dot_floors: u64, d: usize) -> f64 {
    let denom = p.norm_scaled * q.norm_scaled;
    if denom == 0.0 {
        return 0.0; // zero vector ⇒ similarity defined as 0
    }
    (ub_scaled_dot(dot_floors, p.sum_floor, q.sum_floor, d) / denom).min(1.0)
}

/// Upper bound on the Pearson correlation coefficient (PCC is invariant to
/// the positive scaling by α, so the scaled statistics give the exact
/// denominator):
/// `UB_PIM-PCC = (d·ub_scaled_dot − Σp̄·Σq̄) / (Φa(p̄)·Φa(q̄))`, clamped to
/// ≤ 1.
pub fn ub_pim_pcc(p: &DotQuant, q: &DotQuant, dot_floors: u64, d: usize) -> f64 {
    let phi_a = |x: &DotQuant| {
        (d as f64 * x.norm_scaled * x.norm_scaled - x.sum_scaled * x.sum_scaled)
            .max(0.0)
            .sqrt()
    };
    let denom = phi_a(p) * phi_a(q);
    if denom == 0.0 {
        return 0.0; // constant vector ⇒ PCC defined as 0
    }
    let num = d as f64 * ub_scaled_dot(dot_floors, p.sum_floor, q.sum_floor, d)
        - p.sum_scaled * q.sum_scaled;
    (num / denom).min(1.0)
}

/// Convenience: quantize one normalized vector for the ED bound.
pub fn quantize_for_ed(
    quantizer: &Quantizer,
    normalized: &[f64],
) -> Result<EdQuant, SimilarityError> {
    Ok(EdQuant::from_quantized(quantizer.quantize_vec(normalized)?))
}

/// Convenience: quantize one normalized vector for the CS/PCC bounds.
pub fn quantize_for_dot(
    quantizer: &Quantizer,
    normalized: &[f64],
) -> Result<DotQuant, SimilarityError> {
    Ok(DotQuant::from_quantized(
        quantizer.quantize_vec(normalized)?,
    ))
}

/// Integer dot product of two floor vectors — the operation PIM executes.
/// Used host-side by the planner's offline pruning-ratio measurement
/// ("it is practical to conduct on traditional architectures at offline
/// stage", Section V-D).
pub fn host_floor_dot(p: &[u32], q: &[u32]) -> u64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .map(|(&a, &b)| u64::from(a) * u64::from(b))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simpim_similarity::measures::{cosine, euclidean_sq, pearson};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5157_11ED)
    }

    fn random_unit_vec(rng: &mut StdRng, d: usize) -> Vec<f64> {
        (0..d).map(|_| rng.gen_range(0.0..=1.0)).collect()
    }

    #[test]
    fn theorem1_lower_bounds_ed() {
        let mut rng = rng();
        for &alpha in &[10.0, 100.0, 1e4, 1e6] {
            let quant = Quantizer::identity(alpha).unwrap();
            for _ in 0..50 {
                let d = rng.gen_range(1..64);
                let p = random_unit_vec(&mut rng, d);
                let q = random_unit_vec(&mut rng, d);
                let pq = quantize_for_ed(&quant, &p).unwrap();
                let qq = quantize_for_ed(&quant, &q).unwrap();
                let dot = host_floor_dot(&pq.floors, &qq.floors);
                let lb = lb_pim_ed(pq.phi, qq.phi, dot, d, alpha);
                let ed = euclidean_sq(&p, &q);
                assert!(lb <= ed + 1e-9, "alpha={alpha} d={d}: {lb} > {ed}");
            }
        }
    }

    #[test]
    fn theorem3_error_bound_holds() {
        let mut rng = rng();
        for &alpha in &[10.0, 1000.0, 1e6] {
            let quant = Quantizer::identity(alpha).unwrap();
            for _ in 0..50 {
                let d = rng.gen_range(1..64);
                let p = random_unit_vec(&mut rng, d);
                let q = random_unit_vec(&mut rng, d);
                let pq = quantize_for_ed(&quant, &p).unwrap();
                let qq = quantize_for_ed(&quant, &q).unwrap();
                let dot = host_floor_dot(&pq.floors, &qq.floors);
                let lb = lb_pim_ed(pq.phi, qq.phi, dot, d, alpha);
                let ed = euclidean_sq(&p, &q);
                assert!(ed - lb <= error_bound_ed(d, alpha) + 1e-9);
            }
        }
    }

    #[test]
    fn large_alpha_tightens_the_bound() {
        let p: Vec<f64> = (0..32).map(|i| (i as f64) / 31.0).collect();
        let q: Vec<f64> = (0..32).map(|i| ((31 - i) as f64) / 31.0).collect();
        let ed = euclidean_sq(&p, &q);
        let mut prev_gap = f64::INFINITY;
        for &alpha in &[10.0, 100.0, 1000.0, 1e5] {
            let quant = Quantizer::identity(alpha).unwrap();
            let pq = quantize_for_ed(&quant, &p).unwrap();
            let qq = quantize_for_ed(&quant, &q).unwrap();
            let dot = host_floor_dot(&pq.floors, &qq.floors);
            let gap = ed - lb_pim_ed(pq.phi, qq.phi, dot, 32, alpha);
            assert!(gap <= prev_gap + 1e-9, "gap must shrink with alpha");
            prev_gap = gap;
        }
        assert!(prev_gap < 0.01);
    }

    #[test]
    fn fig9_worked_example() {
        // Fig. 9: p = [.5532, .9742, .7375, .6557], q = [.9259, .6644,
        // .8077, .8613], α = 1000 → LB ≈ 0.273 < ED ≈ 0.282.
        let p = [0.5532, 0.9742, 0.7375, 0.6557];
        let q = [0.9259, 0.6644, 0.8077, 0.8613];
        let quant = Quantizer::identity(1000.0).unwrap();
        let pq = quantize_for_ed(&quant, &p).unwrap();
        let qq = quantize_for_ed(&quant, &q).unwrap();
        assert_eq!(pq.floors, vec![553, 974, 737, 655]);
        assert_eq!(qq.floors, vec![925, 664, 807, 861]);
        let dot = host_floor_dot(&pq.floors, &qq.floors);
        let lb = lb_pim_ed(pq.phi, qq.phi, dot, 4, 1000.0);
        let ed = euclidean_sq(&p, &q);
        assert!((ed - 0.2819).abs() < 1e-3);
        assert!(lb < ed);
        assert!((lb - 0.273).abs() < 5e-3, "lb={lb}");
    }

    #[test]
    fn theorem2_chain_pim_fnn_le_fnn_le_ed() {
        let mut rng = rng();
        for &alpha in &[100.0, 1e4, 1e6] {
            for _ in 0..40 {
                let d_prime = rng.gen_range(1..8usize);
                let l = rng.gen_range(1..6usize);
                let d = d_prime * l;
                let p = random_unit_vec(&mut rng, d);
                let q = random_unit_vec(&mut rng, d);
                let fp = FnnQuant::compute(&p, d_prime, alpha).unwrap();
                let fq = FnnQuant::compute(&q, d_prime, alpha).unwrap();
                let dm = host_floor_dot(&fp.mu_floors, &fq.mu_floors);
                let ds = host_floor_dot(&fp.sigma_floors, &fq.sigma_floors);
                let lb_pim = lb_pim_fnn(fp.phi, fq.phi, dm, ds, d_prime, l, alpha);

                // Exact LB_FNN on the same data.
                let sp = SegmentStats::compute(&p, d_prime).unwrap();
                let sq = SegmentStats::compute(&q, d_prime).unwrap();
                let lb_fnn: f64 = (0..d_prime)
                    .map(|i| {
                        let dmv = sp.means[i] - sq.means[i];
                        let dsv = sp.stds[i] - sq.stds[i];
                        l as f64 * (dmv * dmv + dsv * dsv)
                    })
                    .sum();
                let ed = euclidean_sq(&p, &q);
                assert!(lb_pim <= lb_fnn + 1e-9, "PIM-FNN must lower-bound FNN");
                assert!(lb_fnn <= ed + 1e-9, "FNN must lower-bound ED");
                assert!(lb_fnn - lb_pim <= error_bound_fnn(d, alpha) + 1e-9);
            }
        }
    }

    #[test]
    fn sm_chain_pim_sm_le_sm_le_ed() {
        let mut rng = rng();
        for &alpha in &[100.0, 1e4, 1e6] {
            for _ in 0..40 {
                let d_prime = rng.gen_range(1..8usize);
                let l = rng.gen_range(1..6usize);
                let d = d_prime * l;
                let p = random_unit_vec(&mut rng, d);
                let q = random_unit_vec(&mut rng, d);
                let sp = SmQuant::compute(&p, d_prime, alpha).unwrap();
                let sq = SmQuant::compute(&q, d_prime, alpha).unwrap();
                let dot = host_floor_dot(&sp.mu_floors, &sq.mu_floors);
                let lb_pim = lb_pim_sm(sp.phi, sq.phi, dot, d_prime, l, alpha);

                let segp = SegmentStats::compute(&p, d_prime).unwrap();
                let segq = SegmentStats::compute(&q, d_prime).unwrap();
                let lb_sm: f64 = (0..d_prime)
                    .map(|i| {
                        let dm = segp.means[i] - segq.means[i];
                        l as f64 * dm * dm
                    })
                    .sum();
                assert!(lb_pim <= lb_sm + 1e-9, "PIM-SM must lower-bound SM");
                assert!(lb_sm <= euclidean_sq(&p, &q) + 1e-9);
                assert!(lb_sm - lb_pim <= error_bound_sm(d, alpha) + 1e-9);
            }
        }
    }

    #[test]
    fn sm_is_weaker_than_fnn_at_same_segmentation() {
        let quantizer_alpha = 1e6;
        let p: Vec<f64> = (0..16).map(|i| (i % 4) as f64 / 4.0).collect();
        let q = vec![0.375; 16]; // same segment means as p, different spread
        let sp = SmQuant::compute(&p, 4, quantizer_alpha).unwrap();
        let sq = SmQuant::compute(&q, 4, quantizer_alpha).unwrap();
        let sm = lb_pim_sm(
            sp.phi,
            sq.phi,
            host_floor_dot(&sp.mu_floors, &sq.mu_floors),
            4,
            4,
            quantizer_alpha,
        );
        let fp = FnnQuant::compute(&p, 4, quantizer_alpha).unwrap();
        let fq = FnnQuant::compute(&q, 4, quantizer_alpha).unwrap();
        let fnn = lb_pim_fnn(
            fp.phi,
            fq.phi,
            host_floor_dot(&fp.mu_floors, &fq.mu_floors),
            host_floor_dot(&fp.sigma_floors, &fq.sigma_floors),
            4,
            4,
            quantizer_alpha,
        );
        assert!(sm < 1e-6, "mean-only bound is blind to spread: {sm}");
        assert!(fnn > 0.1, "σ term sees the spread: {fnn}");
    }

    #[test]
    fn cs_and_pcc_upper_bounds_hold() {
        let mut rng = rng();
        for &alpha in &[100.0, 1e4, 1e6] {
            let quant = Quantizer::identity(alpha).unwrap();
            for _ in 0..50 {
                let d = rng.gen_range(2..48usize);
                let p = random_unit_vec(&mut rng, d);
                let q = random_unit_vec(&mut rng, d);
                let pq = quantize_for_dot(&quant, &p).unwrap();
                let qq = quantize_for_dot(&quant, &q).unwrap();
                let dot = host_floor_dot(&pq.floors, &qq.floors);
                let ub_cs = ub_pim_cs(&pq, &qq, dot, d);
                let ub_pcc = ub_pim_pcc(&pq, &qq, dot, d);
                assert!(ub_cs >= cosine(&p, &q) - 1e-9, "CS d={d}");
                assert!(ub_pcc >= pearson(&p, &q) - 1e-9, "PCC d={d}");
                assert!(ub_cs <= 1.0 + 1e-12);
                assert!(ub_pcc <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_vectors_are_safe() {
        let quant = Quantizer::identity(1000.0).unwrap();
        let zero = [0.0, 0.0, 0.0];
        let constant = [0.5, 0.5, 0.5];
        let zq = quantize_for_dot(&quant, &zero).unwrap();
        let cq = quantize_for_dot(&quant, &constant).unwrap();
        let dot = host_floor_dot(&zq.floors, &cq.floors);
        assert_eq!(ub_pim_cs(&zq, &cq, dot, 3), 0.0);
        assert_eq!(
            ub_pim_pcc(&cq, &cq, host_floor_dot(&cq.floors, &cq.floors), 3),
            0.0
        );
    }

    #[test]
    fn lb_clamps_negative_to_zero() {
        // Identical vectors: the raw Theorem 1 expression dips below zero
        // (−2d term); the clamp keeps it a valid LB of ED = 0.
        let quant = Quantizer::identity(1000.0).unwrap();
        let p = [0.25, 0.75];
        let pq = quantize_for_ed(&quant, &p).unwrap();
        let dot = host_floor_dot(&pq.floors, &pq.floors);
        let lb = lb_pim_ed(pq.phi, pq.phi, dot, 2, 1000.0);
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn guarded_bound_survives_analog_variation() {
        use simpim_reram::{Crossbar, CrossbarConfig, VariationModel};
        // Quantize two vectors, run the floor dot product through a noisy
        // crossbar, and check the guard-banded Theorem 1 is still a valid
        // lower bound of the exact distance for every noise seed.
        let alpha = 100.0; // small α keeps operands within a tiny crossbar
        let quant = Quantizer::identity(alpha).unwrap();
        let p = [0.31, 0.87, 0.52, 0.09];
        let q = [0.66, 0.14, 0.93, 0.41];
        let pq = quantize_for_ed(&quant, &p).unwrap();
        let qq = quantize_for_ed(&quant, &q).unwrap();
        let ed = euclidean_sq(&p, &q);

        let cfg = CrossbarConfig {
            size: 4,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 12,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        let col: Vec<u64> = pq.floors.iter().map(|&v| u64::from(v)).collect();
        xb.program_operand_column(0, 0, &col, 7).unwrap();
        let query: Vec<u64> = qq.floors.iter().map(|&v| u64::from(v)).collect();
        let exact_dot = host_floor_dot(&pq.floors, &qq.floors);

        for seed in 0..25 {
            let v = VariationModel::new(0.05, seed);
            let noisy = xb.dot_products_noisy(0, &query, 7, 7, &v).unwrap()[0] as u64;
            let envelope = v.dot_error_bound(u128::from(exact_dot), xb.rounding_error_bound(7, 7));
            let guarded = lb_pim_ed_guarded(pq.phi, qq.phi, noisy, 4, alpha, envelope);
            assert!(
                guarded <= ed + 1e-9,
                "seed={seed}: guarded {guarded} > ED {ed}"
            );
            // Without the guard band a noisy-low dot can overshoot ED —
            // the naive bound is NOT safe under variation.
            let naive = lb_pim_ed(pq.phi, qq.phi, noisy, 4, alpha);
            let _ = naive; // value depends on the seed; correctness only holds guarded
        }
    }

    #[test]
    fn guarded_fnn_and_sm_stay_valid_under_dot_error() {
        let mut rng = rng();
        let alpha = 1e4;
        for _ in 0..40 {
            let d_prime = rng.gen_range(1..8usize);
            let l = rng.gen_range(1..6usize);
            let d = d_prime * l;
            let p = random_unit_vec(&mut rng, d);
            let q = random_unit_vec(&mut rng, d);
            let ed = euclidean_sq(&p, &q);

            let fp = FnnQuant::compute(&p, d_prime, alpha).unwrap();
            let fq = FnnQuant::compute(&q, d_prime, alpha).unwrap();
            let dm = host_floor_dot(&fp.mu_floors, &fq.mu_floors);
            let ds = host_floor_dot(&fp.sigma_floors, &fq.sigma_floors);
            let sp = SmQuant::compute(&p, d_prime, alpha).unwrap();
            let sq = SmQuant::compute(&q, d_prime, alpha).unwrap();
            let dsm = host_floor_dot(&sp.mu_floors, &sq.mu_floors);

            // Any drift that shrinks the measured dot within the envelope
            // must leave the guarded bound below the exact distance.
            for err in [0u64, 3, 17, 101] {
                let drift_mu = dm.saturating_sub(err);
                let drift_sigma = ds.saturating_sub(err);
                let g = lb_pim_fnn_guarded(
                    fp.phi,
                    fq.phi,
                    drift_mu,
                    drift_sigma,
                    d_prime,
                    l,
                    alpha,
                    err as f64,
                    err as f64,
                );
                assert!(g <= ed + 1e-9, "FNN guarded {g} > ED {ed} (err={err})");

                let gs = lb_pim_sm_guarded(
                    sp.phi,
                    sq.phi,
                    dsm.saturating_sub(err),
                    d_prime,
                    l,
                    alpha,
                    err as f64,
                );
                assert!(gs <= ed + 1e-9, "SM guarded {gs} > ED {ed} (err={err})");
            }
            // Zero envelope reduces to the plain bounds.
            assert_eq!(
                lb_pim_fnn_guarded(fp.phi, fq.phi, dm, ds, d_prime, l, alpha, 0.0, 0.0),
                lb_pim_fnn(fp.phi, fq.phi, dm, ds, d_prime, l, alpha)
            );
            assert_eq!(
                lb_pim_sm_guarded(sp.phi, sq.phi, dsm, d_prime, l, alpha, 0.0),
                lb_pim_sm(sp.phi, sq.phi, dsm, d_prime, l, alpha)
            );
        }
    }

    #[test]
    fn error_bounds_are_monotone_in_alpha() {
        assert!(error_bound_ed(100, 1e6) < error_bound_ed(100, 1e3));
        assert!(error_bound_fnn(100, 1e6) < error_bound_fnn(100, 1e3));
        // Paper's setting: α = 1e6, d = 420 (MSD) → error < 0.002.
        assert!(error_bound_ed(420, 1e6) < 2e-3);
    }
}

//! Host-side [`BoundStage`] adapters for the PIM-aware bounds.
//!
//! Section V-D notes that although a PIM-aware bound executes on PIM
//! online, "it is practical to conduct on traditional architectures at
//! offline stage for purpose of measuring the pruning ratio". These
//! adapters evaluate `LB_PIM-ED` / `LB_PIM-FNN` on the host with exactly
//! the same quantized integers a crossbar would see (the executor's batch
//! path is bit-identical), so the planner can measure ratios and compose
//! plans mixing classic and PIM-aware bounds.
//!
//! Their `transfer_bytes_per_object` reports the **online** PIM cost — the
//! Φ scalar plus the dot results the host reads to evaluate `G` — because
//! that is the cost Eq. 13 must charge the bound with.

use crate::pim_bounds::{host_floor_dot, lb_pim_ed, lb_pim_fnn, EdQuant, FnnQuant};
use simpim_bounds::{BoundDirection, BoundStage, EvalCost, PreparedBound};
use simpim_similarity::{NormalizedDataset, Quantizer, SimilarityError};

/// Host-side `LB_PIM-ED` (Theorem 1) over full-dimensional floors.
#[derive(Debug, Clone)]
pub struct PimEdStage {
    floors: Vec<u32>,
    phis: Vec<f64>,
    d: usize,
    alpha: f64,
    quantizer: Quantizer,
}

impl PimEdStage {
    /// Quantizes a normalized dataset for host-side `LB_PIM-ED`.
    pub fn build(data: &NormalizedDataset, alpha: f64) -> Result<Self, SimilarityError> {
        let ds = data.dataset();
        let quantizer = Quantizer::identity(alpha)?;
        let mut floors = Vec::with_capacity(ds.len() * ds.dim());
        let mut phis = Vec::with_capacity(ds.len());
        for row in ds.rows() {
            let eq = EdQuant::from_quantized(quantizer.quantize_vec(row)?);
            floors.extend_from_slice(&eq.floors);
            phis.push(eq.phi);
        }
        Ok(Self {
            floors,
            phis,
            d: ds.dim(),
            alpha,
            quantizer,
        })
    }
}

impl BoundStage for PimEdStage {
    fn name(&self) -> String {
        "LB_PIM-ED".to_string()
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::LowerBoundsDistance
    }

    fn d_prime(&self) -> usize {
        self.d
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        16 // Φ(p̄) + the PIM dot result
    }

    fn eval_cost(&self) -> EvalCost {
        // G is O(1): a handful of adds/mults once the dot arrives.
        EvalCost {
            arith: 4,
            mul: 2,
            div: 0,
            sqrt: 0,
            bytes: 16,
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q = EdQuant::from_quantized(
            self.quantizer
                .quantize_vec(query)
                .expect("normalized query"),
        );
        Box::new(PimEdPrepared { stage: self, q })
    }
}

struct PimEdPrepared<'a> {
    stage: &'a PimEdStage,
    q: EdQuant,
}

impl PreparedBound for PimEdPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let d = self.stage.d;
        let row = &self.stage.floors[i * d..(i + 1) * d];
        let dot = host_floor_dot(row, &self.q.floors);
        lb_pim_ed(self.stage.phis[i], self.q.phi, dot, d, self.stage.alpha)
    }
}

/// Host-side `LB_PIM-FNN^s` (Theorem 2) over quantized segment statistics.
#[derive(Debug, Clone)]
pub struct PimFnnStage {
    mu_floors: Vec<u32>,
    sigma_floors: Vec<u32>,
    phis: Vec<f64>,
    d_prime: usize,
    segment_len: usize,
    d: usize,
    alpha: f64,
}

impl PimFnnStage {
    /// Quantizes segment statistics of a normalized dataset at `d_prime`
    /// segments.
    pub fn build(
        data: &NormalizedDataset,
        d_prime: usize,
        alpha: f64,
    ) -> Result<Self, SimilarityError> {
        let ds = data.dataset();
        let mut mu_floors = Vec::with_capacity(ds.len() * d_prime);
        let mut sigma_floors = Vec::with_capacity(ds.len() * d_prime);
        let mut phis = Vec::with_capacity(ds.len());
        let mut segment_len = 0;
        for row in ds.rows() {
            let fq = FnnQuant::compute(row, d_prime, alpha)?;
            segment_len = fq.segment_len;
            mu_floors.extend_from_slice(&fq.mu_floors);
            sigma_floors.extend_from_slice(&fq.sigma_floors);
            phis.push(fq.phi);
        }
        Ok(Self {
            mu_floors,
            sigma_floors,
            phis,
            d_prime,
            segment_len,
            d: ds.dim(),
            alpha,
        })
    }
}

impl BoundStage for PimFnnStage {
    fn name(&self) -> String {
        format!("LB_PIM-FNN^{}", self.d_prime)
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::LowerBoundsDistance
    }

    fn d_prime(&self) -> usize {
        self.d_prime
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        24 // Φ(p̂) + two PIM dot results
    }

    fn eval_cost(&self) -> EvalCost {
        EvalCost {
            arith: 6,
            mul: 3,
            div: 0,
            sqrt: 0,
            bytes: 24,
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q = FnnQuant::compute(query, self.d_prime, self.alpha).expect("normalized query");
        Box::new(PimFnnPrepared { stage: self, q })
    }
}

struct PimFnnPrepared<'a> {
    stage: &'a PimFnnStage,
    q: FnnQuant,
}

impl PreparedBound for PimFnnPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let dp = self.stage.d_prime;
        let mu = &self.stage.mu_floors[i * dp..(i + 1) * dp];
        let sg = &self.stage.sigma_floors[i * dp..(i + 1) * dp];
        let dot_mu = host_floor_dot(mu, &self.q.mu_floors);
        let dot_sg = host_floor_dot(sg, &self.q.sigma_floors);
        lb_pim_fnn(
            self.stage.phis[i],
            self.q.phi,
            dot_mu,
            dot_sg,
            dp,
            self.stage.segment_len,
            self.stage.alpha,
        )
    }
}

/// Host-side `LB_PIM-SM^s`: the mean-only sibling of [`PimFnnStage`]
/// (one region online, `2·b + b` bits of host traffic per object).
#[derive(Debug, Clone)]
pub struct PimSmStage {
    mu_floors: Vec<u32>,
    phis: Vec<f64>,
    d_prime: usize,
    segment_len: usize,
    d: usize,
    alpha: f64,
}

impl PimSmStage {
    /// Quantizes segment means of a normalized dataset at `d_prime`
    /// segments.
    pub fn build(
        data: &NormalizedDataset,
        d_prime: usize,
        alpha: f64,
    ) -> Result<Self, SimilarityError> {
        let ds = data.dataset();
        let mut mu_floors = Vec::with_capacity(ds.len() * d_prime);
        let mut phis = Vec::with_capacity(ds.len());
        let mut segment_len = 0;
        for row in ds.rows() {
            let sq = crate::pim_bounds::SmQuant::compute(row, d_prime, alpha)?;
            segment_len = sq.segment_len;
            mu_floors.extend_from_slice(&sq.mu_floors);
            phis.push(sq.phi);
        }
        Ok(Self {
            mu_floors,
            phis,
            d_prime,
            segment_len,
            d: ds.dim(),
            alpha,
        })
    }
}

impl BoundStage for PimSmStage {
    fn name(&self) -> String {
        format!("LB_PIM-SM^{}", self.d_prime)
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::LowerBoundsDistance
    }

    fn d_prime(&self) -> usize {
        self.d_prime
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        16 // Φ(p̂) + one PIM dot result
    }

    fn eval_cost(&self) -> EvalCost {
        EvalCost {
            arith: 4,
            mul: 2,
            div: 0,
            sqrt: 0,
            bytes: 16,
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q = crate::pim_bounds::SmQuant::compute(query, self.d_prime, self.alpha)
            .expect("normalized query");
        Box::new(PimSmPrepared { stage: self, q })
    }
}

struct PimSmPrepared<'a> {
    stage: &'a PimSmStage,
    q: crate::pim_bounds::SmQuant,
}

impl PreparedBound for PimSmPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let dp = self.stage.d_prime;
        let mu = &self.stage.mu_floors[i * dp..(i + 1) * dp];
        crate::pim_bounds::lb_pim_sm(
            self.stage.phis[i],
            self.q.phi,
            host_floor_dot(mu, &self.q.mu_floors),
            dp,
            self.stage.segment_len,
            self.stage.alpha,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::measures::euclidean_sq;
    use simpim_similarity::Dataset;

    fn data() -> NormalizedDataset {
        NormalizedDataset::assert_normalized(
            Dataset::from_rows(&[
                vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
                vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
                vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4],
            ])
            .unwrap(),
        )
    }

    #[test]
    fn host_ed_stage_lower_bounds() {
        let d = data();
        let stage = PimEdStage::build(&d, 1e4).unwrap();
        assert_eq!(stage.name(), "LB_PIM-ED");
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let prep = stage.prepare(&q);
        for i in 0..3 {
            let lb = prep.bound(i);
            let ed = euclidean_sq(d.dataset().row(i), &q);
            assert!(lb <= ed + 1e-9);
            assert!(ed - lb < 0.01, "tight at alpha 1e4");
        }
    }

    #[test]
    fn host_fnn_stage_lower_bounds_and_matches_executor_semantics() {
        let d = data();
        let stage = PimFnnStage::build(&d, 4, 1e4).unwrap();
        assert_eq!(stage.name(), "LB_PIM-FNN^4");
        assert_eq!(stage.transfer_bytes_per_object(), 24);
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let prep = stage.prepare(&q);
        for i in 0..3 {
            assert!(prep.bound(i) <= euclidean_sq(d.dataset().row(i), &q) + 1e-9);
        }
    }

    #[test]
    fn host_sm_stage_lower_bounds_and_matches_executor() {
        use crate::executor::{ExecutorConfig, PimExecutor};
        use simpim_reram::{CrossbarConfig, PimConfig};
        let d = data();
        let alpha = 1000.0;
        let stage = PimSmStage::build(&d, 4, alpha).unwrap();
        assert_eq!(stage.name(), "LB_PIM-SM^4");
        assert_eq!(stage.transfer_bytes_per_object(), 16);
        let cfg = ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 16,
                    adc_bits: 10,
                    ..Default::default()
                },
                num_crossbars: 4096,
                ..Default::default()
            },
            alpha,
            operand_bits: 16,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        };
        let mut exec = PimExecutor::prepare_sm(cfg, &d, 4).unwrap();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        let prep = stage.prepare(&q);
        for i in 0..3 {
            assert!(prep.bound(i) <= euclidean_sq(d.dataset().row(i), &q) + 1e-9);
            assert!((batch.values[i] - prep.bound(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn host_stage_agrees_with_executor_batch() {
        use crate::executor::{ExecutorConfig, PimExecutor};
        use simpim_reram::{CrossbarConfig, PimConfig};
        let d = data();
        let alpha = 1000.0;
        let stage = PimFnnStage::build(&d, 4, alpha).unwrap();
        let cfg = ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 16,
                    adc_bits: 10,
                    ..Default::default()
                },
                num_crossbars: 4096,
                ..Default::default()
            },
            alpha,
            operand_bits: 16,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        };
        let mut exec = PimExecutor::prepare_fnn(cfg, &d, 4).unwrap();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        let prep = stage.prepare(&q);
        for i in 0..3 {
            assert!(
                (batch.values[i] - prep.bound(i)).abs() < 1e-9,
                "host-side stage and PIM batch must agree bit-for-bit"
            );
        }
    }
}

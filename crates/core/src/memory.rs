//! PIM memory management (Section V-C, Theorem 4).
//!
//! The PIM array holds only `C` crossbars (2 GB by default) while datasets
//! are larger, and ReRAM's limited write endurance rules out re-programming
//! crossbars per batch. The paper's answer: compress each vector to the
//! **largest** dimensionality `s` whose crossbar cost fits the budget:
//!
//! ```text
//! maximize s   subject to   n_data ≤ C                (s ≤ m)
//!                           n_data + n_gather ≤ C     (s > m)
//! ```
//!
//! with `n_data`/`n_gather` as in `simpim-reram::gather` (Eq. 12).
//! Compression uses the segment statistics of Fig. 10, so `s` must divide
//! the original dimensionality for the segmented bounds to apply.

use crate::error::CoreError;
use simpim_reram::gather::dataset_crossbar_cost;
use simpim_reram::{CrossbarCost, PimConfig};

/// Outcome of Theorem 4's optimization.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemoryPlan {
    /// Chosen compressed dimensionality `s` (per region).
    pub s: usize,
    /// `true` when `s = d` — the dataset fits uncompressed.
    pub uncompressed: bool,
    /// Crossbar cost of **one** region at dimensionality `s`.
    pub cost_per_region: CrossbarCost,
    /// Number of regions programmed per object (1 for `LB_PIM-ED` floors,
    /// 2 for `LB_PIM-FNN`'s µ/σ pair, 2 for HD's code/complement pair).
    pub regions: usize,
}

impl MemoryPlan {
    /// Total crossbars consumed by all regions.
    pub fn total_crossbars(&self) -> usize {
        self.cost_per_region.total() * self.regions
    }
}

/// Divisors of `d` in increasing order.
fn divisors(d: usize) -> Vec<usize> {
    let mut divs = Vec::new();
    let mut i = 1usize;
    while i * i <= d {
        if d.is_multiple_of(i) {
            divs.push(i);
            if i != d / i {
                divs.push(d / i);
            }
        }
        i += 1;
    }
    divs.sort_unstable();
    divs
}

/// Theorem 4: choose the maximum `s` (a divisor of `d`, so segment
/// compression is well-defined) such that `regions` programmed copies of an
/// `n × s` matrix with `operand_bits`-wide operands fit `cfg.num_crossbars`.
///
/// Returns [`CoreError::CannotFit`] when even `s = 1` exceeds the budget.
pub fn choose_dimensionality(
    n: usize,
    d: usize,
    regions: usize,
    operand_bits: u32,
    cfg: &PimConfig,
) -> Result<MemoryPlan, CoreError> {
    assert!(regions > 0, "at least one region required");
    let budget = cfg.num_crossbars;
    let mut best: Option<MemoryPlan> = None;
    for s in divisors(d) {
        let cost = dataset_crossbar_cost(n, s, operand_bits, &cfg.crossbar)?;
        if cost.total() * regions <= budget {
            best = Some(MemoryPlan {
                s,
                uncompressed: s == d,
                cost_per_region: cost,
                regions,
            });
        } else {
            // Costs are monotone in s: once a divisor overflows, all
            // larger ones do too.
            break;
        }
    }
    best.ok_or(CoreError::CannotFit {
        n,
        crossbars: budget,
    })
}

/// Which prepared-function shape a resident euclidean plan resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidentShapeChoice {
    /// The dataset fits uncompressed: `LB_PIM-ED` over one floors region.
    Uncompressed,
    /// Compressed with room for the µ/σ pair: `LB_PIM-FNN` (two regions).
    MuSigma,
    /// So tight even the pair at `s = 1` overflows: mean-only `LB_PIM-SM`.
    MeanOnly,
}

/// The executor's resident-euclidean plan dispatch, shared by one-shot
/// preparation, the streamed [`crate::executor::ResidentBuilder`], and
/// the fleet placement planner so all three always agree on the shape a
/// given `(capacity, d, budget)` resolves to: uncompressed `LB_PIM-ED`
/// when it fits, else the two-region `LB_PIM-FNN` pair, else mean-only
/// `LB_PIM-SM` on the single-region plan.
pub fn resident_plan(
    capacity: usize,
    d: usize,
    buffer_factor: usize,
    operand_bits: u32,
    cfg: &PimConfig,
) -> Result<(MemoryPlan, ResidentShapeChoice), CoreError> {
    let plan = choose_dimensionality(capacity, d, buffer_factor, operand_bits, cfg)?;
    if plan.uncompressed {
        return Ok((plan, ResidentShapeChoice::Uncompressed));
    }
    match choose_dimensionality(capacity, d, 2 * buffer_factor, operand_bits, cfg) {
        Ok(pair) => Ok((pair, ResidentShapeChoice::MuSigma)),
        Err(CoreError::CannotFit { .. }) => Ok((plan, ResidentShapeChoice::MeanOnly)),
        Err(e) => Err(e),
    }
}

/// Compresses a normalized vector to `s` dimensions by segment means
/// (Fig. 10's reduction, used when a plain floor-vector region must
/// shrink). `s` must divide `vector.len()`.
pub fn compress_by_segment_means(vector: &[f64], s: usize) -> Vec<f64> {
    assert!(s > 0 && vector.len().is_multiple_of(s), "s must divide d");
    let l = vector.len() / s;
    vector
        .chunks_exact(l)
        .map(|seg| seg.iter().sum::<f64>() / l as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_reram::CrossbarConfig;

    fn cfg(crossbars: usize) -> PimConfig {
        PimConfig {
            num_crossbars: crossbars,
            ..Default::default()
        }
    }

    #[test]
    fn full_dimensionality_when_budget_allows() {
        // 1000 × 420 × 20-bit on the default 131072-crossbar array: tiny.
        let plan = choose_dimensionality(1000, 420, 1, 20, &cfg(131_072)).unwrap();
        assert_eq!(plan.s, 420);
        assert!(plan.uncompressed);
    }

    #[test]
    fn compression_kicks_in_under_pressure() {
        // Shrink the budget until 420 dims no longer fit.
        let full = choose_dimensionality(100_000, 420, 1, 20, &cfg(131_072)).unwrap();
        assert_eq!(full.s, 420);
        let squeezed = choose_dimensionality(100_000, 420, 1, 20, &cfg(2_000)).unwrap();
        assert!(squeezed.s < 420);
        assert!(!squeezed.uncompressed);
        assert!(420 % squeezed.s == 0, "s must divide d");
        assert!(squeezed.total_crossbars() <= 2_000);
        // Maximality: the next larger divisor must overflow.
        let next = divisors(420).into_iter().find(|&x| x > squeezed.s).unwrap();
        let next_cost = dataset_crossbar_cost(100_000, next, 20, &cfg(2_000).crossbar).unwrap();
        assert!(next_cost.total() > 2_000);
    }

    #[test]
    fn regions_multiply_the_footprint() {
        let one = choose_dimensionality(100_000, 420, 1, 20, &cfg(3_000)).unwrap();
        let two = choose_dimensionality(100_000, 420, 2, 20, &cfg(3_000)).unwrap();
        assert!(two.s <= one.s);
        assert!(two.total_crossbars() <= 3_000);
        assert_eq!(two.regions, 2);
    }

    #[test]
    fn cannot_fit_is_reported() {
        let err = choose_dimensionality(10_000_000, 420, 2, 32, &cfg(1)).unwrap_err();
        assert!(matches!(err, CoreError::CannotFit { .. }));
    }

    #[test]
    fn paper_msd_setting_gives_s_105() {
        // MSD: N = 992 272, d = 420, 32-bit operands ("32-bit integers on
        // crossbars", Section VI-B), LB_PIM-FNN's µ/σ pair double-buffered
        // → 4 programmed copies on the 2 GB / 131 072-crossbar array.
        // Theorem 4 then reproduces the paper's reported s = 105 = d/4.
        let plan = choose_dimensionality(992_272, 420, 4, 32, &cfg(131_072)).unwrap();
        assert_eq!(plan.s, 105, "expected the paper's s = 105 for MSD");
    }

    #[test]
    fn paper_imagenet_setting_gives_s_50() {
        // ImageNet: N = 2 340 173, d = 150, same configuration → the
        // paper's reported s = 50 = d/3.
        let plan = choose_dimensionality(2_340_173, 150, 4, 32, &cfg(131_072)).unwrap();
        assert_eq!(plan.s, 50, "expected the paper's s = 50 for ImageNet");
    }

    #[test]
    fn divisors_are_sorted_and_complete() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(7), vec![1, 7]);
    }

    #[test]
    fn segment_mean_compression() {
        let v = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        assert_eq!(compress_by_segment_means(&v, 3), vec![2.0, 6.0, 10.0]);
        assert_eq!(compress_by_segment_means(&v, 6), v.to_vec());
        assert_eq!(compress_by_segment_means(&v, 1), vec![6.0]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn compression_requires_divisibility() {
        compress_by_segment_means(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn non_default_crossbar_geometry() {
        let mut c = cfg(4_096);
        c.crossbar = CrossbarConfig {
            size: 128,
            ..Default::default()
        };
        let plan = choose_dimensionality(50_000, 960, 2, 20, &c).unwrap();
        assert!(plan.s >= 1);
        assert!(plan.total_crossbars() <= 4_096);
    }
}

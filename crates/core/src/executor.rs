//! The PIM executor: Fig. 9's offline/online pipeline.
//!
//! **Offline**: normalize + α-quantize the dataset, compute the Φ scalars,
//! choose the compressed dimensionality `s` (Theorem 4), program the floor
//! vectors onto PIM-array regions and stage the Φ table in the memory
//! array.
//!
//! **Online**: a query arrives → quantize it once (`Φ(q̄)`, `⌊q̄⌋`) → issue
//! one dot-product batch per region → combine with `G` on the host. The
//! host reads only the Φ scalar and the dot result(s) per object —
//! `3·b` bits instead of `d·b` (Fig. 8).
//!
//! Four prepared-function shapes cover the paper's workloads:
//!
//! | shape | regions | bound produced |
//! |---|---|---|
//! | `Ed` | `⌊p̄⌋` | `LB_PIM-ED` (Theorem 1), when the dataset fits at `s = d` |
//! | `Fnn` | `⌊µ(p̂)⌋`, `⌊σ(p̂)⌋` | `LB_PIM-FNN^s` (Theorem 2) |
//! | `Dot` | `⌊p̄⌋` | `UB_PIM-CS` / `UB_PIM-PCC` |
//! | `Hamming` | code, complement | exact HD (Table 4) |

use crate::error::CoreError;
use crate::memory::{choose_dimensionality, resident_plan, MemoryPlan, ResidentShapeChoice};
use crate::pim_bounds::{
    host_floor_dot, lb_pim_ed, lb_pim_ed_guarded, lb_pim_fnn, lb_pim_fnn_guarded, lb_pim_sm,
    lb_pim_sm_guarded, ub_pim_cs, ub_pim_pcc, DotQuant, EdQuant, FnnQuant,
};
use simpim_reram::array::RegionId;
use simpim_reram::{
    AccWidth, CrossbarHealth, DotBatchResult, FaultConfig, PimConfig, PimTiming, ReRamBank,
};
use simpim_similarity::{BinaryDataset, BinaryVecRef, NormalizedDataset, Quantizer};
use simpim_simkit::FaultCounters;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    /// Platform (Table 5 defaults).
    pub pim: PimConfig,
    /// Scaling factor α (the paper uses 10⁶).
    pub alpha: f64,
    /// Allocated operand width on crossbars — the paper keeps 32-bit
    /// integers "to keep consistent with host processor".
    pub operand_bits: u32,
    /// Reserve a second copy of every region so the next dataset part can
    /// be programmed while the current one serves queries. With this on,
    /// Theorem 4 reproduces the paper's reported `s` choices (105 for MSD,
    /// 50 for ImageNet).
    pub double_buffer: bool,
    /// Issue multi-region batches (FNN's µ/σ pair, Hamming's
    /// code/complement pair) on their disjoint crossbar groups in
    /// parallel (Section V-C); analog passes overlap, the shared bus does
    /// not. Disable to model strictly serial region execution.
    pub parallel_regions: bool,
    /// Optional hard-fault model (stuck cells, dead lines, ADC glitches,
    /// wear-out — see `simpim-reram::faults`). When set, the executor
    /// scrubs every region after programming, remaps dead crossbars onto
    /// spares, and recovers per-object results so mining stays exact.
    pub faults: Option<FaultConfig>,
    /// Re-scrub (and re-remap) cadence in bound batches; 0 disables
    /// periodic scrubbing (only the post-program scrub runs). Periodic
    /// scrubs catch wear-out that develops while a prepared dataset keeps
    /// serving queries.
    pub scrub_interval: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            pim: PimConfig::default(),
            alpha: 1e6,
            operand_bits: 32,
            double_buffer: true,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        }
    }
}

/// What a prepared executor computes per object.
#[derive(Debug, Clone)]
pub enum PreparedFunction {
    /// `LB_PIM-ED` over full-dimensional floors.
    Ed {
        /// The programmed `⌊p̄⌋` region.
        region: RegionId,
        /// `Φ(p̄)` per object.
        phis: Vec<f64>,
        /// Original dimensionality `d`.
        d: usize,
    },
    /// `LB_PIM-FNN^s` over segment statistics.
    Fnn {
        /// The programmed `⌊µ(p̂)⌋` region.
        mu_region: RegionId,
        /// The programmed `⌊σ(p̂)⌋` region.
        sigma_region: RegionId,
        /// `Φ(p̂)` per object.
        phis: Vec<f64>,
        /// Segments `d′ = s`.
        d_prime: usize,
        /// Segment length `l`.
        segment_len: usize,
    },
    /// `LB_PIM-SM^s` over segment means only (one region — fits budgets
    /// the µ/σ pair cannot).
    Sm {
        /// The programmed `⌊µ(p̂)⌋` region.
        mu_region: RegionId,
        /// `Φ(p̂)` per object.
        phis: Vec<f64>,
        /// Segments `d′ = s`.
        d_prime: usize,
        /// Segment length `l`.
        segment_len: usize,
    },
    /// `UB_PIM-CS` or `UB_PIM-PCC` over full-dimensional floors.
    Dot {
        /// The programmed `⌊p̄⌋` region.
        region: RegionId,
        /// Per-object dot summaries (floors dropped to save memory).
        summaries: Vec<DotSummary>,
        /// Original dimensionality `d`.
        d: usize,
        /// Which similarity the bound is lifted to.
        target: SimTarget,
    },
    /// Exact Hamming distance over code + complement regions.
    Hamming {
        /// The programmed code region.
        code_region: RegionId,
        /// The programmed complement region.
        comp_region: RegionId,
        /// Code width in bits.
        d: usize,
    },
}

/// Similarity target of a `Dot` executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimTarget {
    /// Cosine similarity.
    Cosine,
    /// Pearson correlation coefficient.
    Pearson,
}

/// Scalar summary of one object for the CS/PCC bounds (the floor vector
/// itself lives on the crossbars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DotSummary {
    /// `Σ ⌊p̄ᵢ⌋`.
    pub sum_floor: u64,
    /// `‖p̄‖`.
    pub norm_scaled: f64,
    /// `Σ p̄ᵢ`.
    pub sum_scaled: f64,
}

/// Offline-programming report.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepareReport {
    /// Theorem 4's plan (absent for Hamming, which is never compressed).
    pub plan: Option<MemoryPlan>,
    /// Total crossbar cell writes (endurance).
    pub cell_writes: u64,
    /// Offline programming latency (ns), crossbar writes only.
    pub program_ns: f64,
    /// Bytes of Φ/summary tables staged in the memory array.
    pub phi_bytes: u64,
    /// Crossbars consumed (including the double-buffer reservation).
    pub crossbars_used: usize,
    /// Fault-detection/recovery work done by the post-program scrub
    /// (all-zero when no fault model is configured).
    pub fault_counters: FaultCounters,
}

/// One online bound batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundBatch {
    /// Per-object bound values (LB of ED, UB of CS/PCC, or exact HD).
    pub values: Vec<f64>,
    /// PIM-side latency of the batch.
    pub timing: PimTiming,
    /// Bytes the host reads per object to evaluate `G` (Φ + dot results).
    pub host_bytes_per_object: u64,
    /// Cumulative fault/recovery counters up to and including this batch
    /// (all-zero when no fault model is configured).
    pub fault_counters: FaultCounters,
}

/// The PIM executor: a prepared dataset on a ReRAM bank.
#[derive(Debug)]
pub struct PimExecutor {
    bank: ReRamBank,
    quantizer: Quantizer,
    cfg: ExecutorConfig,
    prepared: PreparedFunction,
    report: PrepareReport,
    fault_counters: FaultCounters,
    batches_since_scrub: u64,
}

impl PimExecutor {
    /// Prepares `LB_PIM-ED` / `LB_PIM-FNN` for a normalized dataset: the
    /// paper's default path for ED workloads. Theorem 4 picks `s`; when the
    /// whole dataset fits uncompressed the tighter `LB_PIM-ED` is used,
    /// otherwise `LB_PIM-FNN^s`.
    pub fn prepare_euclidean(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        let buffer_factor = if cfg.double_buffer { 2 } else { 1 };
        // Uncompressed when it fits; else the two-region µ/σ pair; else
        // the single-region mean-only bound (shared dispatch in
        // `memory::resident_plan`).
        let (plan, shape) = resident_plan(
            ds.len(),
            ds.dim(),
            buffer_factor,
            cfg.operand_bits,
            &cfg.pim,
        )?;
        match shape {
            ResidentShapeChoice::Uncompressed => {
                Self::prepare_ed_uncompressed(cfg, data, plan, ds.len())
            }
            ResidentShapeChoice::MuSigma => Self::prepare_fnn_at(cfg, data, plan, ds.len()),
            ResidentShapeChoice::MeanOnly => Self::prepare_sm_at(cfg, data, plan, ds.len()),
        }
    }

    /// Like [`PimExecutor::prepare_euclidean`], but sizes every region for
    /// `data.len() + spare` objects so rows can be appended online with
    /// [`PimExecutor::append_row`] — no reprogramming, only the spare rows
    /// take wear. Theorem 4 plans for the full capacity, so the chosen `s`
    /// stays valid for the lifetime of the residency.
    pub fn prepare_euclidean_resident(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        spare: usize,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        let capacity = ds.len() + spare;
        let buffer_factor = if cfg.double_buffer { 2 } else { 1 };
        let (plan, shape) = resident_plan(
            capacity,
            ds.dim(),
            buffer_factor,
            cfg.operand_bits,
            &cfg.pim,
        )?;
        match shape {
            ResidentShapeChoice::Uncompressed => {
                Self::prepare_ed_uncompressed(cfg, data, plan, capacity)
            }
            ResidentShapeChoice::MuSigma => Self::prepare_fnn_at(cfg, data, plan, capacity),
            ResidentShapeChoice::MeanOnly => Self::prepare_sm_at(cfg, data, plan, capacity),
        }
    }

    /// Opens a [`ResidentBuilder`]: the streamed twin of
    /// [`PimExecutor::prepare_euclidean_resident`]. Theorem 4 plans from
    /// the declared shape (`n_total + spare` objects × `d` dims) up
    /// front, regions are allocated empty, and the dataset arrives
    /// block-by-block through [`ResidentBuilder::push_rows`] — the host
    /// never needs the full `N × d` matrix resident. The finished
    /// executor is bit-identical in stored matrix, Φ table, wear, and
    /// crossbar layout to one-shot preparation of the same rows.
    pub fn begin_euclidean_resident(
        cfg: ExecutorConfig,
        n_total: usize,
        d: usize,
        spare: usize,
    ) -> Result<ResidentBuilder, CoreError> {
        if n_total == 0 || d == 0 {
            return Err(CoreError::Mismatch {
                what: "streamed preparation needs a non-empty shape",
            });
        }
        let capacity = n_total + spare;
        let buffer_factor = if cfg.double_buffer { 2 } else { 1 };
        let (plan, shape_kind) =
            resident_plan(capacity, d, buffer_factor, cfg.operand_bits, &cfg.pim)?;
        let quantizer = Quantizer::identity(cfg.alpha)?;
        let mut bank = ReRamBank::new(cfg.pim)?;
        let mut cell_writes = 0u64;
        let mut program_ns = 0.0f64;
        let mut begin = |bank: &mut ReRamBank| -> Result<RegionId, CoreError> {
            let rep = bank.begin_region_streamed(capacity, plan.s, cfg.operand_bits)?;
            cell_writes += rep.cell_writes;
            program_ns += rep.program_ns;
            Ok(rep.region)
        };
        let shape = match shape_kind {
            ResidentShapeChoice::Uncompressed => ResidentShape::Ed {
                region: begin(&mut bank)?,
            },
            ResidentShapeChoice::MuSigma => ResidentShape::Fnn {
                mu_region: begin(&mut bank)?,
                sigma_region: begin(&mut bank)?,
                segment_len: 0,
            },
            ResidentShapeChoice::MeanOnly => ResidentShape::Sm {
                mu_region: begin(&mut bank)?,
                segment_len: 0,
            },
        };
        Ok(ResidentBuilder {
            cfg,
            bank,
            quantizer,
            plan,
            shape,
            d,
            n_total,
            capacity,
            pushed: 0,
            phis: Vec::with_capacity(n_total),
            cell_writes,
            program_ns,
            floor_buf: Vec::new(),
            sigma_buf: Vec::new(),
        })
    }

    /// Prepares `LB_PIM-SM` at an explicit segmentation `d_prime` — the
    /// mean-only bound using a single crossbar region. Weaker than
    /// `LB_PIM-FNN` at the same `s` (no σ term) but affordable at up to
    /// twice the segmentation under the same budget.
    pub fn prepare_sm(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        d_prime: usize,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        if d_prime == 0 || !ds.dim().is_multiple_of(d_prime) {
            return Err(CoreError::Mismatch {
                what: "d_prime must divide d",
            });
        }
        let buffer_factor = if cfg.double_buffer { 2 } else { 1 };
        let auto = choose_dimensionality(
            ds.len(),
            ds.dim(),
            buffer_factor,
            cfg.operand_bits,
            &cfg.pim,
        )?;
        if d_prime > auto.s {
            return Err(CoreError::Mismatch {
                what: "requested d_prime exceeds Theorem 4's maximum",
            });
        }
        let cost = simpim_reram::gather::dataset_crossbar_cost(
            ds.len(),
            d_prime,
            cfg.operand_bits,
            &cfg.pim.crossbar,
        )?;
        let plan = MemoryPlan {
            s: d_prime,
            uncompressed: d_prime == ds.dim(),
            cost_per_region: cost,
            regions: buffer_factor,
        };
        Self::prepare_sm_at(cfg, data, plan, ds.len())
    }

    fn prepare_sm_at(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        plan: MemoryPlan,
        capacity: usize,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        let quantizer = Quantizer::identity(cfg.alpha)?;
        let mut bank = ReRamBank::new(cfg.pim)?;
        let n = ds.len();
        let d_prime = plan.s;
        let mut mu_floors = Vec::with_capacity(n * d_prime);
        let mut phis = Vec::with_capacity(n);
        let mut segment_len = 0usize;
        for row in ds.rows() {
            let sq = crate::pim_bounds::SmQuant::compute(row, d_prime, cfg.alpha)?;
            segment_len = sq.segment_len;
            mu_floors.extend_from_slice(&sq.mu_floors);
            phis.push(sq.phi);
        }
        let rep =
            bank.program_region_with_capacity(&mu_floors, n, capacity, d_prime, cfg.operand_bits)?;
        let phi_bytes = capacity as u64 * 8;
        bank.memory_mut().store(phi_bytes)?;
        let report = PrepareReport {
            plan: Some(plan),
            cell_writes: rep.cell_writes,
            program_ns: rep.program_ns,
            phi_bytes,
            crossbars_used: bank.pim().used_crossbars() * if cfg.double_buffer { 2 } else { 1 },
            fault_counters: FaultCounters::default(),
        };
        Self::finish(
            bank,
            quantizer,
            cfg,
            PreparedFunction::Sm {
                mu_region: rep.region,
                phis,
                d_prime,
                segment_len,
            },
            report,
        )
    }

    /// Prepares `LB_PIM-FNN` at an explicit segmentation `d_prime`
    /// (must divide `d` and fit the budget) — used by FNN-PIM, where the
    /// planner chooses `s`.
    pub fn prepare_fnn(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        d_prime: usize,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        if d_prime == 0 || !ds.dim().is_multiple_of(d_prime) {
            return Err(CoreError::Mismatch {
                what: "d_prime must divide d",
            });
        }
        let buffer_factor = if cfg.double_buffer { 2 } else { 1 };
        let auto = choose_dimensionality(
            ds.len(),
            ds.dim(),
            2 * buffer_factor,
            cfg.operand_bits,
            &cfg.pim,
        )?;
        if d_prime > auto.s {
            return Err(CoreError::Mismatch {
                what: "requested d_prime exceeds Theorem 4's maximum",
            });
        }
        let cost = simpim_reram::gather::dataset_crossbar_cost(
            ds.len(),
            d_prime,
            cfg.operand_bits,
            &cfg.pim.crossbar,
        )?;
        let plan = MemoryPlan {
            s: d_prime,
            uncompressed: d_prime == ds.dim(),
            cost_per_region: cost,
            regions: 2 * buffer_factor,
        };
        Self::prepare_fnn_at(cfg, data, plan, ds.len())
    }

    fn prepare_ed_uncompressed(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        plan: MemoryPlan,
        capacity: usize,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        let quantizer = Quantizer::identity(cfg.alpha)?;
        let mut bank = ReRamBank::new(cfg.pim)?;
        let n = ds.len();
        let d = ds.dim();
        let mut floors = Vec::with_capacity(n * d);
        let mut phis = Vec::with_capacity(n);
        for row in ds.rows() {
            let eq = EdQuant::from_quantized(quantizer.quantize_vec(row)?);
            floors.extend_from_slice(&eq.floors);
            phis.push(eq.phi);
        }
        let rep = bank.program_region_with_capacity(&floors, n, capacity, d, cfg.operand_bits)?;
        let phi_bytes = capacity as u64 * 8;
        bank.memory_mut().store(phi_bytes)?;
        let report = PrepareReport {
            plan: Some(plan),
            cell_writes: rep.cell_writes,
            program_ns: rep.program_ns,
            phi_bytes,
            crossbars_used: bank.pim().used_crossbars() * if cfg.double_buffer { 2 } else { 1 },
            fault_counters: FaultCounters::default(),
        };
        Self::finish(
            bank,
            quantizer,
            cfg,
            PreparedFunction::Ed {
                region: rep.region,
                phis,
                d,
            },
            report,
        )
    }

    fn prepare_fnn_at(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        plan: MemoryPlan,
        capacity: usize,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        let quantizer = Quantizer::identity(cfg.alpha)?;
        let mut bank = ReRamBank::new(cfg.pim)?;
        let n = ds.len();
        let d_prime = plan.s;
        let mut mu_floors = Vec::with_capacity(n * d_prime);
        let mut sigma_floors = Vec::with_capacity(n * d_prime);
        let mut phis = Vec::with_capacity(n);
        let mut segment_len = 0usize;
        for row in ds.rows() {
            let fq = FnnQuant::compute(row, d_prime, cfg.alpha)?;
            segment_len = fq.segment_len;
            mu_floors.extend_from_slice(&fq.mu_floors);
            sigma_floors.extend_from_slice(&fq.sigma_floors);
            phis.push(fq.phi);
        }
        let rep_mu =
            bank.program_region_with_capacity(&mu_floors, n, capacity, d_prime, cfg.operand_bits)?;
        let rep_sigma = bank.program_region_with_capacity(
            &sigma_floors,
            n,
            capacity,
            d_prime,
            cfg.operand_bits,
        )?;
        let phi_bytes = capacity as u64 * 8;
        bank.memory_mut().store(phi_bytes)?;
        let report = PrepareReport {
            plan: Some(plan),
            cell_writes: rep_mu.cell_writes + rep_sigma.cell_writes,
            program_ns: rep_mu.program_ns + rep_sigma.program_ns,
            phi_bytes,
            crossbars_used: bank.pim().used_crossbars() * if cfg.double_buffer { 2 } else { 1 },
            fault_counters: FaultCounters::default(),
        };
        Self::finish(
            bank,
            quantizer,
            cfg,
            PreparedFunction::Fnn {
                mu_region: rep_mu.region,
                sigma_region: rep_sigma.region,
                phis,
                d_prime,
                segment_len,
            },
            report,
        )
    }

    /// Prepares `UB_PIM-CS` / `UB_PIM-PCC` over full-dimensional floors.
    /// Compression would change the similarity's semantics, so the dataset
    /// must fit uncompressed.
    pub fn prepare_similarity(
        cfg: ExecutorConfig,
        data: &NormalizedDataset,
        target: SimTarget,
    ) -> Result<Self, CoreError> {
        let ds = data.dataset();
        let buffer_factor = if cfg.double_buffer { 2 } else { 1 };
        let plan = choose_dimensionality(
            ds.len(),
            ds.dim(),
            buffer_factor,
            cfg.operand_bits,
            &cfg.pim,
        )?;
        if !plan.uncompressed {
            return Err(CoreError::CannotFit {
                n: ds.len(),
                crossbars: cfg.pim.num_crossbars,
            });
        }
        let quantizer = Quantizer::identity(cfg.alpha)?;
        let mut bank = ReRamBank::new(cfg.pim)?;
        let n = ds.len();
        let d = ds.dim();
        let mut floors = Vec::with_capacity(n * d);
        let mut summaries = Vec::with_capacity(n);
        for row in ds.rows() {
            let dq = DotQuant::from_quantized(quantizer.quantize_vec(row)?);
            floors.extend_from_slice(&dq.floors);
            summaries.push(DotSummary {
                sum_floor: dq.sum_floor,
                norm_scaled: dq.norm_scaled,
                sum_scaled: dq.sum_scaled,
            });
        }
        let rep = bank.program_region(&floors, n, d, cfg.operand_bits)?;
        let phi_bytes = n as u64 * 24;
        bank.memory_mut().store(phi_bytes)?;
        let report = PrepareReport {
            plan: Some(plan),
            cell_writes: rep.cell_writes,
            program_ns: rep.program_ns,
            phi_bytes,
            crossbars_used: bank.pim().used_crossbars() * buffer_factor,
            fault_counters: FaultCounters::default(),
        };
        Self::finish(
            bank,
            quantizer,
            cfg,
            PreparedFunction::Dot {
                region: rep.region,
                summaries,
                d,
                target,
            },
            report,
        )
    }

    /// Prepares exact PIM Hamming distance: the code and its complement as
    /// two 1-bit-operand regions (Table 4, row HD).
    pub fn prepare_hamming(cfg: ExecutorConfig, codes: &BinaryDataset) -> Result<Self, CoreError> {
        let quantizer = Quantizer::identity(cfg.alpha)?;
        let mut bank = ReRamBank::new(cfg.pim)?;
        let n = codes.len();
        let d = codes.bits();
        let mut code_flat = Vec::with_capacity(n * d);
        let mut comp_flat = Vec::with_capacity(n * d);
        for code in codes.rows() {
            code_flat.extend(code.to_unsigned());
            comp_flat.extend(code.complement_to_unsigned());
        }
        let rep_code = bank.program_region(&code_flat, n, d, 1)?;
        let rep_comp = bank.program_region(&comp_flat, n, d, 1)?;
        let report = PrepareReport {
            plan: None,
            cell_writes: rep_code.cell_writes + rep_comp.cell_writes,
            program_ns: rep_code.program_ns + rep_comp.program_ns,
            phi_bytes: 0,
            crossbars_used: bank.pim().used_crossbars() * if cfg.double_buffer { 2 } else { 1 },
            fault_counters: FaultCounters::default(),
        };
        Self::finish(
            bank,
            quantizer,
            cfg,
            PreparedFunction::Hamming {
                code_region: rep_code.region,
                comp_region: rep_comp.region,
                d,
            },
            report,
        )
    }

    /// Shared constructor tail: attach the fault model (if any), run the
    /// post-program scrub-and-remap pass, and record its counters in the
    /// prepare report.
    fn finish(
        bank: ReRamBank,
        quantizer: Quantizer,
        cfg: ExecutorConfig,
        prepared: PreparedFunction,
        report: PrepareReport,
    ) -> Result<Self, CoreError> {
        let mut exec = Self {
            bank,
            quantizer,
            cfg,
            prepared,
            report,
            fault_counters: FaultCounters::default(),
            batches_since_scrub: 0,
        };
        if let Some(faults) = cfg.faults {
            exec.bank.enable_faults(faults)?;
            exec.scrub_and_remap()?;
            exec.report.fault_counters = exec.fault_counters;
        }
        Ok(exec)
    }

    /// The regions the prepared function reads online.
    fn regions(&self) -> Vec<RegionId> {
        match &self.prepared {
            PreparedFunction::Ed { region, .. } | PreparedFunction::Dot { region, .. } => {
                vec![*region]
            }
            PreparedFunction::Fnn {
                mu_region,
                sigma_region,
                ..
            } => vec![*mu_region, *sigma_region],
            PreparedFunction::Sm { mu_region, .. } => vec![*mu_region],
            PreparedFunction::Hamming {
                code_region,
                comp_region,
                ..
            } => vec![*code_region, *comp_region],
        }
    }

    /// One detect-and-recover pass: scrub every region against the fault
    /// map, then remap any dead crossbars onto spare capacity. Quarantined
    /// objects (dead with no clean spare) are recovered per-batch by exact
    /// host-side refinement.
    fn scrub_and_remap(&mut self) -> Result<(), CoreError> {
        let before = self.fault_counters;
        let mut span = simpim_obs::span!("core.executor.scrub");
        for region in self.regions() {
            let scrub = self.bank.scrub_region(region)?;
            self.fault_counters.scrubs += 1;
            self.fault_counters.faults_detected += scrub.faulty_cells + scrub.dead as u64;
            self.fault_counters.adc_retries += scrub.adc_retries;
            if scrub.dead > 0 {
                let remap = self.bank.remap_dead(region)?;
                self.fault_counters.remapped_crossbars += remap.remapped_crossbars as u64;
                self.fault_counters.quarantined_rows += remap.quarantined_objects as u64;
            }
        }
        // Flush this pass's deltas (the struct counters are cumulative).
        let d = |now: u64, then: u64| now.saturating_sub(then);
        let fc = self.fault_counters;
        simpim_obs::metrics::counter_add(
            "simpim.core.executor.scrubs",
            d(fc.scrubs, before.scrubs),
        );
        simpim_obs::metrics::counter_add(
            "simpim.core.executor.faults_detected",
            d(fc.faults_detected, before.faults_detected),
        );
        simpim_obs::metrics::counter_add(
            "simpim.core.executor.remapped_crossbars",
            d(fc.remapped_crossbars, before.remapped_crossbars),
        );
        simpim_obs::metrics::counter_add(
            "simpim.core.executor.quarantined_rows",
            d(fc.quarantined_rows, before.quarantined_rows),
        );
        simpim_obs::metrics::histogram_record(
            "simpim.core.executor.adc_retries",
            d(fc.adc_retries, before.adc_retries),
        );
        span.record_all([
            (
                "faults_detected",
                d(fc.faults_detected, before.faults_detected) as f64,
            ),
            (
                "remapped",
                d(fc.remapped_crossbars, before.remapped_crossbars) as f64,
            ),
            (
                "quarantined",
                d(fc.quarantined_rows, before.quarantined_rows) as f64,
            ),
        ]);
        Ok(())
    }

    /// Flushes one bound batch's observations (`simpim.core.executor.*`):
    /// a batch counter, recovery-work counters, and the crossbar-occupancy
    /// gauge. A handful of registry touches per *batch*, never per object.
    fn record_batch_metrics(&self, guarded: u64, fallbacks: u64) {
        simpim_obs::metrics::counter_add("simpim.core.executor.batches", 1);
        if guarded > 0 {
            simpim_obs::metrics::counter_add("simpim.core.executor.guarded_bounds", guarded);
        }
        if fallbacks > 0 {
            simpim_obs::metrics::counter_add(
                "simpim.core.executor.fallback_refinements",
                fallbacks,
            );
        }
        let total = self.cfg.pim.num_crossbars;
        if total > 0 {
            simpim_obs::metrics::gauge_set(
                "simpim.core.executor.crossbar_occupancy",
                self.bank.pim().used_crossbars() as f64 / total as f64,
            );
        }
    }

    /// True when a non-inert fault model is attached (per-object recovery
    /// is needed after every batch).
    fn faults_active(&self) -> bool {
        self.cfg.faults.is_some_and(|f| !f.is_inert())
    }

    /// Periodic scrub cadence: every `scrub_interval` bound batches the
    /// executor re-scrubs all regions (catching wear-out that developed
    /// online). Called at the start of each batch.
    fn maybe_scrub(&mut self) -> Result<(), CoreError> {
        if self.cfg.faults.is_none() || self.cfg.scrub_interval == 0 {
            return Ok(());
        }
        self.batches_since_scrub += 1;
        if self.batches_since_scrub >= self.cfg.scrub_interval {
            self.batches_since_scrub = 0;
            self.scrub_and_remap()?;
        }
        Ok(())
    }

    /// Per-object `(health, discrepancy)` for one region, in object order.
    fn region_statuses(
        &self,
        region: RegionId,
        n: usize,
    ) -> Result<Vec<(CrossbarHealth, u64)>, CoreError> {
        (0..n)
            .map(|obj| {
                Ok((
                    self.bank.object_health(region, obj)?,
                    self.bank.pim().object_discrepancy(region, obj)?,
                ))
            })
            .collect()
    }

    /// Runs one detect-and-recover pass now, outside the periodic
    /// [`ExecutorConfig::scrub_interval`] cadence: scrub every region
    /// against the fault map and remap dead crossbars onto spares. A
    /// no-op without an attached fault model. The serving layer calls
    /// this after re-replicating a shard onto a spare bank so the fresh
    /// residency is surveyed before it rejoins routing.
    pub fn scrub_now(&mut self) -> Result<(), CoreError> {
        if self.cfg.faults.is_none() {
            return Ok(());
        }
        self.batches_since_scrub = 0;
        self.scrub_and_remap()
    }

    /// Whether the underlying bank is fail-stopped
    /// ([`simpim_reram::ReRamError::BankLost`] on every command). Lost
    /// banks cannot be recovered in place; the resident dataset must be
    /// re-programmed onto a fresh executor.
    pub fn bank_lost(&self) -> bool {
        self.bank.is_lost()
    }

    /// Cumulative fault-detection/recovery counters for this executor's
    /// lifetime.
    pub fn fault_counters(&self) -> &FaultCounters {
        &self.fault_counters
    }

    /// The offline-programming report.
    pub fn report(&self) -> &PrepareReport {
        &self.report
    }

    /// The prepared function shape.
    pub fn prepared(&self) -> &PreparedFunction {
        &self.prepared
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// The underlying bank (for endurance / energy inspection).
    pub fn bank(&self) -> &ReRamBank {
        &self.bank
    }

    /// Mutable access to the underlying bank — the escape hatch for fault
    /// and endurance experiments (e.g. aging crossbars between batches so
    /// the periodic scrub sees wear-out). Regular queries never need it.
    pub fn bank_mut(&mut self) -> &mut ReRamBank {
        &mut self.bank
    }

    /// Human-readable name of the bound this executor serves, matching the
    /// paper's notation.
    pub fn bound_name(&self) -> String {
        match &self.prepared {
            PreparedFunction::Ed { .. } => "LB_PIM-ED".to_string(),
            PreparedFunction::Fnn { d_prime, .. } => format!("LB_PIM-FNN^{d_prime}"),
            PreparedFunction::Sm { d_prime, .. } => format!("LB_PIM-SM^{d_prime}"),
            PreparedFunction::Dot { target, .. } => match target {
                SimTarget::Cosine => "UB_PIM-CS".to_string(),
                SimTarget::Pearson => "UB_PIM-PCC".to_string(),
            },
            PreparedFunction::Hamming { .. } => "HD_PIM".to_string(),
        }
    }

    /// Lower bounds of squared ED between every prepared object and
    /// `query` (normalized values in `[0,1]`). Valid for `Ed` and `Fnn`
    /// shapes.
    pub fn lb_ed_batch(&mut self, query: &[f64]) -> Result<BoundBatch, CoreError> {
        match &self.prepared {
            PreparedFunction::Ed { region, d, .. } => {
                if query.len() != *d {
                    return Err(CoreError::Mismatch {
                        what: "query dimensionality",
                    });
                }
                let (region, d) = (*region, *d);
                self.maybe_scrub()?;
                let eq = EdQuant::from_quantized(self.quantizer.quantize_vec(query)?);
                let out = self.bank.dot_batch(region, &eq.floors, AccWidth::U64)?;
                let statuses = if self.faults_active() {
                    Some(self.region_statuses(region, out.values.len())?)
                } else {
                    None
                };
                let qmax = eq.floors.iter().copied().max().unwrap_or(0) as f64;
                let alpha = self.cfg.alpha;
                let PreparedFunction::Ed { phis, .. } = &self.prepared else {
                    unreachable!()
                };
                let mut guarded = 0u64;
                let mut fallbacks = 0u64;
                let mut values = Vec::with_capacity(out.values.len());
                for (obj, (&phi_p, &dot)) in phis.iter().zip(&out.values).enumerate() {
                    let v = match statuses.as_ref().map(|s| s[obj]) {
                        None | Some((CrossbarHealth::Healthy, _)) => {
                            lb_pim_ed(phi_p, eq.phi, dot, d, alpha)
                        }
                        Some((CrossbarHealth::Drifted, disc)) => {
                            // |measured − exact| ≤ max⌊q̄ᵢ⌋ · Σ|Δp̄ᵢ|: widen
                            // the guard-band, the bound stays valid.
                            guarded += 1;
                            lb_pim_ed_guarded(phi_p, eq.phi, dot, d, alpha, qmax * disc as f64)
                        }
                        Some((CrossbarHealth::Dead, _)) => {
                            // Quarantined: exact host-side dot on the
                            // retained floor row — bit-identical to the
                            // fault-free bound.
                            fallbacks += 1;
                            let row = self.bank.pim().region_row(region, obj)?;
                            lb_pim_ed(phi_p, eq.phi, host_floor_dot(row, &eq.floors), d, alpha)
                        }
                    };
                    values.push(v);
                }
                self.fault_counters.guarded_bounds += guarded;
                self.fault_counters.fallback_refinements += fallbacks;
                self.record_batch_metrics(guarded, fallbacks);
                Ok(BoundBatch {
                    values,
                    timing: out.timing,
                    host_bytes_per_object: 16, // Φ(p̄) + dot result
                    fault_counters: self.fault_counters,
                })
            }
            PreparedFunction::Fnn {
                mu_region,
                sigma_region,
                d_prime,
                segment_len,
                ..
            } => {
                let expected_d = d_prime * segment_len;
                if query.len() != expected_d {
                    return Err(CoreError::Mismatch {
                        what: "query dimensionality",
                    });
                }
                let (mu_region, sigma_region, d_prime, segment_len) =
                    (*mu_region, *sigma_region, *d_prime, *segment_len);
                self.maybe_scrub()?;
                let fq = FnnQuant::compute(query, d_prime, self.cfg.alpha)?;
                let mu_out = self
                    .bank
                    .dot_batch(mu_region, &fq.mu_floors, AccWidth::U64)?;
                let sg_out = self
                    .bank
                    .dot_batch(sigma_region, &fq.sigma_floors, AccWidth::U64)?;
                let mut timing = mu_out.timing;
                if self.cfg.parallel_regions {
                    timing.merge_parallel(&sg_out.timing);
                } else {
                    timing.add(&sg_out.timing);
                }
                let n = mu_out.values.len();
                let statuses = if self.faults_active() {
                    Some((
                        self.region_statuses(mu_region, n)?,
                        self.region_statuses(sigma_region, n)?,
                    ))
                } else {
                    None
                };
                let qmax_mu = fq.mu_floors.iter().copied().max().unwrap_or(0) as f64;
                let qmax_sg = fq.sigma_floors.iter().copied().max().unwrap_or(0) as f64;
                let alpha = self.cfg.alpha;
                let PreparedFunction::Fnn { phis, .. } = &self.prepared else {
                    unreachable!()
                };
                let mut guarded = 0u64;
                let mut fallbacks = 0u64;
                let mut values = Vec::with_capacity(n);
                for (obj, (&phi_p, (&dm, &ds))) in phis
                    .iter()
                    .zip(mu_out.values.iter().zip(&sg_out.values))
                    .enumerate()
                {
                    let status = statuses.as_ref().map(|(mu, sg)| (mu[obj], sg[obj]));
                    let dead = matches!(
                        status,
                        Some(((CrossbarHealth::Dead, _), _)) | Some((_, (CrossbarHealth::Dead, _)))
                    );
                    let v = if dead {
                        fallbacks += 1;
                        let mu_row = self.bank.pim().region_row(mu_region, obj)?;
                        let dm_exact = host_floor_dot(mu_row, &fq.mu_floors);
                        let sg_row = self.bank.pim().region_row(sigma_region, obj)?;
                        let ds_exact = host_floor_dot(sg_row, &fq.sigma_floors);
                        lb_pim_fnn(
                            phi_p,
                            fq.phi,
                            dm_exact,
                            ds_exact,
                            d_prime,
                            segment_len,
                            alpha,
                        )
                    } else if let Some(((_, disc_mu), (_, disc_sg))) =
                        status.filter(|((_, dm), (_, ds))| dm + ds > 0)
                    {
                        guarded += 1;
                        lb_pim_fnn_guarded(
                            phi_p,
                            fq.phi,
                            dm,
                            ds,
                            d_prime,
                            segment_len,
                            alpha,
                            qmax_mu * disc_mu as f64,
                            qmax_sg * disc_sg as f64,
                        )
                    } else {
                        lb_pim_fnn(phi_p, fq.phi, dm, ds, d_prime, segment_len, alpha)
                    };
                    values.push(v);
                }
                self.fault_counters.guarded_bounds += guarded;
                self.fault_counters.fallback_refinements += fallbacks;
                self.record_batch_metrics(guarded, fallbacks);
                Ok(BoundBatch {
                    values,
                    timing,
                    host_bytes_per_object: 24, // Φ(p̂) + two dot results
                    fault_counters: self.fault_counters,
                })
            }
            PreparedFunction::Sm {
                mu_region,
                d_prime,
                segment_len,
                ..
            } => {
                let expected_d = d_prime * segment_len;
                if query.len() != expected_d {
                    return Err(CoreError::Mismatch {
                        what: "query dimensionality",
                    });
                }
                let (mu_region, d_prime, segment_len) = (*mu_region, *d_prime, *segment_len);
                self.maybe_scrub()?;
                let sq = crate::pim_bounds::SmQuant::compute(query, d_prime, self.cfg.alpha)?;
                let out = self
                    .bank
                    .dot_batch(mu_region, &sq.mu_floors, AccWidth::U64)?;
                let statuses = if self.faults_active() {
                    Some(self.region_statuses(mu_region, out.values.len())?)
                } else {
                    None
                };
                let qmax = sq.mu_floors.iter().copied().max().unwrap_or(0) as f64;
                let alpha = self.cfg.alpha;
                let PreparedFunction::Sm { phis, .. } = &self.prepared else {
                    unreachable!()
                };
                let mut guarded = 0u64;
                let mut fallbacks = 0u64;
                let mut values = Vec::with_capacity(out.values.len());
                for (obj, (&phi_p, &dot)) in phis.iter().zip(&out.values).enumerate() {
                    let v = match statuses.as_ref().map(|s| s[obj]) {
                        None | Some((CrossbarHealth::Healthy, _)) => {
                            lb_pim_sm(phi_p, sq.phi, dot, d_prime, segment_len, alpha)
                        }
                        Some((CrossbarHealth::Drifted, disc)) => {
                            guarded += 1;
                            lb_pim_sm_guarded(
                                phi_p,
                                sq.phi,
                                dot,
                                d_prime,
                                segment_len,
                                alpha,
                                qmax * disc as f64,
                            )
                        }
                        Some((CrossbarHealth::Dead, _)) => {
                            fallbacks += 1;
                            let row = self.bank.pim().region_row(mu_region, obj)?;
                            lb_pim_sm(
                                phi_p,
                                sq.phi,
                                host_floor_dot(row, &sq.mu_floors),
                                d_prime,
                                segment_len,
                                alpha,
                            )
                        }
                    };
                    values.push(v);
                }
                self.fault_counters.guarded_bounds += guarded;
                self.fault_counters.fallback_refinements += fallbacks;
                self.record_batch_metrics(guarded, fallbacks);
                Ok(BoundBatch {
                    values,
                    timing: out.timing,
                    host_bytes_per_object: 16, // Φ(p̂) + one dot result
                    fault_counters: self.fault_counters,
                })
            }
            _ => Err(CoreError::Mismatch {
                what: "executor not prepared for ED bounds",
            }),
        }
    }

    /// Runs [`PimExecutor::lb_ed_batch`] for a coalesced batch of queries
    /// against the resident regions — the serving layer's one-pass-per-shard
    /// entry point. The dataset stays programmed across the whole batch, so
    /// the per-query cost is a crossbar read pass only; the offline path's
    /// program cost is amortized across every query the residency serves.
    pub fn lb_ed_batch_multi(
        &mut self,
        queries: &[Vec<f64>],
    ) -> Result<Vec<BoundBatch>, CoreError> {
        self.lb_ed_batch_multi_ctx(queries, simpim_obs::TraceCtx::NONE)
    }

    /// [`PimExecutor::lb_ed_batch_multi`] under an explicit trace
    /// context: the executor's span parents on `parent` (the serving
    /// layer's batch span) instead of this thread's stack, so the
    /// crossbar pass stays attributable to its request even though the
    /// dispatch crossed onto a pool worker thread.
    pub fn lb_ed_batch_multi_ctx(
        &mut self,
        queries: &[Vec<f64>],
        parent: simpim_obs::TraceCtx,
    ) -> Result<Vec<BoundBatch>, CoreError> {
        let attrs = [("queries", queries.len() as f64)];
        let mut span = if parent.is_none() {
            simpim_obs::trace::open_span("core.executor.lb_ed_batch_multi", &attrs)
        } else {
            simpim_obs::trace::open_span_ctx("core.executor.lb_ed_batch_multi", parent, &attrs).0
        };
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            out.push(self.lb_ed_batch(q)?);
        }
        simpim_obs::metrics::histogram_record(
            "simpim.core.executor.coalesced_queries",
            queries.len() as u64,
        );
        span.record_all([("batches", out.len() as f64)]);
        Ok(out)
    }

    /// Appends one normalized row into the resident regions' spare slots
    /// and returns its object index. Only the touched crossbars take
    /// program wear; existing rows are never rewritten. Valid for the
    /// `Ed`, `Fnn` and `Sm` shapes (the ones
    /// [`PimExecutor::prepare_euclidean_resident`] produces).
    pub fn append_row(&mut self, row: &[f64]) -> Result<usize, CoreError> {
        let idx = match &self.prepared {
            PreparedFunction::Ed { region, d, .. } => {
                if row.len() != *d {
                    return Err(CoreError::Mismatch {
                        what: "row dimensionality",
                    });
                }
                let region = *region;
                let eq = EdQuant::from_quantized(self.quantizer.quantize_vec(row)?);
                self.bank.append_rows(region, &eq.floors)?;
                let PreparedFunction::Ed { phis, .. } = &mut self.prepared else {
                    unreachable!()
                };
                phis.push(eq.phi);
                phis.len() - 1
            }
            PreparedFunction::Fnn {
                mu_region,
                sigma_region,
                d_prime,
                segment_len,
                ..
            } => {
                if row.len() != d_prime * segment_len {
                    return Err(CoreError::Mismatch {
                        what: "row dimensionality",
                    });
                }
                let (mu_region, sigma_region, d_prime) = (*mu_region, *sigma_region, *d_prime);
                let fq = FnnQuant::compute(row, d_prime, self.cfg.alpha)?;
                self.bank.append_rows(mu_region, &fq.mu_floors)?;
                self.bank.append_rows(sigma_region, &fq.sigma_floors)?;
                let PreparedFunction::Fnn { phis, .. } = &mut self.prepared else {
                    unreachable!()
                };
                phis.push(fq.phi);
                phis.len() - 1
            }
            PreparedFunction::Sm {
                mu_region,
                d_prime,
                segment_len,
                ..
            } => {
                if row.len() != d_prime * segment_len {
                    return Err(CoreError::Mismatch {
                        what: "row dimensionality",
                    });
                }
                let (mu_region, d_prime) = (*mu_region, *d_prime);
                let sq = crate::pim_bounds::SmQuant::compute(row, d_prime, self.cfg.alpha)?;
                self.bank.append_rows(mu_region, &sq.mu_floors)?;
                let PreparedFunction::Sm { phis, .. } = &mut self.prepared else {
                    unreachable!()
                };
                phis.push(sq.phi);
                phis.len() - 1
            }
            _ => {
                return Err(CoreError::Mismatch {
                    what: "executor shape does not support appends",
                })
            }
        };
        // Appending invalidates the lazy fault survey; re-scrub now so the
        // next batch's per-object health lookups stay available.
        if self.cfg.faults.is_some() {
            self.scrub_and_remap()?;
        }
        simpim_obs::metrics::counter_add("simpim.core.executor.appends", 1);
        Ok(idx)
    }

    /// Spare object slots left across the resident regions (the minimum
    /// over regions — an append consumes one slot in each).
    pub fn spare_capacity(&self) -> Result<usize, CoreError> {
        let mut spare = usize::MAX;
        for region in self.regions() {
            spare = spare.min(self.bank.region_spare(region)?);
        }
        Ok(spare)
    }

    /// Number of objects currently resident (initial rows + appends).
    pub fn resident_len(&self) -> Result<usize, CoreError> {
        let (n, _, _) = self.bank.pim().region_shape(self.regions()[0])?;
        Ok(n)
    }

    /// Upper bounds of the prepared similarity (CS or PCC) between every
    /// object and `query`. Valid for the `Dot` shape.
    pub fn ub_sim_batch(&mut self, query: &[f64]) -> Result<BoundBatch, CoreError> {
        let PreparedFunction::Dot {
            region, d, target, ..
        } = &self.prepared
        else {
            return Err(CoreError::Mismatch {
                what: "executor not prepared for similarity bounds",
            });
        };
        if query.len() != *d {
            return Err(CoreError::Mismatch {
                what: "query dimensionality",
            });
        }
        let (region, d, target) = (*region, *d, *target);
        self.maybe_scrub()?;
        let qq = DotQuant::from_quantized(self.quantizer.quantize_vec(query)?);
        let out = self.bank.dot_batch(region, &qq.floors, AccWidth::U64)?;
        let statuses = if self.faults_active() {
            Some(self.region_statuses(region, out.values.len())?)
        } else {
            None
        };
        let qmax = u64::from(qq.floors.iter().copied().max().unwrap_or(0));
        let PreparedFunction::Dot { summaries, .. } = &self.prepared else {
            unreachable!()
        };
        let mut guarded = 0u64;
        let mut fallbacks = 0u64;
        let mut values = Vec::with_capacity(out.values.len());
        for (obj, (s, &dot)) in summaries.iter().zip(&out.values).enumerate() {
            let p = DotQuant {
                floors: Vec::new(),
                sum_floor: s.sum_floor,
                norm_scaled: s.norm_scaled,
                sum_scaled: s.sum_scaled,
            };
            // The similarity UBs are increasing in the dot term, so a
            // drifted read is guarded by *inflating* the measured value;
            // dead objects fall back to the exact host-side dot.
            let effective_dot = match statuses.as_ref().map(|s| s[obj]) {
                None | Some((CrossbarHealth::Healthy, _)) => dot,
                Some((CrossbarHealth::Drifted, disc)) => {
                    guarded += 1;
                    dot + qmax * disc
                }
                Some((CrossbarHealth::Dead, _)) => {
                    fallbacks += 1;
                    let row = self.bank.pim().region_row(region, obj)?;
                    host_floor_dot(row, &qq.floors)
                }
            };
            values.push(match target {
                SimTarget::Cosine => ub_pim_cs(&p, &qq, effective_dot, d),
                SimTarget::Pearson => ub_pim_pcc(&p, &qq, effective_dot, d),
            });
        }
        self.fault_counters.guarded_bounds += guarded;
        self.fault_counters.fallback_refinements += fallbacks;
        self.record_batch_metrics(guarded, fallbacks);
        Ok(BoundBatch {
            values,
            timing: out.timing,
            host_bytes_per_object: 32,
            fault_counters: self.fault_counters,
        })
    }

    /// Exact Hamming distances between every prepared code and `query`.
    /// Valid for the `Hamming` shape. Uses the 32-bit accumulator the
    /// paper selects for binary data.
    pub fn hd_batch(&mut self, query: &BinaryVecRef<'_>) -> Result<BoundBatch, CoreError> {
        let PreparedFunction::Hamming {
            code_region,
            comp_region,
            d,
        } = &self.prepared
        else {
            return Err(CoreError::Mismatch {
                what: "executor not prepared for Hamming distance",
            });
        };
        if query.bits() != *d {
            return Err(CoreError::Mismatch {
                what: "query code width",
            });
        }
        let (code_region, comp_region, d) = (*code_region, *comp_region, *d);
        self.maybe_scrub()?;
        let q = query.to_unsigned();
        let qc = query.complement_to_unsigned();
        let code_out: DotBatchResult = self.bank.dot_batch(code_region, &q, AccWidth::U32)?;
        let comp_out: DotBatchResult = self.bank.dot_batch(comp_region, &qc, AccWidth::U32)?;
        let mut timing = code_out.timing;
        if self.cfg.parallel_regions {
            timing.merge_parallel(&comp_out.timing);
        } else {
            timing.add(&comp_out.timing);
        }
        let n = code_out.values.len();
        let statuses = if self.faults_active() {
            Some((
                self.region_statuses(code_region, n)?,
                self.region_statuses(comp_region, n)?,
            ))
        } else {
            None
        };
        let mut fallbacks = 0u64;
        let mut values = Vec::with_capacity(n);
        for (obj, (&dot, &dotc)) in code_out.values.iter().zip(&comp_out.values).enumerate() {
            // HD is used as an *exact* distance (Table 4), so there is no
            // guard-band to widen: any fault-touched object is recomputed
            // exactly from the retained code rows.
            let degraded = statuses.as_ref().is_some_and(|(code, comp)| {
                code[obj] != (CrossbarHealth::Healthy, 0)
                    || comp[obj] != (CrossbarHealth::Healthy, 0)
            });
            let v = if degraded {
                fallbacks += 1;
                let code_dot = host_floor_dot(self.bank.pim().region_row(code_region, obj)?, &q);
                let comp_dot = host_floor_dot(self.bank.pim().region_row(comp_region, obj)?, &qc);
                (d as u64 - code_dot - comp_dot) as f64
            } else {
                (d as u64 - dot - dotc) as f64
            };
            values.push(v);
        }
        self.fault_counters.fallback_refinements += fallbacks;
        self.record_batch_metrics(0, fallbacks);
        Ok(BoundBatch {
            values,
            timing,
            host_bytes_per_object: 8,
            fault_counters: self.fault_counters,
        })
    }
}

/// Region handles of the shape under construction.
#[derive(Debug, Clone, Copy)]
enum ResidentShape {
    Ed {
        region: RegionId,
    },
    Fnn {
        mu_region: RegionId,
        sigma_region: RegionId,
        segment_len: usize,
    },
    Sm {
        mu_region: RegionId,
        segment_len: usize,
    },
}

/// Incremental constructor for a resident euclidean executor
/// ([`PimExecutor::begin_euclidean_resident`]).
///
/// Rows stream in through [`ResidentBuilder::push_rows`] in dataset
/// order; each block is quantized and programmed immediately, so host
/// memory holds one block plus the Φ table — never the full matrix.
/// [`ResidentBuilder::finish`] seals the regions and yields an executor
/// indistinguishable from one-shot preparation of the same rows.
#[derive(Debug)]
pub struct ResidentBuilder {
    cfg: ExecutorConfig,
    bank: ReRamBank,
    quantizer: Quantizer,
    plan: MemoryPlan,
    shape: ResidentShape,
    d: usize,
    n_total: usize,
    capacity: usize,
    pushed: usize,
    phis: Vec<f64>,
    cell_writes: u64,
    program_ns: f64,
    floor_buf: Vec<u32>,
    sigma_buf: Vec<u32>,
}

impl ResidentBuilder {
    /// The Theorem 4 plan chosen for the declared shape.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Rows pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Rows the builder was declared for.
    pub fn expected(&self) -> usize {
        self.n_total
    }

    /// Quantizes and programs one block of rows (`flat` row-major,
    /// `k × d`, values normalized to `[0, 1]`). Blocks arrive in dataset
    /// order; any block partitioning produces the same stored matrix.
    pub fn push_rows(&mut self, flat: &[f64]) -> Result<(), CoreError> {
        if flat.is_empty() || !flat.len().is_multiple_of(self.d) {
            return Err(CoreError::Mismatch {
                what: "pushed block must be a non-empty multiple of d",
            });
        }
        let k = flat.len() / self.d;
        if self.pushed + k > self.n_total {
            return Err(CoreError::Mismatch {
                what: "pushed more rows than the declared total",
            });
        }
        match &mut self.shape {
            ResidentShape::Ed { region } => {
                self.floor_buf.clear();
                for row in flat.chunks_exact(self.d) {
                    let eq = EdQuant::from_quantized(self.quantizer.quantize_vec(row)?);
                    self.floor_buf.extend_from_slice(&eq.floors);
                    self.phis.push(eq.phi);
                }
                let rep = self.bank.fill_rows(*region, &self.floor_buf)?;
                self.cell_writes += rep.cell_writes;
                self.program_ns += rep.program_ns;
            }
            ResidentShape::Fnn {
                mu_region,
                sigma_region,
                segment_len,
            } => {
                self.floor_buf.clear();
                self.sigma_buf.clear();
                for row in flat.chunks_exact(self.d) {
                    let fq = FnnQuant::compute(row, self.plan.s, self.cfg.alpha)?;
                    *segment_len = fq.segment_len;
                    self.floor_buf.extend_from_slice(&fq.mu_floors);
                    self.sigma_buf.extend_from_slice(&fq.sigma_floors);
                    self.phis.push(fq.phi);
                }
                let rep_mu = self.bank.fill_rows(*mu_region, &self.floor_buf)?;
                let rep_sigma = self.bank.fill_rows(*sigma_region, &self.sigma_buf)?;
                self.cell_writes += rep_mu.cell_writes + rep_sigma.cell_writes;
                self.program_ns += rep_mu.program_ns + rep_sigma.program_ns;
            }
            ResidentShape::Sm {
                mu_region,
                segment_len,
            } => {
                self.floor_buf.clear();
                for row in flat.chunks_exact(self.d) {
                    let sq = crate::pim_bounds::SmQuant::compute(row, self.plan.s, self.cfg.alpha)?;
                    *segment_len = sq.segment_len;
                    self.floor_buf.extend_from_slice(&sq.mu_floors);
                    self.phis.push(sq.phi);
                }
                let rep = self.bank.fill_rows(*mu_region, &self.floor_buf)?;
                self.cell_writes += rep.cell_writes;
                self.program_ns += rep.program_ns;
            }
        }
        self.pushed += k;
        Ok(())
    }

    /// Seals the streamed regions and finishes the executor (stages the Φ
    /// table, attaches the fault model, runs the post-program scrub).
    /// Requires exactly the declared number of rows to have been pushed.
    pub fn finish(mut self) -> Result<PimExecutor, CoreError> {
        if self.pushed != self.n_total {
            return Err(CoreError::Mismatch {
                what: "streamed preparation sealed before all declared rows arrived",
            });
        }
        let regions: Vec<RegionId> = match &self.shape {
            ResidentShape::Ed { region } => vec![*region],
            ResidentShape::Fnn {
                mu_region,
                sigma_region,
                ..
            } => vec![*mu_region, *sigma_region],
            ResidentShape::Sm { mu_region, .. } => vec![*mu_region],
        };
        for r in regions {
            self.bank.finish_region(r)?;
        }
        let phi_bytes = self.capacity as u64 * 8;
        self.bank.memory_mut().store(phi_bytes)?;
        let report = PrepareReport {
            plan: Some(self.plan),
            cell_writes: self.cell_writes,
            program_ns: self.program_ns,
            phi_bytes,
            crossbars_used: self.bank.pim().used_crossbars()
                * if self.cfg.double_buffer { 2 } else { 1 },
            fault_counters: FaultCounters::default(),
        };
        let prepared = match self.shape {
            ResidentShape::Ed { region } => PreparedFunction::Ed {
                region,
                phis: self.phis,
                d: self.d,
            },
            ResidentShape::Fnn {
                mu_region,
                sigma_region,
                segment_len,
            } => PreparedFunction::Fnn {
                mu_region,
                sigma_region,
                phis: self.phis,
                d_prime: self.plan.s,
                segment_len,
            },
            ResidentShape::Sm {
                mu_region,
                segment_len,
            } => PreparedFunction::Sm {
                mu_region,
                phis: self.phis,
                d_prime: self.plan.s,
                segment_len,
            },
        };
        PimExecutor::finish(self.bank, self.quantizer, self.cfg, prepared, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_reram::CrossbarConfig;
    use simpim_similarity::measures::{cosine, euclidean_sq, pearson};
    use simpim_similarity::Dataset;

    fn small_pim(crossbars: usize) -> PimConfig {
        PimConfig {
            crossbar: CrossbarConfig {
                size: 16,
                adc_bits: 10,
                ..Default::default()
            },
            num_crossbars: crossbars,
            ..Default::default()
        }
    }

    fn normalized(rows: &[Vec<f64>]) -> NormalizedDataset {
        NormalizedDataset::assert_normalized(Dataset::from_rows(rows).unwrap())
    }

    fn cfg(crossbars: usize) -> ExecutorConfig {
        ExecutorConfig {
            pim: small_pim(crossbars),
            alpha: 1000.0,
            operand_bits: 16,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        }
    }

    fn sample_data() -> NormalizedDataset {
        normalized(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4],
        ])
    }

    #[test]
    fn ed_path_lower_bounds_exact_distance() {
        let data = sample_data();
        let mut exec = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        assert_eq!(exec.bound_name(), "LB_PIM-ED");
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        assert_eq!(batch.values.len(), 3);
        for (i, &lb) in batch.values.iter().enumerate() {
            let ed = euclidean_sq(data.dataset().row(i), &q);
            assert!(lb <= ed + 1e-9, "i={i}: {lb} > {ed}");
            // α = 1000, d = 8 → error ≤ 0.032: the bound is tight.
            assert!(ed - lb <= crate::pim_bounds::error_bound_ed(8, 1000.0) + 1e-9);
        }
        assert!(batch.timing.total_ns() > 0.0);
        assert_eq!(batch.host_bytes_per_object, 16);
    }

    #[test]
    fn fnn_path_under_capacity_pressure() {
        // 64 rows × 8 dims on an 8-crossbar array: the uncompressed ED
        // layout needs 16 crossbars, so Theorem 4 compresses to s = 2
        // (2 regions × 4 crossbars).
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 7 + j * 13) % 97) as f64 / 96.0)
                    .collect()
            })
            .collect();
        let data = normalized(&rows);
        let mut exec = PimExecutor::prepare_euclidean(cfg(8), &data).unwrap();
        assert!(
            exec.bound_name().starts_with("LB_PIM-FNN"),
            "{}",
            exec.bound_name()
        );
        let plan = exec.report().plan.unwrap();
        assert!(plan.s < 8);
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        for (i, &lb) in batch.values.iter().enumerate() {
            let ed = euclidean_sq(data.dataset().row(i), &q);
            assert!(lb <= ed + 1e-9, "i={i}: {lb} > {ed}");
        }
        assert_eq!(batch.host_bytes_per_object, 24);
    }

    /// Streams `data` through a [`ResidentBuilder`] in blocks of
    /// `block` rows and asserts the result is indistinguishable from
    /// one-shot resident preparation: same bound, same plan, same Φ
    /// table, same per-crossbar wear, same stored rows, same query
    /// results, and appends behave identically afterwards.
    fn assert_streamed_matches_one_shot(
        c: ExecutorConfig,
        data: &NormalizedDataset,
        spare: usize,
        block: usize,
    ) {
        let ds = data.dataset();
        let mut one = PimExecutor::prepare_euclidean_resident(c, data, spare).unwrap();
        let mut builder =
            PimExecutor::begin_euclidean_resident(c, ds.len(), ds.dim(), spare).unwrap();
        let flat = ds.as_flat();
        for chunk in flat.chunks(block * ds.dim()) {
            builder.push_rows(chunk).unwrap();
        }
        let mut streamed = builder.finish().unwrap();

        assert_eq!(streamed.bound_name(), one.bound_name());
        assert_eq!(streamed.report().plan, one.report().plan);
        assert_eq!(streamed.report().cell_writes, one.report().cell_writes);
        assert_eq!(streamed.report().phi_bytes, one.report().phi_bytes);
        assert_eq!(
            streamed.report().crossbars_used,
            one.report().crossbars_used
        );
        assert!((streamed.report().program_ns - one.report().program_ns).abs() < 1e-6);
        for xb in 0..one.bank().pim().used_crossbars() {
            assert_eq!(
                streamed.bank().pim().crossbar_programs(xb),
                one.bank().pim().crossbar_programs(xb),
                "wear differs at crossbar {xb}"
            );
        }
        let q: Vec<f64> = (0..ds.dim()).map(|j| 0.1 + 0.07 * j as f64).collect();
        let a = one.lb_ed_batch(&q).unwrap();
        let b = streamed.lb_ed_batch(&q).unwrap();
        assert_eq!(a.values, b.values, "block={block}");
        // Appends into the spare rows behave identically afterwards.
        if spare > 0 {
            assert_eq!(streamed.spare_capacity().unwrap(), spare);
            let row: Vec<f64> = (0..ds.dim()).map(|j| 0.2 + 0.05 * j as f64).collect();
            assert_eq!(
                one.append_row(&row).unwrap(),
                streamed.append_row(&row).unwrap()
            );
            let a = one.lb_ed_batch(&q).unwrap();
            let b = streamed.lb_ed_batch(&q).unwrap();
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn streamed_builder_matches_one_shot_ed() {
        let data = sample_data();
        for block in [1, 2, 3, 8] {
            assert_streamed_matches_one_shot(cfg(4096), &data, 2, block);
        }
    }

    #[test]
    fn streamed_builder_matches_one_shot_fnn() {
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 7 + j * 13) % 97) as f64 / 96.0)
                    .collect()
            })
            .collect();
        let data = normalized(&rows);
        let streamed = PimExecutor::begin_euclidean_resident(cfg(8), 64, 8, 0).unwrap();
        assert!(streamed.plan().s < 8, "shape must be compressed");
        drop(streamed);
        for block in [1, 7, 64] {
            assert_streamed_matches_one_shot(cfg(8), &data, 0, block);
        }
    }

    #[test]
    fn streamed_builder_matches_one_shot_sm() {
        let rows: Vec<Vec<f64>> = (0..512)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 11 + j * 3) % 89) as f64 / 88.0)
                    .collect()
            })
            .collect();
        let data = normalized(&rows);
        let mut c = cfg(34);
        c.double_buffer = true;
        let one = PimExecutor::prepare_euclidean_resident(c, &data, 0).unwrap();
        assert!(one.bound_name().starts_with("LB_PIM-SM"));
        drop(one);
        for block in [1, 7, 512] {
            assert_streamed_matches_one_shot(c, &data, 0, block);
        }
    }

    #[test]
    fn streamed_builder_rejects_misdeclared_totals() {
        let data = sample_data();
        let ds = data.dataset();
        // Finishing early is rejected.
        let mut b = PimExecutor::begin_euclidean_resident(cfg(4096), 3, 8, 0).unwrap();
        b.push_rows(ds.row(0)).unwrap();
        assert!(b.finish().is_err());
        // Pushing past the declared total is rejected.
        let mut b = PimExecutor::begin_euclidean_resident(cfg(4096), 1, 8, 0).unwrap();
        b.push_rows(ds.row(0)).unwrap();
        assert!(b.push_rows(ds.row(1)).is_err());
        // Ragged blocks are rejected.
        let mut b = PimExecutor::begin_euclidean_resident(cfg(4096), 2, 8, 0).unwrap();
        assert!(b.push_rows(&ds.as_flat()[..5]).is_err());
    }

    #[test]
    fn forced_fnn_segmentation() {
        let data = sample_data();
        let mut exec = PimExecutor::prepare_fnn(cfg(4096), &data, 4).unwrap();
        assert_eq!(exec.bound_name(), "LB_PIM-FNN^4");
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        for (i, &lb) in batch.values.iter().enumerate() {
            assert!(lb <= euclidean_sq(data.dataset().row(i), &q) + 1e-9);
        }
        // Bad segmentations are rejected.
        assert!(PimExecutor::prepare_fnn(cfg(4096), &data, 3).is_err());
        assert!(PimExecutor::prepare_fnn(cfg(4096), &data, 0).is_err());
    }

    #[test]
    fn prepare_euclidean_falls_back_to_sm_under_extreme_pressure() {
        // Budget window where the single-region plan fits at some s but
        // FNN's two regions (x2 double-buffer) do not fit even at s = 1:
        // prepare_euclidean must degrade to the mean-only bound instead
        // of failing.
        let rows: Vec<Vec<f64>> = (0..512)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 11 + j * 3) % 89) as f64 / 88.0)
                    .collect()
            })
            .collect();
        let data = normalized(&rows);
        let mut c = cfg(34);
        c.double_buffer = true;
        let mut exec = PimExecutor::prepare_euclidean(c, &data).unwrap();
        assert!(
            exec.bound_name().starts_with("LB_PIM-SM"),
            "{}",
            exec.bound_name()
        );
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        for (i, &lb) in batch.values.iter().enumerate() {
            assert!(
                lb <= euclidean_sq(data.dataset().row(i), &q) + 1e-9,
                "i={i}"
            );
        }
    }

    #[test]
    fn sm_path_lower_bounds_exact_distance() {
        let data = sample_data();
        let mut exec = PimExecutor::prepare_sm(cfg(4096), &data, 4).unwrap();
        assert_eq!(exec.bound_name(), "LB_PIM-SM^4");
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        for (i, &lb) in batch.values.iter().enumerate() {
            assert!(
                lb <= euclidean_sq(data.dataset().row(i), &q) + 1e-9,
                "i={i}"
            );
        }
        assert_eq!(batch.host_bytes_per_object, 16);
        // One region: SM at the same segmentation is cheaper than FNN.
        let fnn = PimExecutor::prepare_fnn(cfg(4096), &data, 4).unwrap();
        assert!(exec.report().crossbars_used <= fnn.report().crossbars_used);
        assert!(PimExecutor::prepare_sm(cfg(4096), &data, 3).is_err());
    }

    #[test]
    fn similarity_paths_upper_bound() {
        let data = sample_data();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        for (target, name) in [
            (SimTarget::Cosine, "UB_PIM-CS"),
            (SimTarget::Pearson, "UB_PIM-PCC"),
        ] {
            let mut exec = PimExecutor::prepare_similarity(cfg(4096), &data, target).unwrap();
            assert_eq!(exec.bound_name(), name);
            let batch = exec.ub_sim_batch(&q).unwrap();
            for (i, &ub) in batch.values.iter().enumerate() {
                let exact = match target {
                    SimTarget::Cosine => cosine(data.dataset().row(i), &q),
                    SimTarget::Pearson => pearson(data.dataset().row(i), &q),
                };
                assert!(ub >= exact - 1e-9, "{name} i={i}: {ub} < {exact}");
            }
        }
    }

    #[test]
    fn hamming_path_is_exact() {
        let mut codes = BinaryDataset::with_bits(16).unwrap();
        let patterns: [u16; 4] = [0b1010_1100_0110_1001, 0xFFFF, 0x0000, 0b0001_0010_0100_1000];
        for p in patterns {
            let bits: Vec<bool> = (0..16).map(|i| (p >> i) & 1 == 1).collect();
            codes.push_bits(&bits).unwrap();
        }
        let mut exec = PimExecutor::prepare_hamming(cfg(4096), &codes).unwrap();
        assert_eq!(exec.bound_name(), "HD_PIM");
        let q = codes.row(0);
        let batch = exec.hd_batch(&q).unwrap();
        for i in 0..4 {
            assert_eq!(batch.values[i] as u32, q.hamming(&codes.row(i)), "i={i}");
        }
        assert_eq!(batch.values[0], 0.0);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let data = sample_data();
        let mut ed = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        assert!(ed.lb_ed_batch(&[0.5; 4]).is_err()); // wrong dims
        assert!(ed.ub_sim_batch(&[0.5; 8]).is_err()); // wrong shape
        let mut codes = BinaryDataset::with_bits(8).unwrap();
        codes.push_bits(&[true; 8]).unwrap();
        let mut hd = PimExecutor::prepare_hamming(cfg(4096), &codes).unwrap();
        assert!(hd.lb_ed_batch(&[0.5; 8]).is_err());
        let mut other = BinaryDataset::with_bits(16).unwrap();
        other.push_bits(&[false; 16]).unwrap();
        assert!(hd.hd_batch(&other.row(0)).is_err()); // wrong width
    }

    #[test]
    fn offline_report_tracks_writes_and_phi() {
        let data = sample_data();
        let exec = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let r = exec.report();
        assert!(r.cell_writes > 0);
        assert!(r.program_ns > 0.0);
        assert_eq!(r.phi_bytes, 3 * 8);
        assert!(r.crossbars_used > 0);
        assert_eq!(exec.bank().memory().used(), 24);
    }

    #[test]
    fn double_buffer_doubles_reservation() {
        let data = sample_data();
        let single = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let mut c = cfg(4096);
        c.double_buffer = true;
        let double = PimExecutor::prepare_euclidean(c, &data).unwrap();
        assert_eq!(
            double.report().crossbars_used,
            2 * single.report().crossbars_used
        );
    }

    #[test]
    fn inert_fault_model_changes_nothing() {
        let data = sample_data();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let mut clean = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let mut c = cfg(4096);
        c.faults = Some(FaultConfig::default());
        c.scrub_interval = 2;
        let mut faulty = PimExecutor::prepare_euclidean(c, &data).unwrap();
        for _ in 0..5 {
            let a = clean.lb_ed_batch(&q).unwrap();
            let b = faulty.lb_ed_batch(&q).unwrap();
            assert_eq!(a.values, b.values);
        }
        let fc = faulty.fault_counters();
        assert_eq!(fc.faults_detected, 0);
        assert_eq!(fc.guarded_bounds, 0);
        assert_eq!(fc.fallback_refinements, 0);
        assert!(fc.scrubs >= 3, "initial + periodic scrubs: {}", fc.scrubs);
        assert_eq!(faulty.report().fault_counters.scrubs, 1);
    }

    #[test]
    fn faulty_ed_bounds_stay_valid_and_counters_move() {
        let data = sample_data();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let mut saw_guarded = false;
        for seed in 0..8u64 {
            let mut c = cfg(4096);
            c.faults = Some(FaultConfig {
                stuck_low_rate: 0.02,
                stuck_high_rate: 0.02,
                seed,
                ..Default::default()
            });
            let mut exec = PimExecutor::prepare_euclidean(c, &data).unwrap();
            let batch = exec.lb_ed_batch(&q).unwrap();
            for (i, &lb) in batch.values.iter().enumerate() {
                let ed = euclidean_sq(data.dataset().row(i), &q);
                assert!(lb <= ed + 1e-9, "seed={seed} i={i}: {lb} > {ed}");
            }
            saw_guarded |= batch.fault_counters.guarded_bounds > 0;
        }
        assert!(saw_guarded, "some seed must drift an object");
    }

    #[test]
    fn dead_crossbars_fall_back_to_exact_host_bounds() {
        let data = sample_data();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let mut clean = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let expected = clean.lb_ed_batch(&q).unwrap().values;
        // Every wordline dead and zero spares: all objects quarantined.
        let mut c = cfg(4096);
        c.pim.num_crossbars = 2; // exactly the single-region allocation
        c.faults = Some(FaultConfig {
            dead_wordline_rate: 1.0,
            ..Default::default()
        });
        let mut exec = PimExecutor::prepare_euclidean(c, &data).unwrap();
        let batch = exec.lb_ed_batch(&q).unwrap();
        assert_eq!(batch.values, expected, "host fallback must be exact");
        assert!(batch.fault_counters.quarantined_rows > 0);
        assert_eq!(batch.fault_counters.fallback_refinements, 3);
        assert_eq!(batch.fault_counters.remapped_crossbars, 0);
    }

    #[test]
    fn remap_recovers_dead_crossbars_transparently() {
        let data = sample_data();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let mut clean = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let expected = clean.lb_ed_batch(&q).unwrap().values;
        // Moderate dead-line rates with plenty of spares: most spares are
        // clean, so dead crossbars remap and results are exact without any
        // per-query fallback work.
        let mut saw_remap = false;
        for seed in 0..16u64 {
            let mut c = cfg(4096);
            c.faults = Some(FaultConfig {
                dead_bitline_rate: 0.05,
                dead_wordline_rate: 0.05,
                seed,
                ..Default::default()
            });
            let mut exec = PimExecutor::prepare_euclidean(c, &data).unwrap();
            let batch = exec.lb_ed_batch(&q).unwrap();
            assert_eq!(batch.values, expected, "seed={seed}");
            assert_eq!(batch.fault_counters.quarantined_rows, 0, "seed={seed}");
            saw_remap |= batch.fault_counters.remapped_crossbars > 0;
        }
        assert!(saw_remap, "some seed must kill and remap a crossbar");
    }

    #[test]
    fn faulty_hamming_stays_exact() {
        let mut codes = BinaryDataset::with_bits(16).unwrap();
        let patterns: [u16; 4] = [0b1010_1100_0110_1001, 0xFFFF, 0x0000, 0b0001_0010_0100_1000];
        for p in patterns {
            let bits: Vec<bool> = (0..16).map(|i| (p >> i) & 1 == 1).collect();
            codes.push_bits(&bits).unwrap();
        }
        for seed in 0..8u64 {
            let mut c = cfg(4096);
            c.faults = Some(FaultConfig {
                stuck_low_rate: 0.05,
                dead_bitline_rate: 0.05,
                seed,
                ..Default::default()
            });
            let mut exec = PimExecutor::prepare_hamming(c, &codes).unwrap();
            let q = codes.row(0);
            let batch = exec.hd_batch(&q).unwrap();
            for i in 0..4 {
                assert_eq!(
                    batch.values[i] as u32,
                    q.hamming(&codes.row(i)),
                    "seed={seed} i={i}"
                );
            }
        }
    }

    #[test]
    fn faulty_similarity_bounds_stay_upper_bounds() {
        let data = sample_data();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        for seed in 0..8u64 {
            for target in [SimTarget::Cosine, SimTarget::Pearson] {
                let mut c = cfg(4096);
                c.faults = Some(FaultConfig {
                    stuck_low_rate: 0.03,
                    stuck_high_rate: 0.03,
                    seed,
                    ..Default::default()
                });
                let mut exec = PimExecutor::prepare_similarity(c, &data, target).unwrap();
                let batch = exec.ub_sim_batch(&q).unwrap();
                for (i, &ub) in batch.values.iter().enumerate() {
                    let exact = match target {
                        SimTarget::Cosine => cosine(data.dataset().row(i), &q),
                        SimTarget::Pearson => pearson(data.dataset().row(i), &q),
                    };
                    assert!(ub >= exact - 1e-9, "seed={seed} i={i}: {ub} < {exact}");
                }
            }
        }
    }

    #[test]
    fn exhausted_adc_retries_surface_as_core_errors() {
        let data = sample_data();
        let mut c = cfg(4096);
        c.faults = Some(FaultConfig {
            adc_glitch_rate: 1.0,
            adc_retry_limit: 2,
            ..Default::default()
        });
        let err = PimExecutor::prepare_euclidean(c, &data).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ReRam(simpim_reram::ReRamError::AdcRetryExhausted { .. })
        ));
    }

    #[test]
    fn resident_append_matches_offline_prepare() {
        // Prepare the first two rows with one spare slot, append the third
        // row online: bounds must be bit-identical to preparing all three
        // rows offline (same quantization, same per-object combine).
        let all = sample_data();
        let first_two = normalized(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        ]);
        let mut offline = PimExecutor::prepare_euclidean(cfg(4096), &all).unwrap();
        let mut resident =
            PimExecutor::prepare_euclidean_resident(cfg(4096), &first_two, 1).unwrap();
        assert_eq!(resident.spare_capacity().unwrap(), 1);
        let wear_before = resident.bank().pim().total_cell_writes();
        let idx = resident
            .append_row(&[0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4])
            .unwrap();
        assert_eq!(idx, 2);
        assert_eq!(resident.resident_len().unwrap(), 3);
        assert_eq!(resident.spare_capacity().unwrap(), 0);
        assert!(resident.bank().pim().total_cell_writes() > wear_before);
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let a = offline.lb_ed_batch(&q).unwrap();
        let b = resident.lb_ed_batch(&q).unwrap();
        assert_eq!(a.values, b.values);
        // Exhausted spares reject further appends.
        assert!(resident.append_row(&[0.5; 8]).is_err());
        // Wrong dimensionality is rejected before any mutation.
        assert!(matches!(
            resident.append_row(&[0.5; 4]),
            Err(CoreError::Mismatch { .. })
        ));
    }

    #[test]
    fn resident_append_works_on_compressed_shapes() {
        // Capacity pressure forces the FNN (or SM) shape; appends must
        // still land and the bounds stay valid lower bounds.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 7 + j * 13) % 97) as f64 / 96.0)
                    .collect()
            })
            .collect();
        let data = normalized(&rows);
        let mut exec = PimExecutor::prepare_euclidean_resident(cfg(8), &data, 4).unwrap();
        assert!(!exec.bound_name().starts_with("LB_PIM-ED"));
        let extra: Vec<f64> = (0..8).map(|j| (j as f64) / 7.0).collect();
        let idx = exec.append_row(&extra).unwrap();
        assert_eq!(idx, 60);
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let batch = exec.lb_ed_batch(&q).unwrap();
        assert_eq!(batch.values.len(), 61);
        let ed = euclidean_sq(&extra, &q);
        assert!(batch.values[60] <= ed + 1e-9);
    }

    #[test]
    fn multi_batch_matches_sequential_queries() {
        let data = sample_data();
        let queries: Vec<Vec<f64>> = vec![
            vec![0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45],
            vec![0.5; 8],
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        ];
        let mut a = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let mut b = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let multi = a.lb_ed_batch_multi(&queries).unwrap();
        for (q, m) in queries.iter().zip(&multi) {
            assert_eq!(b.lb_ed_batch(q).unwrap().values, m.values);
        }
    }

    #[test]
    fn resident_append_stays_exact_under_faults() {
        let first_two = normalized(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        ]);
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let mut clean = PimExecutor::prepare_euclidean_resident(cfg(4096), &first_two, 1).unwrap();
        clean
            .append_row(&[0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4])
            .unwrap();
        let expected = clean.lb_ed_batch(&q).unwrap().values;
        for seed in 0..4u64 {
            let mut c = cfg(4096);
            c.faults = Some(FaultConfig {
                dead_bitline_rate: 0.05,
                seed,
                ..Default::default()
            });
            let mut exec = PimExecutor::prepare_euclidean_resident(c, &first_two, 1).unwrap();
            exec.append_row(&[0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4])
                .unwrap();
            // The post-append scrub keeps health lookups available, so the
            // batch neither errors nor silently degrades.
            let batch = exec.lb_ed_batch(&q).unwrap();
            for (i, (&got, &want)) in batch.values.iter().zip(&expected).enumerate() {
                let ed = euclidean_sq(
                    if i < 2 {
                        first_two.dataset().row(i)
                    } else {
                        &[0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4]
                    },
                    &q,
                );
                assert!(got <= ed + 1e-9, "seed={seed} i={i}");
                // Remap (clean spares abound at 4096 crossbars) keeps the
                // values bit-identical to the fault-free run.
                assert_eq!(got, want, "seed={seed} i={i}");
            }
        }
    }

    #[test]
    fn queries_never_reprogram_crossbars() {
        let data = sample_data();
        let mut exec = PimExecutor::prepare_euclidean(cfg(4096), &data).unwrap();
        let wear = exec.bank().pim().total_cell_writes();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        for _ in 0..20 {
            exec.lb_ed_batch(&q).unwrap();
        }
        assert_eq!(exec.bank().pim().total_cell_writes(), wear);
    }
}

//! Execution-plan optimization (Section V-D, Eq. 13).
//!
//! Replacing one bound of an algorithm with its PIM-aware counterpart is
//! correct but not necessarily optimal: the PIM bound is so cheap (`3·b`
//! bits) and — thanks to Theorem 4's maximal `s` — often so tight that some
//! original bounds stop earning their transfer cost (Fig. 12). The paper
//! models an execution plan as a sequence of bounds `B₁ … B_g` drawn from
//! the candidate set (original bounds ∪ PIM-aware bound) and estimates its
//! data-transfer cost as
//!
//! ```text
//! T_cost = N · Σᵢ T_cost(Bᵢ) · Π_{j<i} (1 − Pr(Bⱼ))       (Eq. 13)
//! ```
//!
//! plus the exact-refinement cost on the objects surviving every bound.
//! `Pr(B)` is the bound's pruning ratio, measured offline on sample
//! queries ([`PruningProfile`]); with `L` candidates there are `2^L`
//! subsets to enumerate, each executed cheapest-bound-first.

use crate::error::CoreError;
use crate::memory::{resident_plan, MemoryPlan};
use simpim_bounds::{BoundDirection, BoundStage};
use simpim_obs::MetricsSnapshot;
use simpim_reram::PimConfig;
use simpim_similarity::{measures, Dataset, Measure};

/// One candidate bound for the planner: its per-object transfer cost and
/// its measured pruning ratio.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CandidateBound {
    /// Display name (`LB_FNN^7`, `LB_PIM-FNN^105`, …).
    pub name: String,
    /// Bytes transferred per bounded object (`T_cost(B)` in Eq. 13).
    pub transfer_bytes: u64,
    /// Measured pruning ratio `Pr(B) ∈ [0, 1]`.
    pub pruning_ratio: f64,
    /// Whether this is the PIM-aware bound (reported in plans).
    pub is_pim: bool,
}

impl CandidateBound {
    /// Builds the candidate set from live observations: the cascade engine
    /// in `simpim-mining` flushes `simpim.bounds.<name>.seen` /
    /// `.pruned` counters and a `.transfer_bytes` gauge per query, so the
    /// measured ratio `pruned / seen` feeds Eq. 13 directly — no separate
    /// offline [`PruningProfile`] pass needed when a workload has already
    /// run with metrics on. Bounds that never saw an object are skipped;
    /// names containing `PIM` are flagged [`CandidateBound::is_pim`]. The
    /// result is in the registry's (sorted) name order, so planning from a
    /// snapshot is deterministic.
    pub fn from_metrics(snapshot: &MetricsSnapshot) -> Vec<CandidateBound> {
        snapshot
            .middles("simpim.bounds.", ".seen")
            .into_iter()
            .filter_map(|name| {
                let seen = snapshot.counter(&format!("simpim.bounds.{name}.seen"))?;
                if seen == 0 {
                    return None;
                }
                let pruned = snapshot
                    .counter(&format!("simpim.bounds.{name}.pruned"))
                    .unwrap_or(0);
                let transfer_bytes = snapshot
                    .gauge(&format!("simpim.bounds.{name}.transfer_bytes"))
                    .unwrap_or(0.0)
                    .max(0.0) as u64;
                Some(CandidateBound {
                    is_pim: name.contains("PIM"),
                    pruning_ratio: (pruned as f64 / seen as f64).clamp(0.0, 1.0),
                    transfer_bytes,
                    name,
                })
            })
            .collect()
    }
}

/// A chosen plan: bound order plus its estimated transfer cost.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionPlan {
    /// Indices into the candidate list, in application order.
    pub stages: Vec<usize>,
    /// Stage names, in application order.
    pub names: Vec<String>,
    /// Estimated transfer bytes for one query over `n` objects, including
    /// exact refinement of the survivors.
    pub estimated_bytes: f64,
}

/// The Eq. 13 plan enumerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Planner {
    /// Bytes to refine one surviving object exactly (`d·b` bits → `d·8`
    /// bytes on f64 data).
    pub refine_bytes_per_object: u64,
    /// Number of dataset objects `N`.
    pub n: usize,
}

impl Planner {
    /// Estimated transfer bytes of executing `stages` (indices into
    /// `candidates`) in the given order, Eq. 13 plus refinement.
    pub fn plan_cost(&self, candidates: &[CandidateBound], stages: &[usize]) -> f64 {
        let mut surviving = 1.0f64;
        let mut bytes = 0.0f64;
        for &idx in stages {
            let b = &candidates[idx];
            bytes += self.n as f64 * surviving * b.transfer_bytes as f64;
            surviving *= 1.0 - b.pruning_ratio.clamp(0.0, 1.0);
        }
        bytes += self.n as f64 * surviving * self.refine_bytes_per_object as f64;
        bytes
    }

    /// Enumerates all `2^L` subsets of the candidate set, executes each
    /// cheapest-bound-first, and returns the plan with least estimated
    /// transfer (the empty subset — pure linear scan — is a valid plan).
    pub fn best_plan(&self, candidates: &[CandidateBound]) -> ExecutionPlan {
        let l = candidates.len();
        assert!(
            l <= 20,
            "2^L enumeration is exponential; cap the candidate set"
        );
        let _span = simpim_obs::span!("core.planner.enumerate", candidates = l as u64);
        // Candidate order within a plan: by ascending transfer cost, which
        // matches the filter pipelines of Fig. 12 (coarse, cheap bounds
        // first).
        let mut order: Vec<usize> = (0..l).collect();
        order.sort_by_key(|&i| (candidates[i].transfer_bytes, i));

        let mut best: Option<ExecutionPlan> = None;
        for mask in 0u32..(1u32 << l) {
            let stages: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| mask & (1 << i) != 0)
                .collect();
            let cost = self.plan_cost(candidates, &stages);
            if best.as_ref().is_none_or(|b| cost < b.estimated_bytes) {
                best = Some(ExecutionPlan {
                    names: stages.iter().map(|&i| candidates[i].name.clone()).collect(),
                    stages,
                    estimated_bytes: cost,
                });
            }
        }
        best.expect("at least the empty plan exists")
    }
}

impl Planner {
    /// Conditional plan search. Eq. 13 treats pruning ratios as
    /// independent, which overestimates stacked bounds: an object
    /// surviving a tight bound is rarely pruned by a looser one. This
    /// variant *simulates* every candidate subset's cascade on sample
    /// queries — measuring actual survivor counts — and returns the plan
    /// with least measured transfer. This is what reproduces the paper's
    /// Fig. 16 outcome (drop all original bounds, keep only
    /// `LB_PIM-FNN^105`).
    ///
    /// # Errors
    /// [`CoreError::Mismatch`] when the candidate set exceeds 16 stages,
    /// `k` is outside `1..=N`, or no sample queries are given; measure
    /// failures (e.g. Hamming on floats) forward from the similarity
    /// layer.
    pub fn best_plan_measured(
        &self,
        stages: &[&dyn BoundStage],
        dataset: &Dataset,
        queries: &[Vec<f64>],
        k: usize,
        measure: Measure,
    ) -> Result<ExecutionPlan, CoreError> {
        let l = stages.len();
        if l > 16 {
            return Err(CoreError::Mismatch {
                what: "2^L enumeration is exponential; cap the candidate set at 16",
            });
        }
        if k < 1 || k > dataset.len() {
            return Err(CoreError::Mismatch {
                what: "k must be in 1..=N",
            });
        }
        if queries.is_empty() {
            return Err(CoreError::Mismatch {
                what: "need at least one sample query",
            });
        }
        let _span = simpim_obs::span!("core.planner.enumerate", candidates = l as u64);
        let smaller_closer = measure.smaller_is_closer();
        let n = dataset.len();

        // Precompute per-query bound matrices and exact thresholds so each
        // of the 2^L subsets only replays cheap comparisons.
        let mut thresholds = Vec::with_capacity(queries.len());
        let mut bound_values: Vec<Vec<Vec<f64>>> = Vec::with_capacity(queries.len());
        for q in queries {
            let mut exact = Vec::with_capacity(n);
            for row in dataset.rows() {
                exact.push(measures::evaluate(measure, row, q)?);
            }
            exact.sort_by(f64::total_cmp);
            thresholds.push(if smaller_closer {
                exact[k - 1]
            } else {
                exact[exact.len() - k]
            });
            let per_stage: Vec<Vec<f64>> = stages
                .iter()
                .map(|s| {
                    let prep = s.prepare(q);
                    (0..n).map(|i| prep.bound(i)).collect()
                })
                .collect();
            bound_values.push(per_stage);
        }

        let mut order: Vec<usize> = (0..l).collect();
        order.sort_by_key(|&i| (stages[i].transfer_bytes_per_object(), i));

        let mut best: Option<ExecutionPlan> = None;
        for mask in 0u32..(1u32 << l) {
            let chosen: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| mask & (1 << i) != 0)
                .collect();
            let mut total_bytes = 0.0f64;
            for (qi, _) in queries.iter().enumerate() {
                let kth = thresholds[qi];
                let mut alive: Vec<usize> = (0..n).collect();
                for &si in &chosen {
                    total_bytes +=
                        alive.len() as f64 * stages[si].transfer_bytes_per_object() as f64;
                    let vals = &bound_values[qi][si];
                    alive.retain(|&i| {
                        if smaller_closer {
                            vals[i] <= kth
                        } else {
                            vals[i] >= kth
                        }
                    });
                }
                total_bytes += alive.len() as f64 * self.refine_bytes_per_object as f64;
            }
            let avg = total_bytes / queries.len() as f64;
            if best.as_ref().is_none_or(|b| avg < b.estimated_bytes) {
                best = Some(ExecutionPlan {
                    names: chosen.iter().map(|&i| stages[i].name()).collect(),
                    stages: chosen,
                    estimated_bytes: avg,
                });
            }
        }
        // Mask 0 (the empty plan) always ran, so `best` is populated.
        Ok(best.expect("at least the empty plan exists"))
    }
}

/// Offline pruning-ratio measurement (Section V-D): run each bound stage
/// independently over sample queries, thresholding with the exact k-th
/// nearest distance (or k-th largest similarity), and report the average
/// fraction of objects pruned.
#[derive(Debug, Clone, Copy, Default)]
pub struct PruningProfile;

impl PruningProfile {
    /// Measures `Pr(B)` for each stage against exact kNN thresholds on
    /// `queries`. Works for both bound directions; all stages must share
    /// the measure's direction.
    ///
    /// # Errors
    /// [`CoreError::Mismatch`] when `k` is outside `1..=N` or a stage's
    /// direction contradicts the measure; measure failures forward from
    /// the similarity layer.
    pub fn measure(
        stages: &[&dyn BoundStage],
        dataset: &Dataset,
        queries: &[Vec<f64>],
        k: usize,
        measure: Measure,
    ) -> Result<Vec<f64>, CoreError> {
        if k < 1 || k > dataset.len() {
            return Err(CoreError::Mismatch {
                what: "k must be in 1..=N",
            });
        }
        let smaller_closer = measure.smaller_is_closer();
        for s in stages {
            let expected = if smaller_closer {
                BoundDirection::LowerBoundsDistance
            } else {
                BoundDirection::UpperBoundsSimilarity
            };
            if s.direction() != expected {
                return Err(CoreError::Mismatch {
                    what: "stage direction mismatch: bound direction must match the measure",
                });
            }
        }

        let mut pruned = vec![0u64; stages.len()];
        let mut total = 0u64;
        for q in queries {
            // Exact k-th threshold.
            let mut sorted = Vec::with_capacity(dataset.len());
            for row in dataset.rows() {
                sorted.push(measures::evaluate(measure, row, q)?);
            }
            sorted.sort_by(f64::total_cmp);
            let kth = if smaller_closer {
                sorted[k - 1]
            } else {
                sorted[sorted.len() - k]
            };

            total += dataset.len() as u64;
            for (si, stage) in stages.iter().enumerate() {
                let prep = stage.prepare(q);
                for i in 0..dataset.len() {
                    let b = prep.bound(i);
                    let prunable = if smaller_closer { b > kth } else { b < kth };
                    if prunable {
                        pruned[si] += 1;
                    }
                }
            }
        }
        Ok(pruned
            .into_iter()
            .map(|p| {
                if total == 0 {
                    0.0
                } else {
                    p as f64 / total as f64
                }
            })
            .collect())
    }
}

/// One bank of the fleet, as the placement planner sees it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BankProfile {
    /// Crossbar budget of this bank.
    pub crossbars: usize,
    /// Worst per-crossbar program count so far (wear).
    pub wear: u64,
    /// Whether the bank is routable (not fail-stopped / quarantined).
    pub healthy: bool,
}

/// One shard of a [`FleetPlan`]: a contiguous row range placed on a bank
/// with the Theorem 4 plan its budget affords.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardPlacement {
    /// Index into the fleet's bank list.
    pub bank: usize,
    /// First dataset row of the shard.
    pub start: usize,
    /// Rows in the shard.
    pub rows: usize,
    /// Theorem 4 plan at this bank's budget (per-shard `s`).
    pub memory: MemoryPlan,
    /// The Eq. 13 bound pipeline chosen for this shard.
    pub pipeline: ExecutionPlan,
    /// Modeled per-query transfer bytes for this shard (Eq. 13 with the
    /// shard's `s`-adjusted pruning ratio, survivors refined exactly).
    pub modeled_bytes: f64,
}

/// A fleet-wide placement: shards in row order with the modeled
/// throughput the placement attains.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetPlan {
    /// Shard placements, contiguous and in row order.
    pub shards: Vec<ShardPlacement>,
    /// The slowest shard's modeled per-query transfer bytes — shards
    /// evaluate one query in parallel on their own banks, so this is the
    /// modeled per-query latency driver.
    pub makespan_bytes: f64,
    /// Modeled throughput in queries/s at a nominal 1 GB/s per-bank host
    /// link: `1e9 / makespan_bytes`. Machine-independent, so it can gate
    /// regressions across heterogeneous CI runners.
    pub modeled_qps: f64,
}

impl FleetPlan {
    fn from_shards(shards: Vec<ShardPlacement>, merge_bytes_per_shard: f64) -> Self {
        let makespan_bytes = shards
            .iter()
            .map(|s| s.modeled_bytes)
            .fold(0.0f64, f64::max)
            + merge_bytes_per_shard * shards.len() as f64;
        Self {
            modeled_qps: if makespan_bytes > 0.0 {
                1e9 / makespan_bytes
            } else {
                f64::INFINITY
            },
            makespan_bytes,
            shards,
        }
    }
}

/// Theorem 4 extended to a fleet of heterogeneous banks (DESIGN.md §15).
///
/// Given per-bank crossbar budgets, wear, and health, the planner chooses
/// contiguous shard boundaries and the per-shard reduced dimensionality
/// `s` (via [`resident_plan`] at each bank's budget) that maximize
/// modeled throughput under the Eq. 13 cost model. Shards evaluate a
/// query in parallel, so throughput is set by the slowest shard; the
/// search prefers fewer, less-worn banks and only spreads wider when the
/// makespan improves.
///
/// The PIM bound's pruning ratio is measured at one reference `s`
/// ([`FleetPlanner::pim_reference_s`], e.g. from live
/// [`CandidateBound::from_metrics`] counters) and rescaled to each
/// shard's `s` with the survivor model `survive(s) = survive_ref ·
/// s_ref / s` (clamped to `[0, 1]`): halving `s` doubles the surviving
/// fraction. This captures the paper's observation that compression
/// loosens the bound roughly in proportion to the segment count.
#[derive(Debug, Clone)]
pub struct FleetPlanner {
    /// Dataset dimensionality.
    pub d: usize,
    /// Operand width programmed on crossbars.
    pub operand_bits: u32,
    /// Regions reserved per shard (2 with double-buffering).
    pub buffer_factor: usize,
    /// Platform template; `num_crossbars` is overridden per bank.
    pub base_pim: PimConfig,
    /// Bytes to refine one surviving object exactly.
    pub refine_bytes_per_object: u64,
    /// Candidate bounds with measured pruning ratios; PIM candidates are
    /// rescaled to each shard's `s`.
    pub candidates: Vec<CandidateBound>,
    /// The `s` the PIM candidates' ratios were measured at.
    pub pim_reference_s: usize,
    /// Spare rows each shard reserves for online inserts.
    pub spare_rows: usize,
    /// Host-side cost of merging one more shard's candidate list into the
    /// global answer, in bytes per query. Every shard pays its Eq. 13
    /// transfer in parallel, but the merge is serial on the host, so the
    /// makespan grows by this much per shard used — which is what stops
    /// the planner from shattering small datasets across the whole fleet.
    pub merge_bytes_per_shard: f64,
}

impl FleetPlanner {
    /// The candidate set with every PIM bound's pruning ratio rescaled
    /// from the reference `s` to `s`.
    fn candidates_at(&self, s: usize) -> Vec<CandidateBound> {
        self.candidates
            .iter()
            .map(|c| {
                if c.is_pim && self.pim_reference_s > 0 && s > 0 {
                    let survive_ref = 1.0 - c.pruning_ratio.clamp(0.0, 1.0);
                    let survive =
                        (survive_ref * self.pim_reference_s as f64 / s as f64).clamp(0.0, 1.0);
                    CandidateBound {
                        pruning_ratio: 1.0 - survive,
                        ..c.clone()
                    }
                } else {
                    c.clone()
                }
            })
            .collect()
    }

    /// Evaluates one shard of `rows` objects on `bank`: Theorem 4 plan at
    /// the bank's budget, Eq. 13 pipeline at the plan's `s`. `None` when
    /// the shard does not fit the bank.
    fn eval_shard(&self, bank: &BankProfile, rows: usize) -> Option<(MemoryPlan, ExecutionPlan)> {
        let cfg = PimConfig {
            num_crossbars: bank.crossbars,
            ..self.base_pim
        };
        let (memory, _shape) = resident_plan(
            rows + self.spare_rows,
            self.d,
            self.buffer_factor,
            self.operand_bits,
            &cfg,
        )
        .ok()?;
        let planner = Planner {
            refine_bytes_per_object: self.refine_bytes_per_object,
            n: rows,
        };
        let pipeline = planner.best_plan(&self.candidates_at(memory.s));
        Some((memory, pipeline))
    }

    /// Largest row count `bank` can hold (0 when even one row overflows).
    fn max_rows(&self, bank: &BankProfile, upper: usize) -> usize {
        if self.eval_shard(bank, upper).is_some() {
            return upper;
        }
        let (mut lo, mut hi) = (0usize, upper);
        // Invariant: lo fits (or is 0), hi does not.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.eval_shard(bank, mid).is_some() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Builds the placement for `n` rows over `banks`, maximizing modeled
    /// throughput. Banks are considered in least-worn order (wear, then
    /// descending budget, then index); for each prefix size the rows are
    /// split proportionally to crossbar budgets and locally rebalanced
    /// away from the slowest shard, and the best prefix wins. Because the
    /// rebalance is local (Theorem 4's `s` makes shard cost a step
    /// function of the row count, so the proportional seed can stall in a
    /// local minimum), every feasible *equal* split in fleet index order —
    /// exactly the [`FleetPlanner::uniform`] baseline's placements — is
    /// also rebalanced and entered in the comparison: the returned plan
    /// never models worse than naive uniform sharding.
    ///
    /// # Errors
    /// [`CoreError::CannotFit`] when the healthy fleet cannot hold `n`
    /// rows; [`CoreError::Mismatch`] on an empty request.
    pub fn plan(&self, n: usize, banks: &[BankProfile]) -> Result<FleetPlan, CoreError> {
        if n == 0 || self.d == 0 {
            return Err(CoreError::Mismatch {
                what: "fleet placement needs a non-empty dataset",
            });
        }
        let _span = simpim_obs::span!("core.planner.fleet", banks = banks.len() as u64);
        // Preference order: least-worn feasible banks first.
        let mut order: Vec<usize> = (0..banks.len()).filter(|&i| banks[i].healthy).collect();
        order.sort_by_key(|&i| (banks[i].wear, usize::MAX - banks[i].crossbars, i));
        let caps: Vec<usize> = order.iter().map(|&i| self.max_rows(&banks[i], n)).collect();
        if caps.iter().sum::<usize>() < n {
            return Err(CoreError::CannotFit {
                n,
                crossbars: banks
                    .iter()
                    .filter(|b| b.healthy)
                    .map(|b| b.crossbars)
                    .sum(),
            });
        }

        let mut cap_by_bank = vec![0usize; banks.len()];
        for (&bank, &cap) in order.iter().zip(&caps) {
            cap_by_bank[bank] = cap;
        }

        let mut best: Option<(f64, Vec<(usize, usize)>)> = None;
        let consider = |split: Vec<(usize, usize)>, best: &mut Option<(f64, Vec<_>)>| {
            let makespan = self.makespan(&split, banks);
            if best
                .as_ref()
                .is_none_or(|(b, _)| makespan < *b - f64::EPSILON)
            {
                *best = Some((makespan, split));
            }
        };
        for m in 1..=order.len() {
            let caps_m = &caps[..m];
            if caps_m.iter().sum::<usize>() < n {
                continue;
            }
            if let Some(split) = self.split_rows(n, &order[..m], caps_m, banks) {
                consider(split, &mut best);
            }
            if let Some(split) = self.water_fill(n, &order[..m], caps_m, banks) {
                consider(split, &mut best);
            }
        }
        // Uniform-baseline seeds: equal chunks over index-order prefixes.
        let index_order: Vec<usize> = (0..banks.len()).filter(|&i| banks[i].healthy).collect();
        for m in 1..=index_order.len() {
            let prefix = &index_order[..m];
            let prefix_caps: Vec<usize> = prefix.iter().map(|&i| cap_by_bank[i]).collect();
            if let Some(split) = self.equal_split(n, prefix, &prefix_caps, banks) {
                consider(split, &mut best);
            }
        }
        let (_, split) = best.ok_or(CoreError::CannotFit {
            n,
            crossbars: banks.iter().map(|b| b.crossbars).sum(),
        })?;

        let mut shards = Vec::with_capacity(split.len());
        let mut start = 0usize;
        for (bank, rows) in split {
            let (memory, pipeline) = self
                .eval_shard(&banks[bank], rows)
                .expect("split only assigns feasible row counts");
            let planner = Planner {
                refine_bytes_per_object: self.refine_bytes_per_object,
                n: rows,
            };
            let modeled_bytes = planner.plan_cost(&self.candidates_at(memory.s), &pipeline.stages);
            shards.push(ShardPlacement {
                bank,
                start,
                rows,
                memory,
                pipeline,
                modeled_bytes,
            });
            start += rows;
        }
        Ok(FleetPlan::from_shards(shards, self.merge_bytes_per_shard))
    }

    /// Naive uniform sharding over the first `shards` healthy banks in
    /// index order (what `serve` did before fleet planning): equal row
    /// counts regardless of bank budgets. `None` when a chunk overflows
    /// its bank — uniform placement cannot even program such fleets.
    pub fn uniform(&self, n: usize, banks: &[BankProfile], shards: usize) -> Option<FleetPlan> {
        let chosen: Vec<usize> = (0..banks.len())
            .filter(|&i| banks[i].healthy)
            .take(shards)
            .collect();
        if chosen.len() < shards || shards == 0 || n == 0 {
            return None;
        }
        let chunk = n.div_ceil(shards);
        let mut placements = Vec::with_capacity(shards);
        let mut start = 0usize;
        for &bank in &chosen {
            let rows = chunk.min(n - start);
            if rows == 0 {
                break;
            }
            let (memory, pipeline) = self.eval_shard(&banks[bank], rows)?;
            let planner = Planner {
                refine_bytes_per_object: self.refine_bytes_per_object,
                n: rows,
            };
            let modeled_bytes = planner.plan_cost(&self.candidates_at(memory.s), &pipeline.stages);
            placements.push(ShardPlacement {
                bank,
                start,
                rows,
                memory,
                pipeline,
                modeled_bytes,
            });
            start += rows;
        }
        Some(FleetPlan::from_shards(
            placements,
            self.merge_bytes_per_shard,
        ))
    }

    /// Splits `n` rows over the banks of `order` (capped by `caps`):
    /// proportional-to-budget seed, then rows migrate away from the
    /// slowest shard while the makespan improves. Returns `(bank, rows)`
    /// pairs with every count feasible, or `None` when the split
    /// degenerates.
    fn split_rows(
        &self,
        n: usize,
        order: &[usize],
        caps: &[usize],
        banks: &[BankProfile],
    ) -> Option<Vec<(usize, usize)>> {
        let total_xb: usize = order.iter().map(|&i| banks[i].crossbars).sum();
        if total_xb == 0 {
            return None;
        }
        // Proportional seed, capped at per-bank feasibility.
        let mut rows: Vec<usize> = order
            .iter()
            .map(|&i| n * banks[i].crossbars / total_xb)
            .zip(caps)
            .map(|(r, &cap)| r.min(cap))
            .collect();
        // Distribute the rounding/cap remainder onto banks with slack.
        let mut left = n - rows.iter().sum::<usize>();
        while left > 0 {
            let mut moved = false;
            for (r, &cap) in rows.iter_mut().zip(caps) {
                if left == 0 {
                    break;
                }
                let take = left.min(cap - *r);
                *r += take;
                left -= take;
                moved |= take > 0;
            }
            if !moved {
                return None;
            }
        }

        let split: Vec<(usize, usize)> = order.iter().copied().zip(rows).collect();
        Some(self.rebalance(split, caps, banks))
    }

    /// The [`FleetPlanner::uniform`] baseline's equal-chunk split over
    /// `order`, rebalanced. `None` when a chunk overflows its bank (the
    /// uniform baseline cannot program such fleets either).
    fn equal_split(
        &self,
        n: usize,
        order: &[usize],
        caps: &[usize],
        banks: &[BankProfile],
    ) -> Option<Vec<(usize, usize)>> {
        let chunk = n.div_ceil(order.len());
        let mut split = Vec::with_capacity(order.len());
        let mut start = 0usize;
        for (&bank, &cap) in order.iter().zip(caps) {
            let rows = chunk.min(n - start);
            if rows > cap {
                return None;
            }
            split.push((bank, rows));
            start += rows;
        }
        if start < n {
            return None;
        }
        Some(self.rebalance(split, caps, banks))
    }

    /// Cost-equalizing seed (fleet water-filling): binary-search the
    /// bottleneck per-query transfer `T` and give every bank the most
    /// rows it can serve at cost `<= T`. Unlike the pairwise rebalance —
    /// which moves rows off *one* slowest shard and stalls when two
    /// equal banks tie for the bottleneck — this lowers every tied
    /// bottleneck together, so heterogeneous fleets with duplicated
    /// small banks still converge to a balanced split.
    fn water_fill(
        &self,
        n: usize,
        order: &[usize],
        caps: &[usize],
        banks: &[BankProfile],
    ) -> Option<Vec<(usize, usize)>> {
        // Most rows `bank` serves at cost <= t; shard cost is monotone
        // non-decreasing in the row count (more rows means more transfer
        // and, past each Theorem 4 threshold, a smaller `s`).
        let rows_under = |bank: usize, cap: usize, t: f64| -> usize {
            if cap == 0 || self.shard_cost(&banks[bank], cap) <= t {
                return cap;
            }
            let (mut lo, mut hi) = (0usize, cap);
            // Invariant: cost(lo) <= t, cost(hi) > t.
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if self.shard_cost(&banks[bank], mid) <= t {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let total_at = |t: f64| -> usize {
            order
                .iter()
                .zip(caps)
                .map(|(&b, &cap)| rows_under(b, cap, t))
                .sum()
        };
        let mut hi_t = order
            .iter()
            .zip(caps)
            .map(|(&b, &cap)| self.shard_cost(&banks[b], cap))
            .fold(0.0f64, f64::max);
        if total_at(hi_t) < n || hi_t <= 0.0 {
            return None;
        }
        let mut lo_t = 0.0f64;
        for _ in 0..64 {
            let mid = 0.5 * (lo_t + hi_t);
            if total_at(mid) >= n {
                hi_t = mid;
            } else {
                lo_t = mid;
            }
            if hi_t - lo_t <= hi_t * 1e-9 {
                break;
            }
        }
        let mut rows: Vec<usize> = order
            .iter()
            .zip(caps)
            .map(|(&b, &cap)| rows_under(b, cap, hi_t))
            .collect();
        // Trim the over-assignment (dropping rows never raises a cost).
        let mut excess = rows.iter().sum::<usize>().checked_sub(n)?;
        for r in rows.iter_mut().rev() {
            let take = excess.min(*r);
            *r -= take;
            excess -= take;
        }
        let split: Vec<(usize, usize)> = order.iter().copied().zip(rows).collect();
        Some(self.rebalance(split, caps, banks))
    }

    /// Local rebalance: shave rows off the slowest shard onto the
    /// fastest with slack while the makespan improves.
    fn rebalance(
        &self,
        mut split: Vec<(usize, usize)>,
        caps: &[usize],
        banks: &[BankProfile],
    ) -> Vec<(usize, usize)> {
        let mut makespan = self.makespan(&split, banks);
        for _ in 0..64 {
            let costs: Vec<f64> = split
                .iter()
                .map(|&(b, r)| self.shard_cost(&banks[b], r))
                .collect();
            let Some(hi) = costs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
            else {
                break;
            };
            let Some(lo) = costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
            else {
                break;
            };
            if hi == lo {
                break;
            }
            let mut improved = false;
            let mut delta = (split[hi].1 / 8).max(1);
            while delta > 0 {
                if split[hi].1 > delta && split[lo].1 + delta <= caps[lo] {
                    let mut trial = split.clone();
                    trial[hi].1 -= delta;
                    trial[lo].1 += delta;
                    let trial_makespan = self.makespan(&trial, banks);
                    if trial_makespan < makespan {
                        split = trial;
                        makespan = trial_makespan;
                        improved = true;
                        break;
                    }
                }
                delta /= 2;
            }
            if !improved {
                break;
            }
        }
        split.retain(|&(_, r)| r > 0);
        split
    }

    fn shard_cost(&self, bank: &BankProfile, rows: usize) -> f64 {
        if rows == 0 {
            return 0.0;
        }
        match self.eval_shard(bank, rows) {
            Some((memory, pipeline)) => Planner {
                refine_bytes_per_object: self.refine_bytes_per_object,
                n: rows,
            }
            .plan_cost(&self.candidates_at(memory.s), &pipeline.stages),
            None => f64::INFINITY,
        }
    }

    fn makespan(&self, split: &[(usize, usize)], banks: &[BankProfile]) -> f64 {
        let active = split.iter().filter(|&&(_, r)| r > 0).count();
        split
            .iter()
            .map(|&(b, r)| self.shard_cost(&banks[b], r))
            .fold(0.0f64, f64::max)
            + self.merge_bytes_per_shard * active as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(name: &str, bytes: u64, ratio: f64) -> CandidateBound {
        CandidateBound {
            name: name.to_string(),
            transfer_bytes: bytes,
            pruning_ratio: ratio,
            is_pim: false,
        }
    }

    #[test]
    fn eq13_hand_computed() {
        // N = 1000, bounds: (10 B, 90%), (100 B, 99%); refine 800 B.
        // Cost = 1000·10 + 1000·0.1·100 + 1000·0.1·0.01·800
        //      = 10 000 + 10 000 + 800 = 20 800.
        let p = Planner {
            refine_bytes_per_object: 800,
            n: 1000,
        };
        let cands = vec![cand("a", 10, 0.9), cand("b", 100, 0.99)];
        let cost = p.plan_cost(&cands, &[0, 1]);
        assert!((cost - 20_800.0).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_is_full_refinement() {
        let p = Planner {
            refine_bytes_per_object: 800,
            n: 1000,
        };
        assert!((p.plan_cost(&[], &[]) - 800_000.0).abs() < 1e-9);
    }

    #[test]
    fn independence_model_loves_stacking() {
        // Under Eq. 13's independence assumption, any cheap bound with a
        // nonzero marginal ratio reduces downstream cost — which is why the
        // conditional search below exists.
        let p = Planner {
            refine_bytes_per_object: 3360,
            n: 1_000_000,
        };
        let mut pim = cand("LB_PIM-FNN^105", 16, 0.99);
        pim.is_pim = true;
        let cands = vec![cand("LB_FNN^7", 7 * 16, 0.90), pim];
        let plan = p.best_plan(&cands);
        assert_eq!(plan.names.len(), 2, "independence keeps both bounds");
    }

    #[test]
    fn conditional_search_drops_shadowed_bounds() {
        // Fig. 16's conclusion: a cheap PIM bound that dominates the
        // original bounds displaces them once survivor correlation is
        // measured. Data: tight cluster + far cluster; a fine-grained
        // PIM-FNN bound prunes everything the coarse classic bound prunes.
        use crate::stage::PimFnnStage;
        use simpim_bounds::SmBound;
        use simpim_similarity::NormalizedDataset;

        let mut rows: Vec<Vec<f64>> = Vec::new();
        // 5 far points (segment means ≈ 0.5, prunable by any bound).
        for _ in 0..5 {
            rows.push(vec![0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1]);
        }
        // 40 decoys sharing the query's mean (0.12) but with high spread:
        // invisible to the mean-only LB_SM, pruned by PIM-FNN's σ term.
        for _ in 0..40 {
            rows.push(vec![0.02, 0.22, 0.02, 0.22, 0.02, 0.22, 0.02, 0.22]);
        }
        // 5 genuinely near constant points.
        for i in 0..5 {
            rows.push(vec![0.10 + 0.01 * i as f64; 8]);
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let classic = SmBound::build(&ds, 1).unwrap(); // 8 B/object, mean only
        let pim = PimFnnStage::build(&nds, 4, 1e6).unwrap(); // 24 B/object
        let planner = Planner {
            refine_bytes_per_object: 8 * 8,
            n: ds.len(),
        };
        let queries = vec![vec![0.12; 8], vec![0.12; 8]];
        let plan = planner
            .best_plan_measured(&[&classic, &pim], &ds, &queries, 3, Measure::EuclideanSq)
            .unwrap();
        assert_eq!(plan.names, vec!["LB_PIM-FNN^4"], "plan = {plan:?}");
        // The stacked plan is strictly worse once conditioning is measured.
        let stacked = planner
            .best_plan_measured(&[&classic], &ds, &queries, 3, Measure::EuclideanSq)
            .unwrap();
        assert!(plan.estimated_bytes < stacked.estimated_bytes);
    }

    #[test]
    fn weak_pim_bound_keeps_original_refinement_filter() {
        // If the PIM bound prunes little, a tighter original bound stays in
        // the pipeline behind it (the s < d/4 case of Section V-D).
        let p = Planner {
            refine_bytes_per_object: 3360,
            n: 1_000_000,
        };
        let mut pim = cand("LB_PIM-FNN^7", 16, 0.60);
        pim.is_pim = true;
        let cands = vec![cand("LB_FNN^105", 105 * 8, 0.985), pim.clone()];
        let plan = p.best_plan(&cands);
        assert_eq!(plan.names, vec!["LB_PIM-FNN^7", "LB_FNN^105"]);
        // And the combined plan beats either alone.
        let both = p.plan_cost(&cands, &[1, 0]);
        assert!(both < p.plan_cost(&cands, &[0]));
        assert!(both < p.plan_cost(&cands, &[1]));
    }

    #[test]
    fn useless_bound_is_dropped() {
        let p = Planner {
            refine_bytes_per_object: 100,
            n: 1000,
        };
        let cands = vec![cand("noop", 50, 0.0)];
        let plan = p.best_plan(&cands);
        assert!(plan.stages.is_empty(), "a non-pruning bound only adds cost");
        assert!((plan.estimated_bytes - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn stage_order_is_cheapest_first() {
        let p = Planner {
            refine_bytes_per_object: 10_000,
            n: 1000,
        };
        let cands = vec![cand("expensive", 500, 0.9), cand("cheap", 10, 0.5)];
        let plan = p.best_plan(&cands);
        assert_eq!(plan.names, vec!["cheap", "expensive"]);
    }

    #[test]
    fn pruning_ratio_measurement_matches_known_geometry() {
        use simpim_bounds::FnnBound;
        // Dataset: 9 far points + 1 near point; k = 1 with query at the
        // near point → the exact 1-NN threshold is ~0, and LB_FNN^d (exact
        // at segment length 1) prunes exactly the 9 far points.
        let mut rows: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![0.9 + 0.01 * i as f64, 0.9, 0.9, 0.9])
            .collect();
        rows.push(vec![0.1, 0.1, 0.1, 0.1]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let stage = FnnBound::build(&ds, 4).unwrap();
        let ratios = PruningProfile::measure(
            &[&stage],
            &ds,
            &[vec![0.1, 0.1, 0.1, 0.1]],
            1,
            Measure::EuclideanSq,
        )
        .unwrap();
        assert_eq!(ratios.len(), 1);
        assert!((ratios[0] - 0.9).abs() < 1e-9, "ratio {}", ratios[0]);
    }

    #[test]
    fn direction_mismatch_is_an_error() {
        use simpim_bounds::FnnBound;
        let ds = Dataset::from_rows(&[vec![0.1, 0.2]]).unwrap();
        let stage = FnnBound::build(&ds, 2).unwrap();
        let err = PruningProfile::measure(&[&stage], &ds, &[vec![0.1, 0.2]], 1, Measure::Cosine)
            .unwrap_err();
        assert!(err.to_string().contains("direction"), "{err}");
        let p = Planner {
            refine_bytes_per_object: 8,
            n: 1,
        };
        let err = p
            .best_plan_measured(&[&stage], &ds, &[], 1, Measure::EuclideanSq)
            .unwrap_err();
        assert!(err.to_string().contains("sample query"), "{err}");
    }

    fn fleet_planner(candidates: Vec<CandidateBound>, refine: u64) -> FleetPlanner {
        use simpim_reram::CrossbarConfig;
        FleetPlanner {
            d: 8,
            operand_bits: 16,
            buffer_factor: 1,
            base_pim: simpim_reram::PimConfig {
                crossbar: CrossbarConfig {
                    size: 16,
                    adc_bits: 10,
                    ..Default::default()
                },
                num_crossbars: 1,
                ..Default::default()
            },
            refine_bytes_per_object: refine,
            candidates,
            pim_reference_s: 8,
            spare_rows: 0,
            merge_bytes_per_shard: 1024.0,
        }
    }

    fn pim_cand(ratio: f64) -> CandidateBound {
        CandidateBound {
            name: "LB_PIM-FNN".to_string(),
            transfer_bytes: 24,
            pruning_ratio: ratio,
            is_pim: true,
        }
    }

    #[test]
    fn fleet_plan_beats_uniform_on_heterogeneous_banks() {
        // Bank 0 is small (8 crossbars), bank 1 is large (4096). Naive
        // uniform sharding puts half the rows on the small bank, forcing a
        // tiny s there — weak pruning, expensive refinement. The fleet
        // planner sizes shards to budgets (or skips the small bank
        // entirely), so its slowest shard is strictly cheaper.
        let fp = fleet_planner(vec![pim_cand(0.99)], 6400);
        let banks = [
            BankProfile {
                crossbars: 8,
                wear: 0,
                healthy: true,
            },
            BankProfile {
                crossbars: 4096,
                wear: 0,
                healthy: true,
            },
        ];
        let plan = fp.plan(256, &banks).unwrap();
        let uniform = fp.uniform(256, &banks, 2).unwrap();
        assert!(
            plan.modeled_qps > uniform.modeled_qps,
            "planned {} qps vs uniform {} qps",
            plan.modeled_qps,
            uniform.modeled_qps
        );
        // The placement is a contiguous partition of all 256 rows.
        let mut expect_start = 0;
        for s in &plan.shards {
            assert_eq!(s.start, expect_start);
            expect_start += s.rows;
        }
        assert_eq!(expect_start, 256);
        // Per-shard s reflects the hosting bank's budget.
        for s in &plan.shards {
            assert!(s.memory.total_crossbars() <= banks[s.bank].crossbars);
        }
    }

    #[test]
    fn fleet_plan_breaks_tied_small_bank_bottlenecks() {
        // Two *identical* small banks in front of two large ones: the
        // pairwise rebalance alone stalls here (moving rows off one small
        // bank leaves its twin as an equally slow bottleneck), which used
        // to make the planner tie — or lose to — the best uniform split.
        // Water-filling lowers both tied bottlenecks together, so the
        // plan must be strictly faster than every uniform baseline.
        let fp = fleet_planner(vec![pim_cand(0.99)], 6400);
        let bank = |crossbars: usize, wear: u64| BankProfile {
            crossbars,
            wear,
            healthy: true,
        };
        let banks = [bank(8, 0), bank(8, 0), bank(4096, 1), bank(4096, 2)];
        let plan = fp.plan(512, &banks).unwrap();
        let best_uniform = (1..=banks.len())
            .filter_map(|m| fp.uniform(512, &banks, m))
            .map(|p| p.modeled_qps)
            .fold(0.0f64, f64::max);
        assert!(
            plan.modeled_qps > best_uniform,
            "planned {} qps vs best uniform {} qps",
            plan.modeled_qps,
            best_uniform
        );
        let placed: usize = plan.shards.iter().map(|s| s.rows).sum();
        assert_eq!(placed, 512);
    }

    #[test]
    fn fleet_plan_prefers_least_worn_feasible_banks() {
        let fp = fleet_planner(vec![pim_cand(0.99)], 64);
        let banks = [
            BankProfile {
                crossbars: 4096,
                wear: 50,
                healthy: true,
            },
            BankProfile {
                crossbars: 4096,
                wear: 2,
                healthy: true,
            },
            BankProfile {
                crossbars: 4096,
                wear: 9,
                healthy: true,
            },
        ];
        let plan = fp.plan(8, &banks).unwrap();
        // A dataset this small gains nothing from spreading; it must land
        // on the single least-worn bank.
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].bank, 1);
    }

    #[test]
    fn fleet_plan_skips_unhealthy_banks_and_reports_cannot_fit() {
        let fp = fleet_planner(vec![pim_cand(0.99)], 64);
        let banks = [
            BankProfile {
                crossbars: 4096,
                wear: 0,
                healthy: false,
            },
            BankProfile {
                crossbars: 4096,
                wear: 7,
                healthy: true,
            },
        ];
        let plan = fp.plan(16, &banks).unwrap();
        assert!(plan.shards.iter().all(|s| s.bank == 1));
        // All banks dead → CannotFit.
        let dead = [BankProfile {
            crossbars: 4096,
            wear: 0,
            healthy: false,
        }];
        assert!(matches!(
            fp.plan(16, &dead),
            Err(CoreError::CannotFit { .. })
        ));
        // Budget too small even at s = 1 → CannotFit.
        let tiny = [BankProfile {
            crossbars: 1,
            wear: 0,
            healthy: true,
        }];
        assert!(matches!(
            fp.plan(1 << 20, &tiny),
            Err(CoreError::CannotFit { .. })
        ));
    }

    #[test]
    fn pim_ratio_rescales_with_shard_s() {
        let fp = fleet_planner(vec![pim_cand(0.99)], 64);
        let at8 = &fp.candidates_at(8)[0];
        assert!((at8.pruning_ratio - 0.99).abs() < 1e-12, "reference s");
        let at2 = &fp.candidates_at(2)[0];
        // survive = 0.01 · 8/2 = 0.04 → ratio 0.96.
        assert!((at2.pruning_ratio - 0.96).abs() < 1e-12);
        let at1 = &fp.candidates_at(1)[0];
        assert!((at1.pruning_ratio - 0.92).abs() < 1e-12);
        // Non-PIM candidates never rescale.
        let mut fp2 = fp.clone();
        fp2.candidates = vec![cand("LB_FNN^4", 32, 0.7)];
        assert!((fp2.candidates_at(1)[0].pruning_ratio - 0.7).abs() < 1e-12);
    }

    #[test]
    fn candidates_from_metrics_read_cascade_counters() {
        simpim_obs::metrics::reset();
        simpim_obs::metrics::counter_add("simpim.bounds.LB_FNN^16.seen", 1000);
        simpim_obs::metrics::counter_add("simpim.bounds.LB_FNN^16.pruned", 900);
        simpim_obs::metrics::gauge_set("simpim.bounds.LB_FNN^16.transfer_bytes", 128.0);
        simpim_obs::metrics::counter_add("simpim.bounds.LB_PIM-ED.seen", 1000);
        simpim_obs::metrics::counter_add("simpim.bounds.LB_PIM-ED.pruned", 990);
        simpim_obs::metrics::gauge_set("simpim.bounds.LB_PIM-ED.transfer_bytes", 16.0);
        // A bound that never saw an object must be skipped.
        simpim_obs::metrics::counter_add("simpim.bounds.LB_SM^8.seen", 0);
        let snap = simpim_obs::metrics::snapshot();
        let cands = CandidateBound::from_metrics(&snap);
        simpim_obs::metrics::reset();
        assert_eq!(cands.len(), 2, "{cands:?}");
        let fnn = cands.iter().find(|c| c.name == "LB_FNN^16").unwrap();
        assert!((fnn.pruning_ratio - 0.9).abs() < 1e-12);
        assert_eq!(fnn.transfer_bytes, 128);
        assert!(!fnn.is_pim);
        let pim = cands.iter().find(|c| c.name == "LB_PIM-ED").unwrap();
        assert!(pim.is_pim);
        assert!((pim.pruning_ratio - 0.99).abs() < 1e-12);
        // And the measured ratios drive Eq. 13 end to end.
        let planner = Planner {
            refine_bytes_per_object: 720,
            n: 1000,
        };
        let plan = planner.best_plan(&cands);
        assert!(!plan.stages.is_empty());
    }
}

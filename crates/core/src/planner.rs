//! Execution-plan optimization (Section V-D, Eq. 13).
//!
//! Replacing one bound of an algorithm with its PIM-aware counterpart is
//! correct but not necessarily optimal: the PIM bound is so cheap (`3·b`
//! bits) and — thanks to Theorem 4's maximal `s` — often so tight that some
//! original bounds stop earning their transfer cost (Fig. 12). The paper
//! models an execution plan as a sequence of bounds `B₁ … B_g` drawn from
//! the candidate set (original bounds ∪ PIM-aware bound) and estimates its
//! data-transfer cost as
//!
//! ```text
//! T_cost = N · Σᵢ T_cost(Bᵢ) · Π_{j<i} (1 − Pr(Bⱼ))       (Eq. 13)
//! ```
//!
//! plus the exact-refinement cost on the objects surviving every bound.
//! `Pr(B)` is the bound's pruning ratio, measured offline on sample
//! queries ([`PruningProfile`]); with `L` candidates there are `2^L`
//! subsets to enumerate, each executed cheapest-bound-first.

use crate::error::CoreError;
use simpim_bounds::{BoundDirection, BoundStage};
use simpim_obs::MetricsSnapshot;
use simpim_similarity::{measures, Dataset, Measure};

/// One candidate bound for the planner: its per-object transfer cost and
/// its measured pruning ratio.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CandidateBound {
    /// Display name (`LB_FNN^7`, `LB_PIM-FNN^105`, …).
    pub name: String,
    /// Bytes transferred per bounded object (`T_cost(B)` in Eq. 13).
    pub transfer_bytes: u64,
    /// Measured pruning ratio `Pr(B) ∈ [0, 1]`.
    pub pruning_ratio: f64,
    /// Whether this is the PIM-aware bound (reported in plans).
    pub is_pim: bool,
}

impl CandidateBound {
    /// Builds the candidate set from live observations: the cascade engine
    /// in `simpim-mining` flushes `simpim.bounds.<name>.seen` /
    /// `.pruned` counters and a `.transfer_bytes` gauge per query, so the
    /// measured ratio `pruned / seen` feeds Eq. 13 directly — no separate
    /// offline [`PruningProfile`] pass needed when a workload has already
    /// run with metrics on. Bounds that never saw an object are skipped;
    /// names containing `PIM` are flagged [`CandidateBound::is_pim`]. The
    /// result is in the registry's (sorted) name order, so planning from a
    /// snapshot is deterministic.
    pub fn from_metrics(snapshot: &MetricsSnapshot) -> Vec<CandidateBound> {
        snapshot
            .middles("simpim.bounds.", ".seen")
            .into_iter()
            .filter_map(|name| {
                let seen = snapshot.counter(&format!("simpim.bounds.{name}.seen"))?;
                if seen == 0 {
                    return None;
                }
                let pruned = snapshot
                    .counter(&format!("simpim.bounds.{name}.pruned"))
                    .unwrap_or(0);
                let transfer_bytes = snapshot
                    .gauge(&format!("simpim.bounds.{name}.transfer_bytes"))
                    .unwrap_or(0.0)
                    .max(0.0) as u64;
                Some(CandidateBound {
                    is_pim: name.contains("PIM"),
                    pruning_ratio: (pruned as f64 / seen as f64).clamp(0.0, 1.0),
                    transfer_bytes,
                    name,
                })
            })
            .collect()
    }
}

/// A chosen plan: bound order plus its estimated transfer cost.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionPlan {
    /// Indices into the candidate list, in application order.
    pub stages: Vec<usize>,
    /// Stage names, in application order.
    pub names: Vec<String>,
    /// Estimated transfer bytes for one query over `n` objects, including
    /// exact refinement of the survivors.
    pub estimated_bytes: f64,
}

/// The Eq. 13 plan enumerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Planner {
    /// Bytes to refine one surviving object exactly (`d·b` bits → `d·8`
    /// bytes on f64 data).
    pub refine_bytes_per_object: u64,
    /// Number of dataset objects `N`.
    pub n: usize,
}

impl Planner {
    /// Estimated transfer bytes of executing `stages` (indices into
    /// `candidates`) in the given order, Eq. 13 plus refinement.
    pub fn plan_cost(&self, candidates: &[CandidateBound], stages: &[usize]) -> f64 {
        let mut surviving = 1.0f64;
        let mut bytes = 0.0f64;
        for &idx in stages {
            let b = &candidates[idx];
            bytes += self.n as f64 * surviving * b.transfer_bytes as f64;
            surviving *= 1.0 - b.pruning_ratio.clamp(0.0, 1.0);
        }
        bytes += self.n as f64 * surviving * self.refine_bytes_per_object as f64;
        bytes
    }

    /// Enumerates all `2^L` subsets of the candidate set, executes each
    /// cheapest-bound-first, and returns the plan with least estimated
    /// transfer (the empty subset — pure linear scan — is a valid plan).
    pub fn best_plan(&self, candidates: &[CandidateBound]) -> ExecutionPlan {
        let l = candidates.len();
        assert!(
            l <= 20,
            "2^L enumeration is exponential; cap the candidate set"
        );
        let _span = simpim_obs::span!("core.planner.enumerate", candidates = l as u64);
        // Candidate order within a plan: by ascending transfer cost, which
        // matches the filter pipelines of Fig. 12 (coarse, cheap bounds
        // first).
        let mut order: Vec<usize> = (0..l).collect();
        order.sort_by_key(|&i| (candidates[i].transfer_bytes, i));

        let mut best: Option<ExecutionPlan> = None;
        for mask in 0u32..(1u32 << l) {
            let stages: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| mask & (1 << i) != 0)
                .collect();
            let cost = self.plan_cost(candidates, &stages);
            if best.as_ref().is_none_or(|b| cost < b.estimated_bytes) {
                best = Some(ExecutionPlan {
                    names: stages.iter().map(|&i| candidates[i].name.clone()).collect(),
                    stages,
                    estimated_bytes: cost,
                });
            }
        }
        best.expect("at least the empty plan exists")
    }
}

impl Planner {
    /// Conditional plan search. Eq. 13 treats pruning ratios as
    /// independent, which overestimates stacked bounds: an object
    /// surviving a tight bound is rarely pruned by a looser one. This
    /// variant *simulates* every candidate subset's cascade on sample
    /// queries — measuring actual survivor counts — and returns the plan
    /// with least measured transfer. This is what reproduces the paper's
    /// Fig. 16 outcome (drop all original bounds, keep only
    /// `LB_PIM-FNN^105`).
    ///
    /// # Errors
    /// [`CoreError::Mismatch`] when the candidate set exceeds 16 stages,
    /// `k` is outside `1..=N`, or no sample queries are given; measure
    /// failures (e.g. Hamming on floats) forward from the similarity
    /// layer.
    pub fn best_plan_measured(
        &self,
        stages: &[&dyn BoundStage],
        dataset: &Dataset,
        queries: &[Vec<f64>],
        k: usize,
        measure: Measure,
    ) -> Result<ExecutionPlan, CoreError> {
        let l = stages.len();
        if l > 16 {
            return Err(CoreError::Mismatch {
                what: "2^L enumeration is exponential; cap the candidate set at 16",
            });
        }
        if k < 1 || k > dataset.len() {
            return Err(CoreError::Mismatch {
                what: "k must be in 1..=N",
            });
        }
        if queries.is_empty() {
            return Err(CoreError::Mismatch {
                what: "need at least one sample query",
            });
        }
        let _span = simpim_obs::span!("core.planner.enumerate", candidates = l as u64);
        let smaller_closer = measure.smaller_is_closer();
        let n = dataset.len();

        // Precompute per-query bound matrices and exact thresholds so each
        // of the 2^L subsets only replays cheap comparisons.
        let mut thresholds = Vec::with_capacity(queries.len());
        let mut bound_values: Vec<Vec<Vec<f64>>> = Vec::with_capacity(queries.len());
        for q in queries {
            let mut exact = Vec::with_capacity(n);
            for row in dataset.rows() {
                exact.push(measures::evaluate(measure, row, q)?);
            }
            exact.sort_by(f64::total_cmp);
            thresholds.push(if smaller_closer {
                exact[k - 1]
            } else {
                exact[exact.len() - k]
            });
            let per_stage: Vec<Vec<f64>> = stages
                .iter()
                .map(|s| {
                    let prep = s.prepare(q);
                    (0..n).map(|i| prep.bound(i)).collect()
                })
                .collect();
            bound_values.push(per_stage);
        }

        let mut order: Vec<usize> = (0..l).collect();
        order.sort_by_key(|&i| (stages[i].transfer_bytes_per_object(), i));

        let mut best: Option<ExecutionPlan> = None;
        for mask in 0u32..(1u32 << l) {
            let chosen: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| mask & (1 << i) != 0)
                .collect();
            let mut total_bytes = 0.0f64;
            for (qi, _) in queries.iter().enumerate() {
                let kth = thresholds[qi];
                let mut alive: Vec<usize> = (0..n).collect();
                for &si in &chosen {
                    total_bytes +=
                        alive.len() as f64 * stages[si].transfer_bytes_per_object() as f64;
                    let vals = &bound_values[qi][si];
                    alive.retain(|&i| {
                        if smaller_closer {
                            vals[i] <= kth
                        } else {
                            vals[i] >= kth
                        }
                    });
                }
                total_bytes += alive.len() as f64 * self.refine_bytes_per_object as f64;
            }
            let avg = total_bytes / queries.len() as f64;
            if best.as_ref().is_none_or(|b| avg < b.estimated_bytes) {
                best = Some(ExecutionPlan {
                    names: chosen.iter().map(|&i| stages[i].name()).collect(),
                    stages: chosen,
                    estimated_bytes: avg,
                });
            }
        }
        // Mask 0 (the empty plan) always ran, so `best` is populated.
        Ok(best.expect("at least the empty plan exists"))
    }
}

/// Offline pruning-ratio measurement (Section V-D): run each bound stage
/// independently over sample queries, thresholding with the exact k-th
/// nearest distance (or k-th largest similarity), and report the average
/// fraction of objects pruned.
#[derive(Debug, Clone, Copy, Default)]
pub struct PruningProfile;

impl PruningProfile {
    /// Measures `Pr(B)` for each stage against exact kNN thresholds on
    /// `queries`. Works for both bound directions; all stages must share
    /// the measure's direction.
    ///
    /// # Errors
    /// [`CoreError::Mismatch`] when `k` is outside `1..=N` or a stage's
    /// direction contradicts the measure; measure failures forward from
    /// the similarity layer.
    pub fn measure(
        stages: &[&dyn BoundStage],
        dataset: &Dataset,
        queries: &[Vec<f64>],
        k: usize,
        measure: Measure,
    ) -> Result<Vec<f64>, CoreError> {
        if k < 1 || k > dataset.len() {
            return Err(CoreError::Mismatch {
                what: "k must be in 1..=N",
            });
        }
        let smaller_closer = measure.smaller_is_closer();
        for s in stages {
            let expected = if smaller_closer {
                BoundDirection::LowerBoundsDistance
            } else {
                BoundDirection::UpperBoundsSimilarity
            };
            if s.direction() != expected {
                return Err(CoreError::Mismatch {
                    what: "stage direction mismatch: bound direction must match the measure",
                });
            }
        }

        let mut pruned = vec![0u64; stages.len()];
        let mut total = 0u64;
        for q in queries {
            // Exact k-th threshold.
            let mut sorted = Vec::with_capacity(dataset.len());
            for row in dataset.rows() {
                sorted.push(measures::evaluate(measure, row, q)?);
            }
            sorted.sort_by(f64::total_cmp);
            let kth = if smaller_closer {
                sorted[k - 1]
            } else {
                sorted[sorted.len() - k]
            };

            total += dataset.len() as u64;
            for (si, stage) in stages.iter().enumerate() {
                let prep = stage.prepare(q);
                for i in 0..dataset.len() {
                    let b = prep.bound(i);
                    let prunable = if smaller_closer { b > kth } else { b < kth };
                    if prunable {
                        pruned[si] += 1;
                    }
                }
            }
        }
        Ok(pruned
            .into_iter()
            .map(|p| {
                if total == 0 {
                    0.0
                } else {
                    p as f64 / total as f64
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(name: &str, bytes: u64, ratio: f64) -> CandidateBound {
        CandidateBound {
            name: name.to_string(),
            transfer_bytes: bytes,
            pruning_ratio: ratio,
            is_pim: false,
        }
    }

    #[test]
    fn eq13_hand_computed() {
        // N = 1000, bounds: (10 B, 90%), (100 B, 99%); refine 800 B.
        // Cost = 1000·10 + 1000·0.1·100 + 1000·0.1·0.01·800
        //      = 10 000 + 10 000 + 800 = 20 800.
        let p = Planner {
            refine_bytes_per_object: 800,
            n: 1000,
        };
        let cands = vec![cand("a", 10, 0.9), cand("b", 100, 0.99)];
        let cost = p.plan_cost(&cands, &[0, 1]);
        assert!((cost - 20_800.0).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_is_full_refinement() {
        let p = Planner {
            refine_bytes_per_object: 800,
            n: 1000,
        };
        assert!((p.plan_cost(&[], &[]) - 800_000.0).abs() < 1e-9);
    }

    #[test]
    fn independence_model_loves_stacking() {
        // Under Eq. 13's independence assumption, any cheap bound with a
        // nonzero marginal ratio reduces downstream cost — which is why the
        // conditional search below exists.
        let p = Planner {
            refine_bytes_per_object: 3360,
            n: 1_000_000,
        };
        let mut pim = cand("LB_PIM-FNN^105", 16, 0.99);
        pim.is_pim = true;
        let cands = vec![cand("LB_FNN^7", 7 * 16, 0.90), pim];
        let plan = p.best_plan(&cands);
        assert_eq!(plan.names.len(), 2, "independence keeps both bounds");
    }

    #[test]
    fn conditional_search_drops_shadowed_bounds() {
        // Fig. 16's conclusion: a cheap PIM bound that dominates the
        // original bounds displaces them once survivor correlation is
        // measured. Data: tight cluster + far cluster; a fine-grained
        // PIM-FNN bound prunes everything the coarse classic bound prunes.
        use crate::stage::PimFnnStage;
        use simpim_bounds::SmBound;
        use simpim_similarity::NormalizedDataset;

        let mut rows: Vec<Vec<f64>> = Vec::new();
        // 5 far points (segment means ≈ 0.5, prunable by any bound).
        for _ in 0..5 {
            rows.push(vec![0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1]);
        }
        // 40 decoys sharing the query's mean (0.12) but with high spread:
        // invisible to the mean-only LB_SM, pruned by PIM-FNN's σ term.
        for _ in 0..40 {
            rows.push(vec![0.02, 0.22, 0.02, 0.22, 0.02, 0.22, 0.02, 0.22]);
        }
        // 5 genuinely near constant points.
        for i in 0..5 {
            rows.push(vec![0.10 + 0.01 * i as f64; 8]);
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let classic = SmBound::build(&ds, 1).unwrap(); // 8 B/object, mean only
        let pim = PimFnnStage::build(&nds, 4, 1e6).unwrap(); // 24 B/object
        let planner = Planner {
            refine_bytes_per_object: 8 * 8,
            n: ds.len(),
        };
        let queries = vec![vec![0.12; 8], vec![0.12; 8]];
        let plan = planner
            .best_plan_measured(&[&classic, &pim], &ds, &queries, 3, Measure::EuclideanSq)
            .unwrap();
        assert_eq!(plan.names, vec!["LB_PIM-FNN^4"], "plan = {plan:?}");
        // The stacked plan is strictly worse once conditioning is measured.
        let stacked = planner
            .best_plan_measured(&[&classic], &ds, &queries, 3, Measure::EuclideanSq)
            .unwrap();
        assert!(plan.estimated_bytes < stacked.estimated_bytes);
    }

    #[test]
    fn weak_pim_bound_keeps_original_refinement_filter() {
        // If the PIM bound prunes little, a tighter original bound stays in
        // the pipeline behind it (the s < d/4 case of Section V-D).
        let p = Planner {
            refine_bytes_per_object: 3360,
            n: 1_000_000,
        };
        let mut pim = cand("LB_PIM-FNN^7", 16, 0.60);
        pim.is_pim = true;
        let cands = vec![cand("LB_FNN^105", 105 * 8, 0.985), pim.clone()];
        let plan = p.best_plan(&cands);
        assert_eq!(plan.names, vec!["LB_PIM-FNN^7", "LB_FNN^105"]);
        // And the combined plan beats either alone.
        let both = p.plan_cost(&cands, &[1, 0]);
        assert!(both < p.plan_cost(&cands, &[0]));
        assert!(both < p.plan_cost(&cands, &[1]));
    }

    #[test]
    fn useless_bound_is_dropped() {
        let p = Planner {
            refine_bytes_per_object: 100,
            n: 1000,
        };
        let cands = vec![cand("noop", 50, 0.0)];
        let plan = p.best_plan(&cands);
        assert!(plan.stages.is_empty(), "a non-pruning bound only adds cost");
        assert!((plan.estimated_bytes - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn stage_order_is_cheapest_first() {
        let p = Planner {
            refine_bytes_per_object: 10_000,
            n: 1000,
        };
        let cands = vec![cand("expensive", 500, 0.9), cand("cheap", 10, 0.5)];
        let plan = p.best_plan(&cands);
        assert_eq!(plan.names, vec!["cheap", "expensive"]);
    }

    #[test]
    fn pruning_ratio_measurement_matches_known_geometry() {
        use simpim_bounds::FnnBound;
        // Dataset: 9 far points + 1 near point; k = 1 with query at the
        // near point → the exact 1-NN threshold is ~0, and LB_FNN^d (exact
        // at segment length 1) prunes exactly the 9 far points.
        let mut rows: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![0.9 + 0.01 * i as f64, 0.9, 0.9, 0.9])
            .collect();
        rows.push(vec![0.1, 0.1, 0.1, 0.1]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let stage = FnnBound::build(&ds, 4).unwrap();
        let ratios = PruningProfile::measure(
            &[&stage],
            &ds,
            &[vec![0.1, 0.1, 0.1, 0.1]],
            1,
            Measure::EuclideanSq,
        )
        .unwrap();
        assert_eq!(ratios.len(), 1);
        assert!((ratios[0] - 0.9).abs() < 1e-9, "ratio {}", ratios[0]);
    }

    #[test]
    fn direction_mismatch_is_an_error() {
        use simpim_bounds::FnnBound;
        let ds = Dataset::from_rows(&[vec![0.1, 0.2]]).unwrap();
        let stage = FnnBound::build(&ds, 2).unwrap();
        let err = PruningProfile::measure(&[&stage], &ds, &[vec![0.1, 0.2]], 1, Measure::Cosine)
            .unwrap_err();
        assert!(err.to_string().contains("direction"), "{err}");
        let p = Planner {
            refine_bytes_per_object: 8,
            n: 1,
        };
        let err = p
            .best_plan_measured(&[&stage], &ds, &[], 1, Measure::EuclideanSq)
            .unwrap_err();
        assert!(err.to_string().contains("sample query"), "{err}");
    }

    #[test]
    fn candidates_from_metrics_read_cascade_counters() {
        simpim_obs::metrics::reset();
        simpim_obs::metrics::counter_add("simpim.bounds.LB_FNN^16.seen", 1000);
        simpim_obs::metrics::counter_add("simpim.bounds.LB_FNN^16.pruned", 900);
        simpim_obs::metrics::gauge_set("simpim.bounds.LB_FNN^16.transfer_bytes", 128.0);
        simpim_obs::metrics::counter_add("simpim.bounds.LB_PIM-ED.seen", 1000);
        simpim_obs::metrics::counter_add("simpim.bounds.LB_PIM-ED.pruned", 990);
        simpim_obs::metrics::gauge_set("simpim.bounds.LB_PIM-ED.transfer_bytes", 16.0);
        // A bound that never saw an object must be skipped.
        simpim_obs::metrics::counter_add("simpim.bounds.LB_SM^8.seen", 0);
        let snap = simpim_obs::metrics::snapshot();
        let cands = CandidateBound::from_metrics(&snap);
        simpim_obs::metrics::reset();
        assert_eq!(cands.len(), 2, "{cands:?}");
        let fnn = cands.iter().find(|c| c.name == "LB_FNN^16").unwrap();
        assert!((fnn.pruning_ratio - 0.9).abs() < 1e-12);
        assert_eq!(fnn.transfer_bytes, 128);
        assert!(!fnn.is_pim);
        let pim = cands.iter().find(|c| c.name == "LB_PIM-ED").unwrap();
        assert!(pim.is_pim);
        assert!((pim.pruning_ratio - 0.99).abs() < 1e-12);
        // And the measured ratios drive Eq. 13 end to end.
        let planner = Planner {
            refine_bytes_per_object: 720,
            n: 1000,
        };
        let plan = planner.best_plan(&cands);
        assert!(!plan.stages.is_empty());
    }
}

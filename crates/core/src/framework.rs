//! The systematic framework of Section III-B: given profiling results for
//! an algorithm, decide whether PIM offloading is worthwhile.
//!
//! The recipe: profile the algorithm by function (Section IV-B), check the
//! bottleneck function is PIM-aware (Section V-A), estimate the oracle gain
//! `T_PIM-oracle = T_total − Σ_{f ∈ F} T_f` (Eq. 2), and offload only when
//! the potential speedup justifies it — the paper's Elkan-PIM result shows
//! a case where it barely does (bound updates, not ED, dominate Elkan).

use simpim_similarity::Measure;

use crate::decompose::is_pim_aware;

/// Eq. 2: the theoretical optimum when every offloadable function costs
/// zero. A lower bound on any PIM implementation's runtime.
pub fn pim_oracle_ns(total_ns: f64, offloadable_ns: f64) -> f64 {
    (total_ns - offloadable_ns).max(0.0)
}

/// The framework's verdict for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OffloadDecision {
    /// Whether offloading is recommended.
    pub offload: bool,
    /// `T_total / T_PIM-oracle` — the ceiling on achievable speedup.
    pub oracle_speedup: f64,
    /// Fraction of total time spent in offloadable functions.
    pub bottleneck_fraction: f64,
}

/// Applies the Section III-B decision: the bottleneck function must be
/// PIM-aware, and the oracle speedup must reach `min_speedup`.
///
/// # Panics
/// Panics when `offloadable_ns > total_ns` (inconsistent profile).
pub fn decide(
    measure: Measure,
    total_ns: f64,
    offloadable_ns: f64,
    min_speedup: f64,
) -> OffloadDecision {
    assert!(
        offloadable_ns <= total_ns + 1e-9,
        "offloadable time cannot exceed total time"
    );
    let oracle = pim_oracle_ns(total_ns, offloadable_ns);
    let oracle_speedup = if oracle > 0.0 {
        total_ns / oracle
    } else {
        f64::INFINITY
    };
    let bottleneck_fraction = if total_ns > 0.0 {
        offloadable_ns / total_ns
    } else {
        0.0
    };
    OffloadDecision {
        offload: is_pim_aware(measure) && oracle_speedup >= min_speedup,
        oracle_speedup,
        bottleneck_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_residual_time() {
        assert_eq!(pim_oracle_ns(100.0, 80.0), 20.0);
        assert_eq!(pim_oracle_ns(100.0, 120.0), 0.0);
    }

    #[test]
    fn standard_knn_style_profile_offloads() {
        // Fig. 7: PIM-oracle 183.9× faster than No-PIM for Standard kNN.
        let d = decide(Measure::EuclideanSq, 183.9, 182.9, 2.0);
        assert!(d.offload);
        assert!(d.oracle_speedup > 100.0);
        assert!(d.bottleneck_fraction > 0.99);
    }

    #[test]
    fn elkan_style_profile_declines() {
        // Elkan: ED is not dominant (bound updates are), oracle ≈ 2.2×.
        // With a 3× bar the framework declines — "Elkan-PIM illustrates an
        // example that PIM might be not considered to be exploited".
        let d = decide(Measure::EuclideanSq, 100.0, 100.0 - 100.0 / 2.2, 3.0);
        assert!(!d.offload);
        assert!((d.oracle_speedup - 2.2).abs() < 0.01);
    }

    #[test]
    fn fully_offloadable_profile_is_infinite() {
        let d = decide(Measure::Cosine, 50.0, 50.0, 2.0);
        assert!(d.offload);
        assert!(d.oracle_speedup.is_infinite());
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn inconsistent_profile_panics() {
        decide(Measure::EuclideanSq, 10.0, 20.0, 1.0);
    }
}

//! Declarative service-level objectives evaluated from histograms.
//!
//! An [`SloSpec`] is a list of objectives — latency-quantile bounds
//! (`p99 ≤ 2ms`) and availability floors (`≥ 99.9% of requests answered`)
//! — and evaluation turns each into an [`SloReport`] carrying the three
//! numbers SRE practice actually steers by:
//!
//! * **attainment** — the fraction of good events, compared against the
//!   objective's target;
//! * **error-budget remaining** — of the violations the objective allows
//!   (`(1 − target) × events`), the fraction not yet spent;
//! * **burn rate** — how fast the budget is being consumed: the observed
//!   violation rate divided by the allowed rate (1.0 = exactly on budget,
//!   above 1 = the objective will be missed if the window keeps looking
//!   like this).
//!
//! Latency objectives are evaluated from [`Histogram`]s to bucket
//! resolution (≤ 25% relative width; a bucket straddling the threshold
//! counts as *not* violating, so attainment is reported optimistically by
//! at most one bucket). Availability objectives are evaluated from exact
//! good/total event counts. Everything serializes to JSON for
//! `EngineStats`, bench artifacts, and the `simpim slo` CLI.

use crate::json::{Json, JsonError, ToJson};
use crate::metrics::Histogram;

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// `quantile` of the named latency histogram must be ≤ `threshold_ns`
    /// (e.g. `p99 ≤ 2_000_000 ns`).
    LatencyQuantile {
        /// Objective name (conventionally the stage it bounds, e.g.
        /// `serve.total`).
        name: String,
        /// The quantile, in (0, 1) (0.99 = p99).
        quantile: f64,
        /// Upper bound in nanoseconds.
        threshold_ns: u64,
    },
    /// At least `target` of all requests must succeed (0.999 = 99.9%).
    Availability {
        /// Objective name (e.g. `serve.availability`).
        name: String,
        /// Required success fraction in (0, 1].
        target: f64,
    },
}

impl SloObjective {
    /// The objective's name.
    pub fn name(&self) -> &str {
        match self {
            SloObjective::LatencyQuantile { name, .. } => name,
            SloObjective::Availability { name, .. } => name,
        }
    }

    /// Human-readable statement of the objective.
    pub fn describe(&self) -> String {
        match self {
            SloObjective::LatencyQuantile {
                quantile,
                threshold_ns,
                ..
            } => format!(
                "p{} <= {:.3}ms",
                (quantile * 100.0).round() as u64,
                *threshold_ns as f64 / 1e6
            ),
            SloObjective::Availability { target, .. } => {
                format!("availability >= {:.3}%", target * 100.0)
            }
        }
    }
}

impl ToJson for SloObjective {
    fn to_json(&self) -> Json {
        match self {
            SloObjective::LatencyQuantile {
                name,
                quantile,
                threshold_ns,
            } => Json::obj([
                ("kind", Json::Str("latency_quantile".into())),
                ("name", Json::Str(name.clone())),
                ("quantile", Json::Num(*quantile)),
                ("threshold_ns", Json::Num(*threshold_ns as f64)),
            ]),
            SloObjective::Availability { name, target } => Json::obj([
                ("kind", Json::Str("availability".into())),
                ("name", Json::Str(name.clone())),
                ("target", Json::Num(*target)),
            ]),
        }
    }
}

impl crate::json::FromJson for SloObjective {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind = v
            .require("kind")?
            .as_str()
            .ok_or_else(|| JsonError::shape("objective kind must be a string"))?;
        let name = v
            .require("name")?
            .as_str()
            .ok_or_else(|| JsonError::shape("objective name must be a string"))?
            .to_string();
        match kind {
            "latency_quantile" => Ok(SloObjective::LatencyQuantile {
                name,
                quantile: v
                    .require("quantile")?
                    .as_f64()
                    .ok_or_else(|| JsonError::shape("quantile"))?,
                threshold_ns: v
                    .require("threshold_ns")?
                    .as_u64()
                    .ok_or_else(|| JsonError::shape("threshold_ns"))?,
            }),
            "availability" => Ok(SloObjective::Availability {
                name,
                target: v
                    .require("target")?
                    .as_f64()
                    .ok_or_else(|| JsonError::shape("target"))?,
            }),
            other => Err(JsonError::shape(format!(
                "unknown objective kind {other:?}"
            ))),
        }
    }
}

/// A set of objectives evaluated together.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    /// The objectives, evaluated independently.
    pub objectives: Vec<SloObjective>,
}

impl SloSpec {
    /// A spec with no objectives (evaluation yields no reports).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a latency-quantile objective (builder style).
    pub fn latency(mut self, name: &str, quantile: f64, threshold_ns: u64) -> Self {
        self.objectives.push(SloObjective::LatencyQuantile {
            name: name.to_string(),
            quantile,
            threshold_ns,
        });
        self
    }

    /// Adds an availability objective (builder style).
    pub fn availability(mut self, name: &str, target: f64) -> Self {
        self.objectives.push(SloObjective::Availability {
            name: name.to_string(),
            target,
        });
        self
    }

    /// Whether there is anything to evaluate.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }
}

impl ToJson for SloSpec {
    fn to_json(&self) -> Json {
        Json::Arr(self.objectives.iter().map(ToJson::to_json).collect())
    }
}

impl crate::json::FromJson for SloSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let arr = v
            .as_arr()
            .ok_or_else(|| JsonError::shape("slo spec must be an array"))?;
        let mut objectives = Vec::with_capacity(arr.len());
        for o in arr {
            objectives.push(crate::json::FromJson::from_json(o)?);
        }
        Ok(Self { objectives })
    }
}

/// The evaluated state of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Objective name.
    pub name: String,
    /// `"latency_quantile"` or `"availability"`.
    pub kind: String,
    /// Human-readable objective, e.g. `p99 <= 2.000ms`.
    pub objective: String,
    /// Total events considered (latency samples or requests).
    pub events: u64,
    /// Events violating the objective (samples over threshold, or failed
    /// requests).
    pub violations: u64,
    /// Observed value: the latency quantile in ns, or the availability
    /// fraction.
    pub observed: f64,
    /// Fraction of good events in [0, 1].
    pub attainment: f64,
    /// Whether the objective is currently met.
    pub attained: bool,
    /// Fraction of the error budget still unspent, in [−∞, 1]; negative
    /// once the objective is blown.
    pub budget_remaining: f64,
    /// Observed violation rate over allowed violation rate; 1.0 = exactly
    /// on budget.
    pub burn_rate: f64,
}

impl ToJson for SloReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("objective", Json::Str(self.objective.clone())),
            ("events", Json::Num(self.events as f64)),
            ("violations", Json::Num(self.violations as f64)),
            ("observed", Json::Num(self.observed)),
            ("attainment", Json::Num(self.attainment)),
            ("attained", Json::Bool(self.attained)),
            ("budget_remaining", Json::Num(self.budget_remaining)),
            ("burn_rate", Json::Num(self.burn_rate)),
        ])
    }
}

impl crate::json::FromJson for SloReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let get_str = |k: &str| -> Result<String, JsonError> {
            Ok(v.require(k)?
                .as_str()
                .ok_or_else(|| JsonError::shape(format!("{k} must be a string")))?
                .to_string())
        };
        let get_f64 = |k: &str| -> Result<f64, JsonError> {
            v.require(k)?
                .as_f64()
                .ok_or_else(|| JsonError::shape(format!("{k} must be a number")))
        };
        Ok(Self {
            name: get_str("name")?,
            kind: get_str("kind")?,
            objective: get_str("objective")?,
            events: get_f64("events")? as u64,
            violations: get_f64("violations")? as u64,
            observed: get_f64("observed")?,
            attainment: get_f64("attainment")?,
            attained: v
                .require("attained")?
                .as_bool()
                .ok_or_else(|| JsonError::shape("attained must be a bool"))?,
            budget_remaining: get_f64("budget_remaining")?,
            burn_rate: get_f64("burn_rate")?,
        })
    }
}

/// Shared budget math: given good/bad counts and the allowed bad
/// fraction, derive attainment, budget remaining, and burn rate. With no
/// events everything is vacuously attained with a full budget.
fn budget_report(events: u64, violations: u64, allowed_bad_fraction: f64) -> (f64, bool, f64, f64) {
    if events == 0 {
        return (1.0, true, 1.0, 0.0);
    }
    let bad = violations as f64 / events as f64;
    let attainment = 1.0 - bad;
    let allowed = allowed_bad_fraction.max(0.0);
    if allowed <= 0.0 {
        // Zero-tolerance objective: any violation blows the budget.
        let attained = violations == 0;
        let budget = if attained { 1.0 } else { f64::NEG_INFINITY };
        let burn = if attained { 0.0 } else { f64::INFINITY };
        return (attainment, attained, budget, burn);
    }
    let burn = bad / allowed;
    (attainment, bad <= allowed, 1.0 - burn, burn)
}

/// Evaluates a latency-quantile objective against a histogram of
/// nanosecond samples.
pub fn evaluate_latency(
    name: &str,
    quantile: f64,
    threshold_ns: u64,
    hist: &Histogram,
) -> SloReport {
    let violations = hist.count_over(threshold_ns);
    let (attainment, attained, budget_remaining, burn_rate) =
        budget_report(hist.count, violations, 1.0 - quantile);
    SloReport {
        name: name.to_string(),
        kind: "latency_quantile".into(),
        objective: SloObjective::LatencyQuantile {
            name: name.to_string(),
            quantile,
            threshold_ns,
        }
        .describe(),
        events: hist.count,
        violations,
        observed: hist.quantile(quantile) as f64,
        attainment,
        attained,
        budget_remaining,
        burn_rate,
    }
}

/// Evaluates an availability objective from exact good/total counts.
pub fn evaluate_availability(name: &str, target: f64, good: u64, total: u64) -> SloReport {
    let violations = total.saturating_sub(good);
    let (attainment, attained, budget_remaining, burn_rate) =
        budget_report(total, violations, 1.0 - target);
    SloReport {
        name: name.to_string(),
        kind: "availability".into(),
        objective: SloObjective::Availability {
            name: name.to_string(),
            target,
        }
        .describe(),
        events: total,
        violations,
        observed: attainment,
        attainment,
        attained,
        budget_remaining,
        burn_rate,
    }
}

/// Evaluates every objective in a spec. Latency objectives read the
/// histogram returned by `hist_for(name)`; availability objectives read
/// the `(good, total)` pair from `counts_for(name)`. Objectives whose
/// source is missing evaluate against empty data (vacuously attained) so
/// a misnamed objective is visible as `events = 0` rather than silently
/// skipped.
pub fn evaluate_spec(
    spec: &SloSpec,
    mut hist_for: impl FnMut(&str) -> Option<Histogram>,
    mut counts_for: impl FnMut(&str) -> Option<(u64, u64)>,
) -> Vec<SloReport> {
    spec.objectives
        .iter()
        .map(|o| match o {
            SloObjective::LatencyQuantile {
                name,
                quantile,
                threshold_ns,
            } => {
                let hist = hist_for(name).unwrap_or_default();
                evaluate_latency(name, *quantile, *threshold_ns, &hist)
            }
            SloObjective::Availability { name, target } => {
                let (good, total) = counts_for(name).unwrap_or((0, 0));
                evaluate_availability(name, *target, good, total)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::FromJson;

    fn ns_hist(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn latency_objective_attained_with_full_budget() {
        // 100 samples at 1ms against p99 ≤ 2ms: zero violations.
        let h = ns_hist(&vec![1_000_000; 100]);
        let r = evaluate_latency("serve.total", 0.99, 2_000_000, &h);
        assert!(r.attained);
        assert_eq!(r.violations, 0);
        assert_eq!(r.events, 100);
        assert!((r.attainment - 1.0).abs() < 1e-12);
        assert!((r.budget_remaining - 1.0).abs() < 1e-12);
        assert_eq!(r.burn_rate, 0.0);
        assert_eq!(r.objective, "p99 <= 2.000ms");
    }

    #[test]
    fn latency_objective_burns_budget_proportionally() {
        // 2% of samples over threshold against p99 (1% allowed): burn 2x.
        let mut samples = vec![1_000u64; 98];
        samples.extend([10_000_000, 10_000_000]);
        let h = ns_hist(&samples);
        let r = evaluate_latency("serve.total", 0.99, 2_000_000, &h);
        assert!(!r.attained);
        assert_eq!(r.violations, 2);
        assert!((r.burn_rate - 2.0).abs() < 1e-9, "burn = {}", r.burn_rate);
        assert!((r.budget_remaining - (-1.0)).abs() < 1e-9);
        assert!((r.attainment - 0.98).abs() < 1e-12);
    }

    #[test]
    fn availability_objective_math() {
        // 999 good of 1000 against 99.9%: exactly on budget.
        let r = evaluate_availability("serve.availability", 0.999, 999, 1000);
        assert!(r.attained);
        assert_eq!(r.violations, 1);
        assert!((r.burn_rate - 1.0).abs() < 1e-9);
        assert!(r.budget_remaining.abs() < 1e-9);
        // 990 good of 1000: 10x burn, blown.
        let r = evaluate_availability("serve.availability", 0.999, 990, 1000);
        assert!(!r.attained);
        assert!((r.burn_rate - 10.0).abs() < 1e-9);
        assert!(r.budget_remaining < 0.0);
    }

    #[test]
    fn empty_data_is_vacuously_attained() {
        let r = evaluate_latency("x", 0.99, 1, &Histogram::new());
        assert!(r.attained);
        assert_eq!(r.events, 0);
        let r = evaluate_availability("x", 0.999, 0, 0);
        assert!(r.attained);
    }

    #[test]
    fn spec_evaluation_and_json_roundtrip() {
        let spec = SloSpec::empty()
            .latency("serve.total", 0.99, 2_000_000)
            .availability("serve.availability", 0.999);
        let text = spec.to_json().to_string();
        let back = SloSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);

        let h = ns_hist(&[1_000; 10]);
        let reports = evaluate_spec(
            &back,
            |name| (name == "serve.total").then(|| h.clone()),
            |name| (name == "serve.availability").then_some((10, 10)),
        );
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.attained));
        // Reports round-trip too (the CLI re-reads them from artifacts).
        for r in &reports {
            let back =
                SloReport::from_json(&Json::parse(&r.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn missing_sources_show_up_as_zero_events() {
        let spec = SloSpec::empty().latency("no.such.stage", 0.5, 100);
        let reports = evaluate_spec(&spec, |_| None, |_| None);
        assert_eq!(reports[0].events, 0);
        assert!(reports[0].attained, "vacuous, not silently dropped");
    }
}

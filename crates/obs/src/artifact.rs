//! Schema-versioned run artifacts.
//!
//! A [`RunArtifact`] is the single JSON document a bench binary emits per
//! run (`BENCH_<name>.json`): schema version, provenance (`git describe`),
//! dataset spec, configuration, a per-stage breakdown, aggregate totals,
//! and a full metrics-registry snapshot. Artifacts are the unit the
//! `simpim report` CLI renders and diffs, and the unit CI validates and
//! uploads, so the schema is versioned and loading rejects documents whose
//! major version does not match [`SCHEMA_VERSION`].

use std::fmt::Write as _;

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Artifact schema version. Bump on breaking layout changes; loading
/// rejects mismatches.
pub const SCHEMA_VERSION: u64 = 1;

/// One pipeline stage's aggregate contribution to a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageRecord {
    /// Stage name (e.g. `filter`, `refine`, `scrub`, or a bound name).
    pub name: String,
    /// Wall/model time attributed to the stage, in nanoseconds.
    pub time_ns: u64,
    /// Number of invocations.
    pub calls: u64,
    /// Arithmetic-operation count attributed to the stage.
    pub ops: u64,
    /// Bytes moved by the stage (streamed + random + written).
    pub bytes: u64,
}

impl ToJson for StageRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("time_ns", self.time_ns.to_json()),
            ("calls", self.calls.to_json()),
            ("ops", self.ops.to_json()),
            ("bytes", self.bytes.to_json()),
        ])
    }
}

impl FromJson for StageRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let get_u64 = |key: &str| -> Result<u64, JsonError> {
            v.require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::shape(format!("stage {key} must be a u64")))
        };
        Ok(Self {
            name: v
                .require("name")?
                .as_str()
                .ok_or_else(|| JsonError::shape("stage name must be a string"))?
                .to_string(),
            time_ns: get_u64("time_ns")?,
            calls: get_u64("calls")?,
            ops: get_u64("ops")?,
            bytes: get_u64("bytes")?,
        })
    }
}

/// The schema-versioned document a bench run emits.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// Schema version; always [`SCHEMA_VERSION`] for freshly built values.
    pub schema_version: u64,
    /// Run name (bench binary / scenario, e.g. `fig13_knn`).
    pub name: String,
    /// `git describe --always --dirty` output, when available.
    pub git: Option<String>,
    /// Dataset specification (name, n, d, ...), as emitted by the run.
    pub dataset: Json,
    /// Run configuration (scale, algorithm parameters, executor config).
    pub config: Json,
    /// Per-stage breakdown.
    pub stages: Vec<StageRecord>,
    /// Aggregate totals (e.g. the Eq. 1 time-breakdown components).
    pub totals: Json,
    /// Metrics-registry snapshot at run end.
    pub metrics: Json,
    /// Free-form extensions (per-figure series, speedups, notes).
    pub extra: Vec<(String, Json)>,
}

impl RunArtifact {
    /// An empty artifact for run `name` at the current schema version.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            name: name.into(),
            git: None,
            dataset: Json::Null,
            config: Json::Null,
            stages: Vec::new(),
            totals: Json::Null,
            metrics: Json::Null,
            extra: Vec::new(),
        }
    }

    /// Appends a free-form extension section.
    pub fn push_extra(&mut self, key: impl Into<String>, value: Json) {
        self.extra.push((key.into(), value));
    }

    /// Total time across stages, in nanoseconds.
    pub fn total_time_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.time_ns).sum()
    }

    /// Parses an artifact from JSON text (schema-checked).
    pub fn from_json_text(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes to pretty JSON text (the `BENCH_<name>.json` format).
    pub fn to_json_text(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Structural sanity checks beyond what [`FromJson`] enforces; used by
    /// the CI validation step. Returns the list of problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.schema_version != SCHEMA_VERSION {
            problems.push(format!(
                "schema_version {} != supported {}",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        if self.name.is_empty() {
            problems.push("empty run name".to_string());
        }
        if self.stages.is_empty() {
            problems.push("no stages recorded".to_string());
        }
        for s in &self.stages {
            if s.name.is_empty() {
                problems.push("stage with empty name".to_string());
            }
        }
        if self.metrics.as_obj().is_none() {
            problems.push("metrics section missing or not an object".to_string());
        }
        problems
    }

    /// Renders the per-stage breakdown as an aligned text table.
    pub fn render_table(&self) -> String {
        let total = self.total_time_ns().max(1) as f64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run {:?}  schema v{}  git {}",
            self.name,
            self.schema_version,
            self.git.as_deref().unwrap_or("-")
        );
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>7} {:>10} {:>14} {:>14}",
            "stage", "time", "share", "calls", "ops", "bytes"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>6.1}% {:>10} {:>14} {:>14}",
                s.name,
                fmt_ns(s.time_ns),
                100.0 * s.time_ns as f64 / total,
                s.calls,
                s.ops,
                s.bytes
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>7}",
            "total",
            fmt_ns(self.total_time_ns()),
            "100.0%"
        );
        out
    }

    /// Renders a comparison of two artifacts with percentage deltas,
    /// matching stages by name (`self` = baseline, `other` = candidate).
    pub fn render_diff(&self, other: &RunArtifact) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "baseline  {:?} (git {})",
            self.name,
            self.git.as_deref().unwrap_or("-")
        );
        let _ = writeln!(
            out,
            "candidate {:?} (git {})",
            other.name,
            other.git.as_deref().unwrap_or("-")
        );
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>9}",
            "stage", "baseline", "candidate", "delta"
        );
        let mut names: Vec<&str> = self.stages.iter().map(|s| s.name.as_str()).collect();
        for s in &other.stages {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        let lookup = |art: &'_ RunArtifact, name: &str| -> Option<u64> {
            art.stages
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.time_ns)
        };
        for name in names {
            let a = lookup(self, name);
            let b = lookup(other, name);
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>12} {:>9}",
                name,
                a.map(fmt_ns).unwrap_or_else(|| "-".to_string()),
                b.map(fmt_ns).unwrap_or_else(|| "-".to_string()),
                fmt_delta(a, b)
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>9}",
            "total",
            fmt_ns(self.total_time_ns()),
            fmt_ns(other.total_time_ns()),
            fmt_delta(Some(self.total_time_ns()), Some(other.total_time_ns()))
        );
        out
    }
}

impl ToJson for RunArtifact {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version".to_string(), self.schema_version.to_json()),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "git".to_string(),
                match &self.git {
                    Some(g) => Json::Str(g.clone()),
                    None => Json::Null,
                },
            ),
            ("dataset".to_string(), self.dataset.clone()),
            ("config".to_string(), self.config.clone()),
            ("stages".to_string(), self.stages.to_json()),
            ("totals".to_string(), self.totals.clone()),
            ("metrics".to_string(), self.metrics.clone()),
        ];
        for (k, v) in &self.extra {
            pairs.push((k.clone(), v.clone()));
        }
        Json::Obj(pairs)
    }
}

impl FromJson for RunArtifact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema_version = v
            .require("schema_version")?
            .as_u64()
            .ok_or_else(|| JsonError::shape("schema_version must be a u64"))?;
        if schema_version != SCHEMA_VERSION {
            return Err(JsonError::shape(format!(
                "unsupported schema_version {schema_version} (supported: {SCHEMA_VERSION})"
            )));
        }
        let name = v
            .require("name")?
            .as_str()
            .ok_or_else(|| JsonError::shape("name must be a string"))?
            .to_string();
        let git = match v.require("git")? {
            Json::Null => None,
            g => Some(
                g.as_str()
                    .ok_or_else(|| JsonError::shape("git must be a string or null"))?
                    .to_string(),
            ),
        };
        let stages = v
            .require("stages")?
            .as_arr()
            .ok_or_else(|| JsonError::shape("stages must be an array"))?
            .iter()
            .map(StageRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        const KNOWN: [&str; 8] = [
            "schema_version",
            "name",
            "git",
            "dataset",
            "config",
            "stages",
            "totals",
            "metrics",
        ];
        let extra = v
            .as_obj()
            .ok_or_else(|| JsonError::shape("artifact must be an object"))?
            .iter()
            .filter(|(k, _)| !KNOWN.contains(&k.as_str()))
            .map(|(k, val)| (k.clone(), val.clone()))
            .collect();
        Ok(Self {
            schema_version,
            name,
            git,
            dataset: v.require("dataset")?.clone(),
            config: v.require("config")?.clone(),
            stages,
            totals: v.require("totals")?.clone(),
            metrics: v.require("metrics")?.clone(),
            extra,
        })
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_delta(a: Option<u64>, b: Option<u64>) -> String {
    match (a, b) {
        (Some(a), Some(b)) if a > 0 => {
            format!("{:+.1}%", 100.0 * (b as f64 - a as f64) / a as f64)
        }
        _ => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunArtifact {
        let mut art = RunArtifact::new("fig13_knn");
        art.git = Some("v0-43-gdeadbeef".to_string());
        art.dataset = Json::obj([
            ("name", Json::Str("rand".into())),
            ("n", 4096u64.to_json()),
            ("d", 128u64.to_json()),
        ]);
        art.config = Json::obj([("scale", Json::Num(0.01))]);
        art.stages = vec![
            StageRecord {
                name: "filter".into(),
                time_ns: 1_500_000,
                calls: 10,
                ops: 40_960,
                bytes: 1 << 20,
            },
            StageRecord {
                name: "refine".into(),
                time_ns: 500_000,
                calls: 10,
                ops: 2_048,
                bytes: 1 << 14,
            },
        ];
        art.totals = Json::obj([("t_total_ns", 2_000_000u64.to_json())]);
        art.metrics = Json::Obj(Vec::new());
        art.push_extra("speedup", Json::Num(3.5));
        art
    }

    #[test]
    fn roundtrip_serialize_deserialize_equal() {
        let art = sample();
        let text = art.to_json_text();
        let back = RunArtifact::from_json_text(&text).unwrap();
        assert_eq!(back, art);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let mut v = sample().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::Num(99.0);
        }
        let err = RunArtifact::from_json(&v).unwrap_err();
        assert!(matches!(err, JsonError::Shape { .. }));
    }

    #[test]
    fn validate_flags_problems() {
        assert!(sample().validate().is_empty());
        let mut bad = sample();
        bad.stages.clear();
        bad.metrics = Json::Null;
        let problems = bad.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn table_and_diff_render() {
        let a = sample();
        let mut b = sample();
        b.stages[0].time_ns = 3_000_000; // filter 2x slower
        b.stages.push(StageRecord {
            name: "scrub".into(),
            time_ns: 100,
            ..StageRecord::default()
        });
        let table = a.render_table();
        assert!(table.contains("filter"));
        assert!(table.contains("75.0%"), "{table}");
        let diff = a.render_diff(&b);
        assert!(diff.contains("+100.0%"), "{diff}");
        assert!(diff.contains("scrub"), "{diff}");
        assert!(diff.contains("n/a"), "{diff}");
    }

    #[test]
    fn extra_sections_survive_roundtrip() {
        let art = sample();
        let back = RunArtifact::from_json_text(&art.to_json_text()).unwrap();
        assert_eq!(back.extra.len(), 1);
        assert_eq!(back.extra[0].0, "speedup");
    }
}

//! Hierarchical span tracing with a bounded in-memory journal.
//!
//! A *span* is a named, timed scope: opening one (via the [`crate::span!`]
//! macro or [`open_span`]) pushes it onto the current thread's span stack;
//! dropping the returned [`SpanGuard`] closes it, recording monotonic
//! start/end times, its parent span, and any attributes attached along the
//! way (query ids, candidate counts, op-counter deltas).
//!
//! Tracing is **off by default**. The disabled fast path — what the mining
//! hot loops pay in release builds — is a single relaxed atomic load and a
//! branch, measured under 2% on the kNN cascade (see the `obs_smoke`
//! bench). The journal is per-thread and bounded: once `capacity` spans
//! are recorded, further spans are counted in [`dropped`] (and per name in
//! [`journal_stats`]) instead of allocated, and nesting stays consistent
//! (children of an unrecorded span attach to the nearest recorded
//! ancestor).
//!
//! ## Trace contexts
//!
//! Stack-based parentage only works within one thread. The serving stack
//! crosses threads — a query is enqueued on a client thread, coalesced on
//! the scheduler thread, and executed on parallel shard workers — so spans
//! belonging to one request would otherwise end up as unrelated roots in
//! different journals. A [`TraceCtx`] carries `{trace_id, span_id}` across
//! those boundaries explicitly: mint one per request with
//! [`TraceCtx::root`], derive children with [`TraceCtx::child`], and open
//! spans under a remote parent with [`open_span_ctx`]. Span ids are minted
//! from one process-wide counter, so ids are unique across threads and a
//! request's span tree can be reassembled from any mix of journals.
//!
//! All threads share one monotonic epoch, so `start_ns`/`end_ns` are
//! directly comparable across journals. Journals of threads that exit
//! (e.g. scoped shard workers) are folded into a process-wide *orphan
//! sink* (bounded by the same capacity) so [`dump_jsonl_all`] still sees
//! them.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default journal capacity used by [`enable`] when callers have no
/// specific bound in mind.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Process-wide span id mint; 0 is reserved for "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Process-wide trace id mint; 0 is reserved for "untraced".
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
/// Capacity handed to [`enable`], mirrored here so the orphan sink and
/// [`journal_stats`] can see it without a thread-local hop.
static JOURNAL_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// One shared monotonic epoch for every thread's journal, so offsets from
/// different threads line up on one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Per-span-name drop counts, process-wide (satellite of the bounded
/// journal: truncation must be attributable from the artifact alone).
fn drop_registry() -> &'static Mutex<BTreeMap<String, u64>> {
    static DROPS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    DROPS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn note_drop(name: &str) {
    if let Ok(mut m) = drop_registry().lock() {
        *m.entry(name.to_string()).or_insert(0) += 1;
    }
}

/// Spans recorded by threads that have since exited (scoped workers, the
/// engine scheduler). Folded in by the `Tracer` destructor, bounded by the
/// journal capacity; overflow counts as per-name drops.
fn orphan_sink() -> &'static Mutex<Vec<SpanRecord>> {
    static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// A request-scoped trace context: the pair of ids that lets a span tree
/// be reassembled across threads. Mint one per request with
/// [`TraceCtx::root`]; pass it (it is `Copy`) wherever the request goes;
/// derive per-stage children with [`TraceCtx::child`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Identifies the request; shared by every span in the tree. 0 means
    /// "untraced".
    pub trace_id: u64,
    /// The id of the span this context points at (the parent for any span
    /// opened under it).
    pub span_id: u64,
}

impl TraceCtx {
    /// The null context: untraced, no parent.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// Mints a fresh trace with a fresh root span id. Cheap (two relaxed
    /// atomic increments) and independent of whether tracing is enabled,
    /// so request ids are stable for flight recording and exemplars even
    /// when the journal is off.
    pub fn root() -> Self {
        Self {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            span_id: next_span_id(),
        }
    }

    /// A child context in the same trace with a freshly minted span id.
    pub fn child(&self) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: next_span_id(),
        }
    }

    /// A context that *joins* an existing trace: the trace id comes from
    /// elsewhere (typically minted by a remote client and carried over
    /// the wire), the span id is minted locally. Local minting matters —
    /// a remote peer's span-id counter is unrelated to ours, so reusing a
    /// wire-supplied span id could collide with locally minted ids inside
    /// the same reassembled tree. A `trace_id` of 0 falls back to
    /// [`TraceCtx::root`] so untraced peers still get attributable
    /// requests.
    pub fn join(trace_id: u64) -> Self {
        if trace_id == 0 {
            return Self::root();
        }
        Self {
            trace_id,
            span_id: next_span_id(),
        }
    }

    /// Whether this is the null context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.span_id == 0
    }
}

/// One closed (or still-open) span in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (minted from one global counter, so ids
    /// from different threads never collide).
    pub id: u64,
    /// Id of the parent span, if any. For ctx-opened spans this may live
    /// in another thread's journal.
    pub parent: Option<u64>,
    /// Trace this span belongs to; 0 when opened outside any trace.
    pub trace_id: u64,
    /// Nesting depth on the opening thread (0 = root there).
    pub depth: u32,
    /// Span name, conventionally `<crate>.<stage>` (e.g.
    /// `mining.knn.filter`).
    pub name: String,
    /// Monotonic start offset in nanoseconds from the process epoch.
    pub start_ns: u64,
    /// Monotonic end offset; equals `start_ns` while the span is open.
    pub end_ns: u64,
    /// Attributes: open-time key/values plus anything recorded via
    /// [`SpanGuard::record`] (e.g. op-counter deltas).
    pub attrs: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The span as one JSONL-ready JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Num(self.id as f64)),
            (
                "parent",
                match self.parent {
                    Some(p) => Json::Num(p as f64),
                    None => Json::Null,
                },
            ),
            ("trace_id", Json::Num(self.trace_id as f64)),
            ("depth", Json::Num(self.depth as f64)),
            ("name", Json::Str(self.name.clone())),
            ("start_ns", Json::Num(self.start_ns as f64)),
            ("end_ns", Json::Num(self.end_ns as f64)),
            (
                "attrs",
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

struct Tracer {
    records: Vec<SpanRecord>,
    /// Indices into `records` of currently-open recorded spans.
    stack: Vec<usize>,
    capacity: usize,
    dropped: u64,
    /// Open-span depth including unrecorded spans, so `depth` stays
    /// truthful even past capacity.
    open_depth: u32,
}

impl Tracer {
    fn new() -> Self {
        Self {
            records: Vec::new(),
            stack: Vec::new(),
            capacity: JOURNAL_CAPACITY.load(Ordering::Relaxed),
            dropped: 0,
            open_depth: 0,
        }
    }
}

impl Drop for Tracer {
    /// Thread exit: fold this journal into the orphan sink so scoped
    /// worker threads don't take their spans with them.
    fn drop(&mut self) {
        if self.records.is_empty() {
            return;
        }
        if let Ok(mut sink) = orphan_sink().lock() {
            let cap = JOURNAL_CAPACITY.load(Ordering::Relaxed);
            for r in self.records.drain(..) {
                if sink.len() >= cap {
                    note_drop(&r.name);
                } else {
                    sink.push(r);
                }
            }
        }
    }
}

thread_local! {
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::new());
}

/// Turns tracing on process-wide with the given per-thread journal
/// capacity (spans beyond it are dropped, not reallocated). Clears this
/// thread's journal, the orphan sink, and the per-name drop counters.
pub fn enable(capacity: usize) {
    let capacity = capacity.max(1);
    JOURNAL_CAPACITY.store(capacity, Ordering::Relaxed);
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.records.clear(); // keep replaced journal out of the orphan sink
        *t = Tracer::new();
        t.capacity = capacity;
    });
    if let Ok(mut sink) = orphan_sink().lock() {
        sink.clear();
    }
    if let Ok(mut m) = drop_registry().lock() {
        m.clear();
    }
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off process-wide. The journal is retained until
/// [`enable`] or [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether tracing is on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears this thread's journal (keeps the enabled state and capacity).
pub fn clear() {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let cap = t.capacity;
        t.records.clear(); // keep replaced journal out of the orphan sink
        *t = Tracer::new();
        t.capacity = cap;
    });
}

/// Takes this thread's journal, leaving it empty.
pub fn drain() -> Vec<SpanRecord> {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.stack.clear();
        t.open_depth = 0;
        std::mem::take(&mut t.records)
    })
}

/// Takes this thread's journal *and* the orphan sink (journals of exited
/// threads), leaving both empty. Span ids are process-unique, so the
/// union is a coherent forest.
pub fn drain_all() -> Vec<SpanRecord> {
    let mut out = match orphan_sink().lock() {
        Ok(mut sink) => std::mem::take(&mut *sink),
        Err(_) => Vec::new(),
    };
    out.extend(drain());
    out
}

/// A copy of this thread's journal.
pub fn snapshot() -> Vec<SpanRecord> {
    TRACER.with(|t| t.borrow().records.clone())
}

/// A copy of the orphan sink (spans from threads that have exited).
pub fn orphaned() -> Vec<SpanRecord> {
    match orphan_sink().lock() {
        Ok(sink) => sink.clone(),
        Err(_) => Vec::new(),
    }
}

/// Number of spans dropped on this thread because the journal was full.
pub fn dropped() -> u64 {
    TRACER.with(|t| t.borrow().dropped)
}

/// Journal health: capacity plus process-wide drop totals per span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalStats {
    /// Per-thread journal capacity in spans (last value given to
    /// [`enable`]).
    pub capacity: usize,
    /// Total spans dropped process-wide since the last [`enable`].
    pub dropped_total: u64,
    /// Drops broken down by span name, sorted by name.
    pub dropped_by_name: Vec<(String, u64)>,
}

impl JournalStats {
    /// As a JSON object (embedded in bench artifacts).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("capacity", Json::Num(self.capacity as f64)),
            ("dropped_total", Json::Num(self.dropped_total as f64)),
            (
                "dropped_by_name",
                Json::Obj(
                    self.dropped_by_name
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Process-wide journal statistics: the configured capacity and how many
/// spans were dropped (total and per span name) since the last
/// [`enable`]. Unlike [`dropped`], this aggregates across threads.
pub fn journal_stats() -> JournalStats {
    let dropped_by_name: Vec<(String, u64)> = match drop_registry().lock() {
        Ok(m) => m.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        Err(_) => Vec::new(),
    };
    JournalStats {
        capacity: JOURNAL_CAPACITY.load(Ordering::Relaxed),
        dropped_total: dropped_by_name.iter().map(|(_, v)| v).sum(),
        dropped_by_name,
    }
}

/// The journal as JSONL: one compact JSON object per line, in open order.
pub fn dump_jsonl() -> String {
    TRACER.with(|t| {
        let t = t.borrow();
        let mut out = String::new();
        for r in &t.records {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    })
}

/// The orphan sink plus this thread's journal as JSONL (orphans first).
/// What the CLI writes for `--trace`: worker-thread spans included.
pub fn dump_jsonl_all() -> String {
    let mut out = String::new();
    if let Ok(sink) = orphan_sink().lock() {
        for r in sink.iter() {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
    }
    out.push_str(&dump_jsonl());
    out
}

/// Opens a span. Prefer the [`crate::span!`] macro, which stringifies
/// attribute names for you. When tracing is disabled this is one atomic
/// load; the returned guard is inert.
#[inline]
pub fn open_span(name: &str, attrs: &[(&str, f64)]) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { slot: None };
    }
    open_span_slow(name, None, attrs)
}

/// Opens a span under an explicit cross-thread parent context, returning
/// the guard plus the new span's own context (hand it to further threads
/// or stages). The context is minted even when tracing is disabled, so
/// propagation — flight recording, exemplar trace ids — keeps working with
/// the journal off.
#[inline]
pub fn open_span_ctx(name: &str, parent: TraceCtx, attrs: &[(&str, f64)]) -> (SpanGuard, TraceCtx) {
    let ctx = if parent.is_none() {
        TraceCtx::root()
    } else {
        parent.child()
    };
    if !is_enabled() {
        return (SpanGuard { slot: None }, ctx);
    }
    (open_span_slow(name, Some((parent, ctx)), attrs), ctx)
}

/// Opens a root span and mints a fresh trace for it. Shorthand for
/// [`open_span_ctx`] with [`TraceCtx::NONE`].
#[inline]
pub fn open_root_span(name: &str, attrs: &[(&str, f64)]) -> (SpanGuard, TraceCtx) {
    open_span_ctx(name, TraceCtx::NONE, attrs)
}

#[cold]
fn open_span_slow(
    name: &str,
    ctx: Option<(TraceCtx, TraceCtx)>,
    attrs: &[(&str, f64)],
) -> SpanGuard {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let depth = t.open_depth;
        t.open_depth += 1;
        if t.records.len() >= t.capacity {
            t.dropped += 1;
            note_drop(name);
            // Unrecorded span: the guard still tracks depth so siblings
            // recorded later keep truthful depths.
            return SpanGuard { slot: None };
        }
        let stack_parent = t
            .stack
            .last()
            .map(|&i| (t.records[i].id, t.records[i].trace_id));
        let (id, parent, trace_id) = match ctx {
            // Explicit cross-thread parentage wins over the local stack.
            Some((parent, own)) => {
                let p = if parent.span_id == 0 {
                    stack_parent.map(|(pid, _)| pid)
                } else {
                    Some(parent.span_id)
                };
                (own.span_id, p, own.trace_id)
            }
            // Plain spans parent on the stack and inherit its trace, so
            // inner stages traced on a worker thread stay in the
            // request's trace without any plumbing of their own.
            None => {
                let (p, tid) = match stack_parent {
                    Some((pid, ptid)) => (Some(pid), ptid),
                    None => (None, 0),
                };
                (next_span_id(), p, tid)
            }
        };
        let start_ns = now_ns();
        t.records.push(SpanRecord {
            id,
            parent,
            trace_id,
            depth,
            name: name.to_string(),
            start_ns,
            end_ns: start_ns,
            attrs: attrs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
        let idx = t.records.len() - 1;
        t.stack.push(idx);
        SpanGuard { slot: Some(idx) }
    })
}

/// RAII guard for an open span; closes it (records the end time and pops
/// the stack) on drop. Obtained from [`crate::span!`] / [`open_span`].
#[must_use = "bind to a named variable; `let _ = span!(..)` closes immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Journal index when the span was recorded; `None` when tracing is
    /// off or the journal was full.
    slot: Option<usize>,
}

impl SpanGuard {
    /// Attaches (or overwrites) an attribute on the span — the hook for
    /// op-counter deltas and result sizes known only at scope exit.
    pub fn record(&mut self, key: &str, value: f64) {
        let Some(idx) = self.slot else { return };
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(r) = t.records.get_mut(idx) {
                if let Some(slot) = r.attrs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    r.attrs.push((key.to_string(), value));
                }
            }
        });
    }

    /// Attaches several attributes at once (e.g. an op-counter delta).
    pub fn record_all<'a>(&mut self, pairs: impl IntoIterator<Item = (&'a str, f64)>) {
        for (k, v) in pairs {
            self.record(k, v);
        }
    }

    /// Whether this guard refers to a recorded span (tracing on and
    /// journal not full at open time).
    pub fn is_recorded(&self) -> bool {
        self.slot.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Even when nothing was recorded we may hold an open_depth slot —
        // but only if tracing was on at open time. Guards created while
        // disabled have slot None AND were never counted; distinguishing
        // costs a flag, so unrecorded-but-counted spans decrement via the
        // enabled check below being true at close. To stay robust when
        // tracing toggles mid-span, treat a None slot as uncounted unless
        // the tracer has outstanding depth beyond its stack.
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            match self.slot {
                Some(idx) => {
                    let end = now_ns();
                    if let Some(r) = t.records.get_mut(idx) {
                        r.end_ns = end;
                    }
                    if t.stack.last() == Some(&idx) {
                        t.stack.pop();
                    } else {
                        // Out-of-order drop (guard moved): remove anyway.
                        t.stack.retain(|&i| i != idx);
                    }
                    t.open_depth = t.open_depth.saturating_sub(1);
                }
                None => {
                    // Dropped-over-capacity spans still occupied a depth
                    // level; disabled-at-open guards never did. The former
                    // only exist when open_depth exceeds the stack depth.
                    if t.open_depth as usize > t.stack.len() {
                        t.open_depth -= 1;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that toggle the process-wide tracing flag.
    pub fn hold() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn spans_nest_and_time() {
        let _l = test_lock::hold();
        enable(1024);
        {
            let mut outer = span!("outer", query = 7);
            {
                let _inner = span!("inner");
            }
            outer.record("candidates", 12.0);
        }
        let spans = drain();
        disable();
        assert_eq!(spans.len(), 2);
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert!(outer.end_ns >= inner.end_ns);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.attrs.contains(&("query".to_string(), 7.0)));
        assert!(outer.attrs.contains(&("candidates".to_string(), 12.0)));
    }

    #[test]
    fn join_adopts_the_trace_but_mints_the_span_locally() {
        let remote = TraceCtx::root();
        let joined = TraceCtx::join(remote.trace_id);
        assert_eq!(joined.trace_id, remote.trace_id);
        assert_ne!(joined.span_id, remote.span_id, "span id minted locally");
        assert_ne!(TraceCtx::join(remote.trace_id).span_id, joined.span_id);
        // An untraced peer (trace id 0) still gets a fully minted root.
        let fresh = TraceCtx::join(0);
        assert_ne!(fresh.trace_id, 0);
        assert_ne!(fresh.span_id, 0);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _l = test_lock::hold();
        disable();
        clear();
        let mut g = span!("ignored", x = 1);
        g.record("y", 2.0);
        drop(g);
        assert!(snapshot().is_empty());
        assert!(!open_span("x", &[]).is_recorded());
    }

    #[test]
    fn capacity_bounds_the_journal() {
        let _l = test_lock::hold();
        enable(2);
        for _ in 0..5 {
            let _g = span!("s");
        }
        assert_eq!(snapshot().len(), 2);
        assert_eq!(dropped(), 3);
        // Nesting past capacity keeps depths truthful for later siblings.
        clear();
        {
            let _a = span!("a");
            let _b = span!("b");
            {
                let _c = span!("c"); // dropped (capacity 2)
                let _d = span!("d"); // dropped
            }
        }
        let spans = drain();
        disable();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped(), 2);
        assert_eq!(spans[1].depth, 1);
    }

    #[test]
    fn jsonl_is_parseable_per_line() {
        let _l = test_lock::hold();
        enable(16);
        {
            let _a = span!("alpha", q = 1);
            let _b = span!("beta");
        }
        let dump = dump_jsonl();
        disable();
        clear();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).expect("valid JSONL line");
            assert!(v.get("name").is_some());
            assert!(v.get("start_ns").is_some());
            assert!(v.get("trace_id").is_some());
        }
    }

    #[test]
    fn record_overwrites_existing_attr() {
        let _l = test_lock::hold();
        enable(16);
        {
            let mut g = span!("s", x = 1);
            g.record("x", 5.0);
        }
        let spans = drain();
        disable();
        assert_eq!(spans[0].attrs, vec![("x".to_string(), 5.0)]);
    }

    #[test]
    fn trace_ctx_ids_are_unique_and_linked() {
        let root = TraceCtx::root();
        let c1 = root.child();
        let c2 = root.child();
        let other = TraceCtx::root();
        assert_eq!(c1.trace_id, root.trace_id);
        assert_eq!(c2.trace_id, root.trace_id);
        assert_ne!(c1.span_id, c2.span_id);
        assert_ne!(c1.span_id, root.span_id);
        assert_ne!(other.trace_id, root.trace_id);
        assert!(!root.is_none());
        assert!(TraceCtx::NONE.is_none());
    }

    #[test]
    fn ctx_spans_carry_explicit_parentage_and_trace() {
        let _l = test_lock::hold();
        enable(64);
        let (root_guard, root_ctx) = open_root_span("req.root", &[]);
        let spans_in_thread = std::thread::scope(|s| {
            s.spawn(|| {
                // A "remote" thread opens under the request's context;
                // a plain nested span inherits trace + parent locally.
                {
                    let (_g, _child) = open_span_ctx("req.remote", root_ctx, &[("shard", 1.0)]);
                    let _inner = span!("req.remote.inner");
                }
                drain()
            })
            .join()
            .unwrap()
        });
        drop(root_guard);
        let local = drain();
        disable();

        assert_eq!(local.len(), 1);
        let root = &local[0];
        assert_eq!(root.name, "req.root");
        assert_eq!(root.trace_id, root_ctx.trace_id);
        assert_eq!(root.id, root_ctx.span_id);

        assert_eq!(spans_in_thread.len(), 2);
        let remote = &spans_in_thread[0];
        let inner = &spans_in_thread[1];
        assert_eq!(remote.parent, Some(root.id), "explicit cross-thread parent");
        assert_eq!(remote.trace_id, root.trace_id);
        assert_eq!(
            inner.parent,
            Some(remote.id),
            "stack nesting under ctx span"
        );
        assert_eq!(inner.trace_id, root.trace_id, "trace inherited via stack");
        // Process-unique ids: no collisions across the two journals.
        let mut ids: Vec<u64> = local
            .iter()
            .chain(spans_in_thread.iter())
            .map(|r| r.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn ctx_minted_even_when_disabled() {
        let _l = test_lock::hold();
        disable();
        let (g, ctx) = open_root_span("off", &[]);
        assert!(!g.is_recorded());
        assert!(!ctx.is_none());
        let (g2, child) = open_span_ctx("off.child", ctx, &[]);
        assert!(!g2.is_recorded());
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_ne!(child.span_id, ctx.span_id);
    }

    #[test]
    fn drops_are_counted_per_name() {
        let _l = test_lock::hold();
        enable(1);
        {
            let _keep = span!("kept");
            let _a = span!("lost.alpha");
            let _b = span!("lost.alpha");
            let _c = span!("lost.beta");
        }
        let stats = journal_stats();
        disable();
        clear();
        assert_eq!(stats.capacity, 1);
        assert_eq!(stats.dropped_total, 3);
        assert_eq!(
            stats.dropped_by_name,
            vec![("lost.alpha".to_string(), 2), ("lost.beta".to_string(), 1)]
        );
        let j = stats.to_json();
        assert!(j
            .get("dropped_by_name")
            .and_then(|d| d.get("lost.alpha"))
            .is_some());
    }

    #[test]
    fn orphan_sink_collects_exited_threads() {
        let _l = test_lock::hold();
        enable(1024);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = span!("worker.span");
            });
        });
        let all = drain_all();
        disable();
        assert!(all.iter().any(|r| r.name == "worker.span"));
        // Sink was drained.
        assert!(orphaned().is_empty());
    }
}

//! Hierarchical span tracing with a bounded in-memory journal.
//!
//! A *span* is a named, timed scope: opening one (via the [`crate::span!`]
//! macro or [`open_span`]) pushes it onto the current thread's span stack;
//! dropping the returned [`SpanGuard`] closes it, recording monotonic
//! start/end times, its parent span, and any attributes attached along the
//! way (query ids, candidate counts, op-counter deltas).
//!
//! Tracing is **off by default**. The disabled fast path — what the mining
//! hot loops pay in release builds — is a single relaxed atomic load and a
//! branch, measured under 2% on the kNN cascade (see the `obs_smoke`
//! bench). The journal is per-thread and bounded: once `capacity` spans
//! are recorded, further spans are counted in [`dropped`] instead of
//! allocated, and nesting stays consistent (children of an unrecorded span
//! attach to the nearest recorded ancestor).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default journal capacity used by [`enable`] when callers have no
/// specific bound in mind.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One closed (or still-open) span in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Journal-local id (index order = open order).
    pub id: u64,
    /// Id of the parent span, if any.
    pub parent: Option<u64>,
    /// Nesting depth (0 = root).
    pub depth: u32,
    /// Span name, conventionally `<crate>.<stage>` (e.g.
    /// `mining.knn.filter`).
    pub name: String,
    /// Monotonic start offset in nanoseconds from the journal epoch.
    pub start_ns: u64,
    /// Monotonic end offset; equals `start_ns` while the span is open.
    pub end_ns: u64,
    /// Attributes: open-time key/values plus anything recorded via
    /// [`SpanGuard::record`] (e.g. op-counter deltas).
    pub attrs: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The span as one JSONL-ready JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Num(self.id as f64)),
            (
                "parent",
                match self.parent {
                    Some(p) => Json::Num(p as f64),
                    None => Json::Null,
                },
            ),
            ("depth", Json::Num(self.depth as f64)),
            ("name", Json::Str(self.name.clone())),
            ("start_ns", Json::Num(self.start_ns as f64)),
            ("end_ns", Json::Num(self.end_ns as f64)),
            (
                "attrs",
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

struct Tracer {
    epoch: Instant,
    records: Vec<SpanRecord>,
    /// Indices into `records` of currently-open recorded spans.
    stack: Vec<usize>,
    capacity: usize,
    dropped: u64,
    /// Open-span depth including unrecorded spans, so `depth` stays
    /// truthful even past capacity.
    open_depth: u32,
}

impl Tracer {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            records: Vec::new(),
            stack: Vec::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
            open_depth: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

thread_local! {
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::new());
}

/// Turns tracing on process-wide with the given per-thread journal
/// capacity (spans beyond it are dropped, not reallocated). Clears this
/// thread's journal.
pub fn enable(capacity: usize) {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        *t = Tracer::new();
        t.capacity = capacity.max(1);
    });
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off process-wide. The journal is retained until
/// [`enable`] or [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether tracing is on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears this thread's journal (keeps the enabled state and capacity).
pub fn clear() {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let cap = t.capacity;
        *t = Tracer::new();
        t.capacity = cap;
    });
}

/// Takes this thread's journal, leaving it empty.
pub fn drain() -> Vec<SpanRecord> {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.stack.clear();
        t.open_depth = 0;
        std::mem::take(&mut t.records)
    })
}

/// A copy of this thread's journal.
pub fn snapshot() -> Vec<SpanRecord> {
    TRACER.with(|t| t.borrow().records.clone())
}

/// Number of spans dropped on this thread because the journal was full.
pub fn dropped() -> u64 {
    TRACER.with(|t| t.borrow().dropped)
}

/// The journal as JSONL: one compact JSON object per line, in open order.
pub fn dump_jsonl() -> String {
    TRACER.with(|t| {
        let t = t.borrow();
        let mut out = String::new();
        for r in &t.records {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    })
}

/// Opens a span. Prefer the [`crate::span!`] macro, which stringifies
/// attribute names for you. When tracing is disabled this is one atomic
/// load; the returned guard is inert.
#[inline]
pub fn open_span(name: &str, attrs: &[(&str, f64)]) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { slot: None };
    }
    open_span_slow(name, attrs)
}

#[cold]
fn open_span_slow(name: &str, attrs: &[(&str, f64)]) -> SpanGuard {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let depth = t.open_depth;
        t.open_depth += 1;
        if t.records.len() >= t.capacity {
            t.dropped += 1;
            // Unrecorded span: the guard still tracks depth so siblings
            // recorded later keep truthful depths.
            return SpanGuard { slot: None };
        }
        let id = t.records.len() as u64;
        let parent = t.stack.last().map(|&i| t.records[i].id);
        let start_ns = t.now_ns();
        t.records.push(SpanRecord {
            id,
            parent,
            depth,
            name: name.to_string(),
            start_ns,
            end_ns: start_ns,
            attrs: attrs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
        let idx = t.records.len() - 1;
        t.stack.push(idx);
        SpanGuard { slot: Some(idx) }
    })
}

/// RAII guard for an open span; closes it (records the end time and pops
/// the stack) on drop. Obtained from [`crate::span!`] / [`open_span`].
#[must_use = "bind to a named variable; `let _ = span!(..)` closes immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Journal index when the span was recorded; `None` when tracing is
    /// off or the journal was full.
    slot: Option<usize>,
}

impl SpanGuard {
    /// Attaches (or overwrites) an attribute on the span — the hook for
    /// op-counter deltas and result sizes known only at scope exit.
    pub fn record(&mut self, key: &str, value: f64) {
        let Some(idx) = self.slot else { return };
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(r) = t.records.get_mut(idx) {
                if let Some(slot) = r.attrs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    r.attrs.push((key.to_string(), value));
                }
            }
        });
    }

    /// Attaches several attributes at once (e.g. an op-counter delta).
    pub fn record_all<'a>(&mut self, pairs: impl IntoIterator<Item = (&'a str, f64)>) {
        for (k, v) in pairs {
            self.record(k, v);
        }
    }

    /// Whether this guard refers to a recorded span (tracing on and
    /// journal not full at open time).
    pub fn is_recorded(&self) -> bool {
        self.slot.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Even when nothing was recorded we may hold an open_depth slot —
        // but only if tracing was on at open time. Guards created while
        // disabled have slot None AND were never counted; distinguishing
        // costs a flag, so unrecorded-but-counted spans decrement via the
        // enabled check below being true at close. To stay robust when
        // tracing toggles mid-span, treat a None slot as uncounted unless
        // the tracer has outstanding depth beyond its stack.
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            match self.slot {
                Some(idx) => {
                    let end = t.now_ns();
                    if let Some(r) = t.records.get_mut(idx) {
                        r.end_ns = end;
                    }
                    if t.stack.last() == Some(&idx) {
                        t.stack.pop();
                    } else {
                        // Out-of-order drop (guard moved): remove anyway.
                        t.stack.retain(|&i| i != idx);
                    }
                    t.open_depth = t.open_depth.saturating_sub(1);
                }
                None => {
                    // Dropped-over-capacity spans still occupied a depth
                    // level; disabled-at-open guards never did. The former
                    // only exist when open_depth exceeds the stack depth.
                    if t.open_depth as usize > t.stack.len() {
                        t.open_depth -= 1;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that toggle the process-wide tracing flag.
    pub fn hold() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn spans_nest_and_time() {
        let _l = test_lock::hold();
        enable(1024);
        {
            let mut outer = span!("outer", query = 7);
            {
                let _inner = span!("inner");
            }
            outer.record("candidates", 12.0);
        }
        let spans = drain();
        disable();
        assert_eq!(spans.len(), 2);
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert!(outer.end_ns >= inner.end_ns);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.attrs.contains(&("query".to_string(), 7.0)));
        assert!(outer.attrs.contains(&("candidates".to_string(), 12.0)));
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _l = test_lock::hold();
        disable();
        clear();
        let mut g = span!("ignored", x = 1);
        g.record("y", 2.0);
        drop(g);
        assert!(snapshot().is_empty());
        assert!(!open_span("x", &[]).is_recorded());
    }

    #[test]
    fn capacity_bounds_the_journal() {
        let _l = test_lock::hold();
        enable(2);
        for _ in 0..5 {
            let _g = span!("s");
        }
        assert_eq!(snapshot().len(), 2);
        assert_eq!(dropped(), 3);
        // Nesting past capacity keeps depths truthful for later siblings.
        clear();
        {
            let _a = span!("a");
            let _b = span!("b");
            {
                let _c = span!("c"); // dropped (capacity 2)
                let _d = span!("d"); // dropped
            }
        }
        let spans = drain();
        disable();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped(), 2);
        assert_eq!(spans[1].depth, 1);
    }

    #[test]
    fn jsonl_is_parseable_per_line() {
        let _l = test_lock::hold();
        enable(16);
        {
            let _a = span!("alpha", q = 1);
            let _b = span!("beta");
        }
        let dump = dump_jsonl();
        disable();
        clear();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).expect("valid JSONL line");
            assert!(v.get("name").is_some());
            assert!(v.get("start_ns").is_some());
        }
    }

    #[test]
    fn record_overwrites_existing_attr() {
        let _l = test_lock::hold();
        enable(16);
        {
            let mut g = span!("s", x = 1);
            g.record("x", 5.0);
        }
        let spans = drain();
        disable();
        assert_eq!(spans[0].attrs, vec![("x".to_string(), 5.0)]);
    }
}

#![warn(missing_docs)]
//! # simpim-obs
//!
//! Observability for the simpim workspace: the measurement substrate the
//! paper's whole method rests on (Sec. IV profiling, Eq. 2 oracle, Eq. 13
//! plan optimization) made first-class and exportable.
//!
//! Three layers, all vendored-offline-friendly (zero dependencies):
//!
//! * [`trace`] — hierarchical **span tracing**: `span!("stage", attr = v)`
//!   scopes with monotonic timing, attribute/counter deltas and
//!   parent/child nesting, recorded into a bounded in-memory journal and
//!   dumpable as JSONL. Off by default; the disabled fast path is one
//!   relaxed atomic load, cheap enough to leave compiled into release
//!   builds.
//! * [`metrics`] — a process-wide **metrics registry** with counters,
//!   gauges and log-linear histograms, keyed by the naming convention
//!   `simpim.<crate>.<stage>.<metric>`. Always on.
//! * [`slo`] — **declarative service-level objectives** (`p99 ≤ 2ms`,
//!   `availability ≥ 99.9%`) evaluated from the histograms, reporting
//!   attainment, error-budget remaining, and burn rate.
//! * [`artifact`] — a **schema-versioned run artifact** (`RunArtifact`):
//!   one JSON document per bench run carrying the per-stage breakdown,
//!   metrics snapshot, dataset spec and config, written as
//!   `BENCH_<name>.json` files that seed the perf-trajectory history.
//!
//! Serialization uses the in-tree [`json`] module (the workspace's `serde`
//! is an offline no-op stub): a small JSON value model with a writer, a
//! parser, and the [`json::ToJson`] / [`json::FromJson`] traits the other
//! crates implement for their report types.

pub mod artifact;
pub mod json;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use artifact::{RunArtifact, StageRecord, SCHEMA_VERSION};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use metrics::{Histogram, Metric, MetricsSnapshot};
pub use slo::{SloObjective, SloReport, SloSpec};
pub use trace::{JournalStats, SpanGuard, SpanRecord, TraceCtx};

/// Opens a traced span scope. Returns a [`trace::SpanGuard`] that closes
/// the span when dropped; bind it to a named variable (`let _sp = ...`) so
/// the scope covers the intended region (a bare `let _ =` drops
/// immediately).
///
/// ```
/// use simpim_obs::span;
/// simpim_obs::trace::enable(1024);
/// {
///     let mut sp = span!("mining.knn.filter", query = 3);
///     sp.record("candidates", 42.0);
/// } // span closes here
/// let spans = simpim_obs::trace::drain();
/// assert_eq!(spans[0].name, "mining.knn.filter");
/// simpim_obs::trace::disable();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::open_span($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::trace::open_span(
            $name,
            &[$((stringify!($key), ($value) as f64)),+],
        )
    };
}

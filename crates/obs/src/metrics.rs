//! Process-wide metrics registry: counters, gauges, and log-linear
//! histograms.
//!
//! Metric names follow the convention `simpim.<crate>.<stage>.<metric>`
//! (e.g. `simpim.mining.knn.refinements`,
//! `simpim.bounds.LB_FNN^16.pruned`). The registry is a single mutex-held
//! `BTreeMap`, updated at per-query / per-batch granularity — cheap enough
//! to stay on in release builds, which is why there is no disable switch.
//!
//! Histograms are log-linear (HDR-style): exact buckets for small values,
//! then every power-of-two octave split into [`Histogram::SUBBUCKETS`]
//! linear sub-buckets, giving ≤ 25% relative bucket width over the full
//! `u64` range in a fixed 256-slot footprint.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::json::{Json, JsonError, ToJson};

/// Sub-bucket resolution bits: each octave splits into `2^SUB_BITS`
/// linear sub-buckets.
const SUB_BITS: u32 = 2;
/// Values below this are bucketed exactly (one bucket per value).
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1); // 8

/// A fixed-footprint log-linear histogram over `u64` samples.
///
/// Each bucket can carry one **exemplar** — the `(value, trace_id)` of the
/// worst sample recorded into it via [`Histogram::record_exemplar`] — so a
/// p99 read from the histogram is one lookup away from a concrete trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    /// Per-bucket worst exemplar as `(value, trace_id)`; `trace_id == 0`
    /// means the slot is empty (trace ids are minted from 1). Kept in
    /// lockstep with `counts`.
    exemplars: Vec<(u64, u64)>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// Number of linear sub-buckets per octave.
    pub const SUBBUCKETS: u64 = 1 << SUB_BITS;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            exemplars: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_MAX {
            return value as usize;
        }
        let major = 63 - value.leading_zeros(); // ≥ SUB_BITS + 1
        let minor = (value >> (major - SUB_BITS)) & (Self::SUBBUCKETS - 1);
        // Buckets 0..LINEAR_MAX are the exact values; octave `major`
        // contributes SUBBUCKETS buckets starting at its base.
        (LINEAR_MAX + (major - (SUB_BITS + 1)) as u64 * Self::SUBBUCKETS + minor) as usize
    }

    /// The smallest value mapping to bucket `i` (inclusive lower bound).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < LINEAR_MAX {
            return i;
        }
        let rel = i - LINEAR_MAX;
        let major = SUB_BITS as u64 + 1 + rel / Self::SUBBUCKETS;
        let minor = rel % Self::SUBBUCKETS;
        if major >= 64 {
            // Past the last representable octave.
            return u64::MAX;
        }
        (1u64 << major).saturating_add(minor << (major - SUB_BITS as u64))
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
            self.exemplars.resize(idx + 1, (0, 0));
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records one sample tagged with the trace it came from; the bucket
    /// keeps the exemplar of its *worst* (largest) tagged sample. A
    /// `trace_id` of 0 degrades to a plain [`Histogram::record`].
    pub fn record_exemplar(&mut self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        let slot = &mut self.exemplars[idx];
        if slot.1 == 0 || value >= slot.0 {
            *slot = (value, trace_id);
        }
    }

    /// The exemplar `(value, trace_id)` stored in the bucket containing
    /// the (approximate) `q`-quantile, or the nearest bucket at or above
    /// it (falling back to the nearest below). The way to answer "show me
    /// a concrete p99 request".
    pub fn exemplar_near_quantile(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut qbucket = self.counts.len().saturating_sub(1);
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                qbucket = i;
                break;
            }
        }
        // Worst tagged sample at or above the quantile bucket…
        if let Some(&(v, t)) = self.exemplars[qbucket..]
            .iter()
            .rev()
            .find(|&&(_, t)| t != 0)
        {
            return Some((v, t));
        }
        // …or the closest one below it.
        self.exemplars[..qbucket]
            .iter()
            .rev()
            .find(|&&(_, t)| t != 0)
            .copied()
    }

    /// Number of samples strictly greater than `threshold`, to bucket
    /// resolution (a partially-straddling bucket counts as not-over; the
    /// observed `min`/`max` resolve the all-or-nothing cases exactly).
    pub fn count_over(&self, threshold: u64) -> u64 {
        if self.count == 0 || self.max <= threshold {
            return 0;
        }
        if self.min > threshold {
            return self.count;
        }
        let start = Self::bucket_index(threshold) + 1;
        self.counts.iter().skip(start).sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
            self.exemplars.resize(other.counts.len(), (0, 0));
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        for (i, &(v, t)) in other.exemplars.iter().enumerate() {
            if t != 0 {
                let slot = &mut self.exemplars[i];
                if slot.1 == 0 || v >= slot.0 {
                    *slot = (v, t);
                }
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q ∈ [0, 1]`): the *midpoint* of the bucket
    /// containing the q-th sample, clamped to the observed min/max.
    ///
    /// Midpoint rather than lower bound: a lower bound systematically
    /// under-reports by up to a full bucket width, and for a distribution
    /// concentrated in one bucket it collapses every quantile to `min`.
    /// The midpoint is within half a bucket width (≤ 12.5% relative
    /// error) of the true rank position, and the min/max clamp keeps
    /// degenerate single-value distributions exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_lower_bound(i);
                let hi = Self::bucket_lower_bound(i + 1);
                let mid = lo + hi.saturating_sub(lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Occupied buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower_bound(i), c))
            .collect()
    }

    /// Percentile-first JSON summary — the reporting shape every latency
    /// table in the bench artifacts uses: `count`, then `p50`/`p95`/`p99`
    /// (bucket midpoints, see [`Histogram::quantile`]), then `mean`,
    /// `min`, `max`. Keys carry no unit suffix; callers record samples in
    /// nanoseconds by convention.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("p50", Json::Num(self.quantile(0.5) as f64)),
            ("p95", Json::Num(self.quantile(0.95) as f64)),
            ("p99", Json::Num(self.quantile(0.99) as f64)),
            ("mean", Json::Num(self.mean())),
            (
                "min",
                Json::Num(if self.count == 0 {
                    0.0
                } else {
                    self.min as f64
                }),
            ),
            ("max", Json::Num(self.max as f64)),
        ])
    }

    /// Occupied exemplar slots as `(bucket_lower_bound, value, trace_id)`.
    pub fn nonzero_exemplars(&self) -> Vec<(u64, u64, u64)> {
        self.exemplars
            .iter()
            .enumerate()
            .filter(|(_, &(_, t))| t != 0)
            .map(|(i, &(v, t))| (Self::bucket_lower_bound(i), v, t))
            .collect()
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type", Json::Str("histogram".into())),
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            (
                "min",
                Json::Num(if self.count == 0 {
                    0.0
                } else {
                    self.min as f64
                }),
            ),
            ("max", Json::Num(self.max as f64)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, c)| Json::Arr(vec![Json::Num(lo as f64), Json::Num(c as f64)]))
                        .collect(),
                ),
            ),
        ];
        let ex = self.nonzero_exemplars();
        if !ex.is_empty() {
            fields.push((
                "exemplars",
                Json::Arr(
                    ex.into_iter()
                        .map(|(lo, v, t)| {
                            Json::Arr(vec![
                                Json::Num(lo as f64),
                                Json::Num(v as f64),
                                Json::Num(t as f64),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written value.
    Gauge(f64),
    /// Sample distribution.
    Histogram(Histogram),
}

impl Metric {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Metric::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            Metric::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is one.
    pub fn as_histogram(&self) -> Option<&Histogram> {
        match self {
            Metric::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

impl ToJson for Metric {
    fn to_json(&self) -> Json {
        match self {
            Metric::Counter(v) => Json::obj([
                ("type", Json::Str("counter".into())),
                ("value", Json::Num(*v as f64)),
            ]),
            Metric::Gauge(v) => Json::obj([
                ("type", Json::Str("gauge".into())),
                ("value", Json::Num(*v)),
            ]),
            Metric::Histogram(h) => h.to_json(),
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
    let mut guard = registry().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Adds `n` to the counter `name` (created at zero on first use). A name
/// registered as a different kind is left untouched.
pub fn counter_add(name: &str, n: u64) {
    with_registry(|reg| {
        if let Metric::Counter(v) = reg.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            *v += n;
        }
    });
}

/// Sets the gauge `name` to `v` (created on first use).
pub fn gauge_set(name: &str, v: f64) {
    with_registry(|reg| {
        let slot = reg.entry(name.to_string()).or_insert(Metric::Gauge(v));
        if let Metric::Gauge(g) = slot {
            *g = v;
        }
    });
}

/// Records `v` into the histogram `name` (created on first use).
pub fn histogram_record(name: &str, v: u64) {
    with_registry(|reg| {
        let slot = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()));
        if let Metric::Histogram(h) = slot {
            h.record(v);
        }
    });
}

/// Records `v` into the histogram `name`, tagging its bucket with the
/// worst-sample exemplar `trace_id` (see [`Histogram::record_exemplar`]).
pub fn histogram_record_exemplar(name: &str, v: u64, trace_id: u64) {
    with_registry(|reg| {
        let slot = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()));
        if let Metric::Histogram(h) = slot {
            h.record_exemplar(v, trace_id);
        }
    });
}

/// Clears every metric.
pub fn reset() {
    with_registry(|reg| reg.clear());
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Name → metric, sorted by name.
    pub metrics: BTreeMap<String, Metric>,
}

/// Copies the current registry contents.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        metrics: with_registry(|reg| reg.clone()),
    }
}

impl MetricsSnapshot {
    /// The counter value under `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.get(name).and_then(Metric::as_counter)
    }

    /// The gauge value under `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).and_then(Metric::as_gauge)
    }

    /// The histogram under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.metrics.get(name).and_then(Metric::as_histogram)
    }

    /// Names matching a `prefix.*.suffix` pattern: returns the middle
    /// segment of every metric named `<prefix><middle><suffix>`.
    pub fn middles(&self, prefix: &str, suffix: &str) -> Vec<String> {
        self.metrics
            .keys()
            .filter_map(|k| {
                k.strip_prefix(prefix)
                    .and_then(|rest| rest.strip_suffix(suffix))
                    .filter(|mid| !mid.is_empty())
                    .map(str::to_string)
            })
            .collect()
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.metrics
                .iter()
                .map(|(k, m)| (k.clone(), m.to_json()))
                .collect(),
        )
    }
}

impl crate::json::FromJson for MetricsSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let pairs = v
            .as_obj()
            .ok_or_else(|| JsonError::shape("metrics must be an object"))?;
        let mut metrics = BTreeMap::new();
        for (name, m) in pairs {
            let kind = m
                .require("type")?
                .as_str()
                .ok_or_else(|| JsonError::shape("metric type must be a string"))?;
            let metric = match kind {
                "counter" => Metric::Counter(
                    m.require("value")?
                        .as_u64()
                        .ok_or_else(|| JsonError::shape("counter value"))?,
                ),
                "gauge" => Metric::Gauge(
                    m.require("value")?
                        .as_f64()
                        .ok_or_else(|| JsonError::shape("gauge value"))?,
                ),
                "histogram" => {
                    let mut h = Histogram::new();
                    h.count = m.require("count")?.as_u64().unwrap_or(0);
                    h.sum = m.require("sum")?.as_u64().unwrap_or(0);
                    h.max = m.require("max")?.as_u64().unwrap_or(0);
                    let min = m.require("min")?.as_u64().unwrap_or(0);
                    h.min = if h.count == 0 { u64::MAX } else { min };
                    for b in m.require("buckets")?.as_arr().unwrap_or(&[]) {
                        let pair = b.as_arr().unwrap_or(&[]);
                        if let (Some(lo), Some(c)) = (
                            pair.first().and_then(Json::as_u64),
                            pair.get(1).and_then(Json::as_u64),
                        ) {
                            let idx = Histogram::bucket_index(lo);
                            if h.counts.len() <= idx {
                                h.counts.resize(idx + 1, 0);
                                h.exemplars.resize(idx + 1, (0, 0));
                            }
                            h.counts[idx] += c;
                        }
                    }
                    // Exemplars are optional (pre-exemplar artifacts omit
                    // the key entirely).
                    if let Some(ex) = m.get("exemplars").and_then(Json::as_arr) {
                        for e in ex {
                            let triple = e.as_arr().unwrap_or(&[]);
                            if let (Some(lo), Some(v), Some(t)) = (
                                triple.first().and_then(Json::as_u64),
                                triple.get(1).and_then(Json::as_u64),
                                triple.get(2).and_then(Json::as_u64),
                            ) {
                                let idx = Histogram::bucket_index(lo);
                                if h.exemplars.len() <= idx {
                                    h.counts.resize(idx + 1, 0);
                                    h.exemplars.resize(idx + 1, (0, 0));
                                }
                                h.exemplars[idx] = (v, t);
                            }
                        }
                    }
                    Metric::Histogram(h)
                }
                other => return Err(JsonError::shape(format!("unknown metric type {other:?}"))),
            };
            metrics.insert(name.clone(), metric);
        }
        Ok(Self { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::FromJson;

    #[test]
    fn bucket_boundaries_are_monotone_and_consistent() {
        // Every value maps into the bucket whose [lower, next-lower)
        // range contains it.
        for v in (0..200u64).chain([255, 256, 257, 1000, 1 << 20, (1 << 40) + 12345, u64::MAX]) {
            let i = Histogram::bucket_index(v);
            let lo = Histogram::bucket_lower_bound(i);
            assert!(lo <= v, "lower bound {lo} > value {v}");
            let next = Histogram::bucket_lower_bound(i + 1);
            assert!(
                v < next || i == Histogram::bucket_index(u64::MAX),
                "value {v} ≥ next bucket lower bound {next}"
            );
        }
        // Lower bounds strictly increase over the full valid range.
        for i in 0..Histogram::bucket_index(u64::MAX) {
            assert!(
                Histogram::bucket_lower_bound(i) < Histogram::bucket_lower_bound(i + 1),
                "bucket {i} not increasing"
            );
        }
        // Exact buckets below LINEAR_MAX.
        for v in 0..LINEAR_MAX {
            assert_eq!(Histogram::bucket_lower_bound(Histogram::bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_width_bounded() {
        // Log-linear with 4 sub-buckets: width/lower ≤ 1/4 beyond the
        // linear region.
        for i in (LINEAR_MAX as usize)..250 {
            let lo = Histogram::bucket_lower_bound(i);
            let hi = Histogram::bucket_lower_bound(i + 1);
            assert!(
                (hi - lo) as f64 / lo as f64 <= 0.25 + 1e-12,
                "bucket {i}: [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, 5050);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Bucket midpoints, pinned: the 50th sample (value 50) lands in
        // bucket [48, 56) → midpoint 52; within half a bucket width of
        // the true rank position.
        assert_eq!(h.quantile(0.5), 52);
        // Rank-90 sample (90) in [80, 96) → midpoint 88.
        assert_eq!(h.quantile(0.9), 88);
        // Rank-99 sample (99) in [96, 112) → midpoint 104, clamped to max.
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
        // q = 0 resolves to rank 1 (value 1, an exact linear bucket).
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantile_of_single_bucket_distribution_does_not_collapse_to_min() {
        // Regression: with lower-bound quantiles, any distribution
        // concentrated in one bucket reported min for every quantile.
        let mut h = Histogram::new();
        for v in 50..=55u64 {
            h.record(v); // all in bucket [48, 56)
        }
        assert_eq!(h.quantile(0.5), 52, "midpoint, not min");
        assert!(h.quantile(0.5) > h.min);
        assert_eq!(h.quantile(0.99), 52);
        // A single repeated value stays exact through the min/max clamp.
        let mut one = Histogram::new();
        for _ in 0..100 {
            one.record(42);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42, "q = {q}");
        }
    }

    #[test]
    fn exemplars_keep_worst_sample_per_bucket() {
        let mut h = Histogram::new();
        h.record_exemplar(50, 7);
        h.record_exemplar(54, 8); // same bucket [48,56), larger → wins
        h.record_exemplar(51, 9); // smaller → ignored
        h.record_exemplar(1000, 11);
        h.record(2000); // untagged: counted, no exemplar
        assert_eq!(h.count, 5);
        let ex = h.nonzero_exemplars();
        assert_eq!(ex.len(), 2);
        assert!(ex.contains(&(48, 54, 8)));
        // p99 exemplar: worst tagged sample at/above the quantile bucket.
        let (v, t) = h.exemplar_near_quantile(0.99).unwrap();
        assert_eq!((v, t), (1000, 11));
        // Quantile bucket above every exemplar falls back to nearest below.
        let mut tail = Histogram::new();
        tail.record_exemplar(10, 3);
        for _ in 0..99 {
            tail.record(1 << 20);
        }
        assert_eq!(tail.exemplar_near_quantile(0.99), Some((10, 3)));
        assert_eq!(Histogram::new().exemplar_near_quantile(0.5), None);
    }

    #[test]
    fn summary_json_is_percentile_first() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary_json();
        assert_eq!(s.get("count").and_then(Json::as_u64), Some(100));
        assert_eq!(s.get("p50").and_then(Json::as_u64), Some(h.quantile(0.5)));
        assert_eq!(s.get("p99").and_then(Json::as_u64), Some(h.quantile(0.99)));
        assert_eq!(s.get("max").and_then(Json::as_u64), Some(100));
        // Percentiles lead the object: tooling that prints the first
        // few keys shows the tail numbers, not bookkeeping.
        let keys: Vec<&str> = s
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys[..4], ["count", "p50", "p95", "p99"]);
        let empty = Histogram::new().summary_json();
        assert_eq!(empty.get("min").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn count_over_threshold() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 200, 4000] {
            h.record(v);
        }
        assert_eq!(h.count_over(0), 6);
        assert_eq!(h.count_over(3), 3);
        assert_eq!(h.count_over(150), 2, "200 and 4000 are over");
        assert_eq!(h.count_over(4000), 0, "max <= threshold → exact 0");
        assert_eq!(h.count_over(u64::MAX), 0);
        assert_eq!(Histogram::new().count_over(0), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 1 << 30] {
            a.record(v);
            c.record(v);
        }
        for v in [3u64, 1 << 20, u64::MAX] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let n = "simpim.test.registry.counter";
        let g = "simpim.test.registry.gauge";
        let h = "simpim.test.registry.hist";
        counter_add(n, 2);
        counter_add(n, 3);
        gauge_set(g, 1.5);
        gauge_set(g, 2.5);
        histogram_record(h, 10);
        histogram_record(h, 20);
        let snap = snapshot();
        assert_eq!(snap.counter(n), Some(5));
        assert_eq!(snap.gauge(g), Some(2.5));
        assert_eq!(snap.histogram(h).unwrap().count, 2);
        assert_eq!(snap.counter(g), None, "kind accessors are typed");
    }

    #[test]
    fn middles_extracts_stage_names() {
        counter_add("simpim.test.mid.STAGE_A.seen", 1);
        counter_add("simpim.test.mid.STAGE_B.seen", 1);
        let snap = snapshot();
        let mids = snap.middles("simpim.test.mid.", ".seen");
        assert!(mids.contains(&"STAGE_A".to_string()));
        assert!(mids.contains(&"STAGE_B".to_string()));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let ns = "simpim.test.roundtrip";
        counter_add(&format!("{ns}.c"), 7);
        gauge_set(&format!("{ns}.g"), 0.25);
        histogram_record(&format!("{ns}.h"), 1234);
        histogram_record(&format!("{ns}.h"), 5);
        histogram_record_exemplar(&format!("{ns}.h"), 9999, 42);
        let snap = snapshot();
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.counter(&format!("{ns}.c")), Some(7));
        assert_eq!(back.gauge(&format!("{ns}.g")), Some(0.25));
        let h = back.histogram(&format!("{ns}.h")).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 5);
        assert_eq!(
            h.nonzero_exemplars(),
            vec![(
                Histogram::bucket_lower_bound(Histogram::bucket_index(9999)),
                9999,
                42
            )],
            "exemplars survive the JSON round-trip"
        );
    }
}

//! A minimal JSON value model with writer and parser.
//!
//! The workspace's `serde` is an offline no-op stub (see `vendor/serde`),
//! so run artifacts are serialized through this module instead: a small,
//! dependency-free JSON implementation sufficient for the artifact schema —
//! objects keep insertion order (deterministic output), numbers are `f64`
//! (integers up to 2⁵³ round-trip exactly), and strings support the full
//! JSON escape set.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers up to 2⁵³ are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered so output is deterministic.
    Obj(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] value. Implemented across the workspace for
/// the report types an artifact carries.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion back from a [`Json`] value (artifact loading).
pub trait FromJson: Sized {
    /// Parses `self` out of a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Errors from parsing or interpreting JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input text is not valid JSON.
    Syntax {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        what: &'static str,
    },
    /// The JSON is valid but does not match the expected shape.
    Shape {
        /// What was expected (e.g. a missing key or a type mismatch).
        what: String,
    },
}

impl JsonError {
    /// Shorthand shape error.
    pub fn shape(what: impl Into<String>) -> Self {
        Self::Shape { what: what.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { at, what } => write!(f, "JSON syntax error at byte {at}: {what}"),
            Self::Shape { what } => write!(f, "JSON shape error: {what}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Required-member lookup, as a shape error when absent.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing key {key:?}")))
    }

    /// Serializes to indented JSON text (2-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    pad(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    pad(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError::Syntax {
                at: p.pos,
                what: "trailing characters after value",
            });
        }
        Ok(v)
    }
}

/// Compact JSON text (`format!("{v}")` / `v.to_string()`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; serialize as null (matches serde_json's
        // lossy float behaviour closely enough for telemetry).
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's float Display is shortest-round-trip.
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError::Syntax { at: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unexpected end"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("unexpected end"))?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

// Blanket-ish impls for common primitives, so artifact assembly stays
// terse.
impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}
impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}
impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = Json::obj([
            ("a", Json::Num(1.0)),
            ("b", Json::Num(-2.5)),
            ("c", Json::Str("hi \"there\"\n".to_string())),
            (
                "d",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(1e-12)]),
            ),
            ("e", Json::Obj(Vec::new())),
            ("f", Json::Arr(Vec::new())),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("a"), Some(&Json::Num(2.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aé\n\tA😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé\n\tA😀");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] x",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn shortest_roundtrip_floats() {
        for x in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{x} → {text}");
        }
    }
}

//! Analytical host cost model: [`OpCounters`] → [`TimeBreakdown`].
//!
//! The mapping mirrors how the paper's profiling attributes time to the
//! Eq. 1 components:
//!
//! * `T_c` — retired simple ops at the sustained issue width;
//! * `T_cache` — streamed bytes at the single-thread streaming bandwidth
//!   plus one DRAM round-trip per random fetch, plus write traffic at the
//!   write bandwidth. This is the data-transfer cost PIM attacks;
//! * `T_ALU` — long-latency divide/sqrt at their pipeline latencies;
//! * `T_Br` — branches × misprediction rate × penalty;
//! * `T_Fe` — a fixed fraction of `T_c` for fetch/decode overhead.

use crate::breakdown::TimeBreakdown;
use crate::constants;
use crate::counters::OpCounters;

/// Host-side latency/bandwidth parameters (defaults = the paper's machine,
/// see [`crate::constants`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostParams {
    /// Clock period in nanoseconds.
    pub cycle_ns: f64,
    /// Sustained simple ops per cycle.
    pub issue_width: f64,
    /// Divide latency in cycles.
    pub div_latency_cycles: f64,
    /// Square-root latency in cycles.
    pub sqrt_latency_cycles: f64,
    /// Branch misprediction penalty in cycles.
    pub branch_penalty_cycles: f64,
    /// Fraction of counted branches that mispredict.
    pub mispredict_rate: f64,
    /// Front-end overhead as a fraction of `T_c`.
    pub frontend_frac: f64,
    /// Sequential read bandwidth in GB/s.
    pub stream_bandwidth_gbps: f64,
    /// Random access latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Write bandwidth in GB/s.
    pub write_bandwidth_gbps: f64,
}

impl Default for HostParams {
    fn default() -> Self {
        Self {
            cycle_ns: constants::CYCLE_NS,
            issue_width: constants::ISSUE_WIDTH,
            div_latency_cycles: constants::DIV_LATENCY_CYCLES,
            sqrt_latency_cycles: constants::SQRT_LATENCY_CYCLES,
            branch_penalty_cycles: constants::BRANCH_PENALTY_CYCLES,
            mispredict_rate: constants::MISPREDICT_RATE,
            frontend_frac: constants::FRONTEND_OVERHEAD_FRAC,
            stream_bandwidth_gbps: constants::STREAM_BANDWIDTH_GBPS,
            mem_latency_ns: constants::DRAM_LATENCY_NS,
            write_bandwidth_gbps: constants::WRITE_BANDWIDTH_GBPS,
        }
    }
}

impl HostParams {
    /// Converts counters into the Eq. 1 breakdown.
    pub fn evaluate(&self, c: &OpCounters) -> TimeBreakdown {
        let simple_ops = (c.arith + c.mul + c.cmp + c.branch) as f64;
        let tc_ns = simple_ops / self.issue_width * self.cycle_ns;

        let tcache_ns = c.bytes_streamed as f64 / self.stream_bandwidth_gbps
            + c.random_fetches as f64 * self.mem_latency_ns
            + c.bytes_written as f64 / self.write_bandwidth_gbps;

        let talu_ns = (c.div as f64 * self.div_latency_cycles
            + c.sqrt as f64 * self.sqrt_latency_cycles)
            * self.cycle_ns;

        let tbr_ns =
            c.branch as f64 * self.mispredict_rate * self.branch_penalty_cycles * self.cycle_ns;

        let tfe_ns = tc_ns * self.frontend_frac;

        TimeBreakdown {
            tc_ns,
            tcache_ns,
            talu_ns,
            tbr_ns,
            tfe_ns,
        }
    }

    /// Pure data-transfer time for `bytes` of sequential traffic — the
    /// `T_cost` unit of Eq. 13's execution-plan model.
    pub fn stream_time_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.stream_bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_units_line_up() {
        // bytes / GB/s = ns exactly: 10 GB at 10 GB/s = 1 s = 1e9 ns.
        let p = HostParams::default();
        let t = p.stream_time_ns(10_000_000_000);
        assert!((t - 1e9).abs() < 1.0);
    }

    #[test]
    fn linear_scan_is_memory_bound() {
        // A Standard-kNN-style scan: per object, stream d·8 bytes and do
        // 3d flops + 1 compare. The paper's Fig. 5 observes 65–83% of time
        // in T_cache — the model must land in that band.
        let p = HostParams::default();
        let (n, d) = (100_000u64, 420u64);
        let mut c = OpCounters::new();
        for _ in 0..n {
            c.euclidean_kernel(d, d * 8);
            c.prune_test();
        }
        let b = p.evaluate(&c);
        let frac = b.tcache_fraction();
        assert!((0.6..=0.85).contains(&frac), "tcache fraction {frac}");
    }

    #[test]
    fn divisions_surface_in_talu() {
        let p = HostParams::default();
        let mut c = OpCounters::new();
        c.div = 1000;
        let b = p.evaluate(&c);
        assert!(b.talu_ns > 0.0);
        assert_eq!(b.tc_ns, 0.0);
        assert!((b.talu_ns - 1000.0 * 20.0 * constants::CYCLE_NS).abs() < 1e-9);
    }

    #[test]
    fn branches_cost_both_tc_and_tbr() {
        let p = HostParams::default();
        let mut c = OpCounters::new();
        c.branch = 10_000;
        let b = p.evaluate(&c);
        assert!(b.tbr_ns > 0.0);
        assert!(b.tc_ns > 0.0);
        // Expected misprediction cost: n · rate · penalty · cycle.
        let expect = 10_000.0 * 0.03 * 16.0 * constants::CYCLE_NS;
        assert!((b.tbr_ns - expect).abs() < 1e-6);
    }

    #[test]
    fn random_fetches_pay_latency() {
        let p = HostParams::default();
        let mut seq = OpCounters::new();
        seq.stream(64 * 1000);
        let mut rnd = OpCounters::new();
        for _ in 0..1000 {
            rnd.random_fetch(64);
        }
        assert!(p.evaluate(&rnd).tcache_ns > 10.0 * p.evaluate(&seq).tcache_ns);
    }

    #[test]
    fn frontend_tracks_compute() {
        let p = HostParams::default();
        let mut c = OpCounters::new();
        c.arith = 1_000_000;
        let b = p.evaluate(&c);
        assert!((b.tfe_ns / b.tc_ns - p.frontend_frac).abs() < 1e-12);
    }

    #[test]
    fn writes_slower_than_reads() {
        let p = HostParams::default();
        let mut r = OpCounters::new();
        r.stream(1_000_000);
        let mut w = OpCounters::new();
        w.write(1_000_000);
        assert!(p.evaluate(&w).tcache_ns > p.evaluate(&r).tcache_ns);
    }
}

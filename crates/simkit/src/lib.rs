#![warn(missing_docs)]
//! # simpim-simkit
//!
//! The system-level performance model — this repository's substitute for
//! the paper's NVSim + Quartz simulation stack (Section VI-A) on the host
//! side, and for the PAPI hardware counters of Section IV-A.
//!
//! The paper characterizes execution time as (Eq. 1):
//!
//! ```text
//! T_total = T_c + T_cache + T_ALU + T_Br + T_Fe
//! ```
//!
//! * [`counters::OpCounters`] is the instrumentation vocabulary: mining
//!   algorithms count arithmetic / multiply / divide / compare / branch
//!   operations and the bytes they move (streamed scans, random fetches,
//!   writes).
//! * [`cost::HostParams`] converts counters into a [`breakdown::TimeBreakdown`]
//!   with the five components of Eq. 1, using latencies of the paper's
//!   platform (Table 5: 2.10 GHz Xeon E5-2620, 32 KB/256 KB/20 MB caches,
//!   DDR4).
//! * [`cache`] is a set-associative LRU multi-level cache simulator used to
//!   validate the analytical miss-cost assumptions on sampled access traces
//!   (the trace-driven counterpart of the analytical `T_cache`).
//! * [`quartz`] applies Quartz-style delay injection when main memory is
//!   ReRAM instead of DRAM (reads comparable, writes ~5× slower — Table 1).

pub mod breakdown;
pub mod cache;
pub mod constants;
pub mod cost;
pub mod counters;
pub mod quartz;

pub use breakdown::TimeBreakdown;
pub use cache::{AccessOutcome, Cache, CacheConfig, Hierarchy, HierarchyStats};
pub use cost::HostParams;
pub use counters::{FaultCounters, OpCounters};
pub use quartz::NvmEmulator;

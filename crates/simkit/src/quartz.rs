//! Quartz-style NVM delay injection.
//!
//! The paper uses Quartz (a software NVM performance emulator from HP) to
//! estimate end-to-end latency when main memory is ReRAM instead of DRAM.
//! Quartz works by injecting delays proportional to memory traffic into
//! each execution epoch; [`NvmEmulator`] does the analytical equivalent:
//! it rescales the memory-stall component of a [`TimeBreakdown`] by the
//! read/write latency ratios of Table 1 (ReRAM reads ≈ DRAM reads; ReRAM
//! writes ≈ 5× slower).

use crate::breakdown::TimeBreakdown;
use crate::constants;
use crate::cost::HostParams;
use crate::counters::OpCounters;

/// Delay-injection factors for a ReRAM (or other NVM) main memory.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NvmEmulator {
    /// Multiplier on read-side memory stall time.
    pub read_factor: f64,
    /// Multiplier on write-side memory stall time.
    pub write_factor: f64,
}

impl Default for NvmEmulator {
    fn default() -> Self {
        Self {
            read_factor: constants::NVM_READ_FACTOR,
            write_factor: constants::NVM_WRITE_FACTOR,
        }
    }
}

impl NvmEmulator {
    /// Evaluates counters under NVM main memory: like
    /// [`HostParams::evaluate`] but with the read/write stall components
    /// scaled by the injection factors.
    pub fn evaluate(&self, params: &HostParams, c: &OpCounters) -> TimeBreakdown {
        let mut b = params.evaluate(c);
        let read_ns = c.bytes_streamed as f64 / params.stream_bandwidth_gbps
            + c.random_fetches as f64 * params.mem_latency_ns;
        let write_ns = c.bytes_written as f64 / params.write_bandwidth_gbps;
        b.tcache_ns = read_ns * self.read_factor + write_ns * self.write_factor;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_unchanged_writes_slower() {
        let params = HostParams::default();
        let emu = NvmEmulator::default();

        let mut reads = OpCounters::new();
        reads.stream(1_000_000);
        let dram = params.evaluate(&reads);
        let nvm = emu.evaluate(&params, &reads);
        assert!((dram.tcache_ns - nvm.tcache_ns).abs() < 1e-9);

        let mut writes = OpCounters::new();
        writes.write(1_000_000);
        let dram_w = params.evaluate(&writes);
        let nvm_w = emu.evaluate(&params, &writes);
        assert!((nvm_w.tcache_ns / dram_w.tcache_ns - 5.0).abs() < 1e-9);
    }

    #[test]
    fn non_memory_components_untouched() {
        let params = HostParams::default();
        let emu = NvmEmulator::default();
        let mut c = OpCounters::new();
        c.arith = 1000;
        c.div = 10;
        c.branch = 100;
        let dram = params.evaluate(&c);
        let nvm = emu.evaluate(&params, &c);
        assert_eq!(dram.tc_ns, nvm.tc_ns);
        assert_eq!(dram.talu_ns, nvm.talu_ns);
        assert_eq!(dram.tbr_ns, nvm.tbr_ns);
        assert_eq!(dram.tfe_ns, nvm.tfe_ns);
    }

    #[test]
    fn custom_factors_apply() {
        let params = HostParams::default();
        let emu = NvmEmulator {
            read_factor: 2.0,
            write_factor: 1.0,
        };
        let mut c = OpCounters::new();
        c.stream(1_000_000);
        let nvm = emu.evaluate(&params, &c);
        let dram = params.evaluate(&c);
        assert!((nvm.tcache_ns / dram.tcache_ns - 2.0).abs() < 1e-9);
    }
}

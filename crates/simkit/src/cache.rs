//! Set-associative LRU cache simulator.
//!
//! The analytical `T_cache` model in [`crate::cost`] assumes linear scans
//! miss all levels while small working sets (bound tables, centroids) stay
//! resident. This trace-driven simulator validates those assumptions: the
//! profiling crate replays sampled access traces through a three-level
//! hierarchy and compares observed miss rates with the model. It also backs
//! the cache-geometry ablation bench.

use crate::constants;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// The paper machine's L1 (32 KB, 8-way).
    pub fn l1() -> Self {
        Self {
            capacity_bytes: constants::L1_BYTES,
            ways: constants::L1_WAYS,
            line_bytes: constants::LINE_BYTES,
        }
    }

    /// The paper machine's L2 (256 KB, 8-way).
    pub fn l2() -> Self {
        Self {
            capacity_bytes: constants::L2_BYTES,
            ways: constants::L2_WAYS,
            line_bytes: constants::LINE_BYTES,
        }
    }

    /// The paper machine's L3 (20 MB, 16-way).
    pub fn l3() -> Self {
        Self {
            capacity_bytes: constants::L3_BYTES,
            ways: constants::L3_WAYS,
            line_bytes: constants::LINE_BYTES,
        }
    }
}

/// One set-associative LRU cache level.
///
/// Each set keeps its ways ordered most-recently-used first; tags are line
/// addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<u64>>, // MRU-first tag lists, one per set
    hits: u64,
    misses: u64,
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AccessOutcome {
    /// Hit in L1.
    L1,
    /// Hit in L2.
    L2,
    /// Hit in L3.
    L3,
    /// Missed all levels; serviced by memory.
    Memory,
}

impl Cache {
    /// An empty cache of the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.sets() > 0, "cache must have at least one set");
        Self {
            cfg,
            sets: vec![Vec::new(); cfg.sets()],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Misses install the line,
    /// evicting LRU.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.hits += 1;
            true
        } else {
            set.insert(0, line);
            if set.len() > self.cfg.ways {
                set.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

/// Per-level access statistics of a [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct HierarchyStats {
    /// Accesses serviced by L1.
    pub l1_hits: u64,
    /// Accesses serviced by L2.
    pub l2_hits: u64,
    /// Accesses serviced by L3.
    pub l3_hits: u64,
    /// Accesses that went to memory.
    pub memory: u64,
}

impl HierarchyStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.memory
    }

    /// Average access latency in nanoseconds under the paper machine's
    /// level latencies.
    pub fn avg_latency_ns(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let cyc = constants::CYCLE_NS;
        (self.l1_hits as f64 * constants::L1_LATENCY_CYCLES * cyc
            + self.l2_hits as f64 * constants::L2_LATENCY_CYCLES * cyc
            + self.l3_hits as f64 * constants::L3_LATENCY_CYCLES * cyc
            + self.memory as f64 * constants::DRAM_LATENCY_NS)
            / total as f64
    }
}

/// A three-level inclusive hierarchy (L1 → L2 → L3 → memory).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// The paper machine's hierarchy.
    pub fn paper_machine() -> Self {
        Self::new(CacheConfig::l1(), CacheConfig::l2(), CacheConfig::l3())
    }

    /// A custom hierarchy.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
            stats: HierarchyStats::default(),
        }
    }

    /// Accesses one address, probing levels in order.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return AccessOutcome::L1;
        }
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            return AccessOutcome::L2;
        }
        if self.l3.access(addr) {
            self.stats.l3_hits += 1;
            return AccessOutcome::L3;
        }
        self.stats.memory += 1;
        AccessOutcome::Memory
    }

    /// Streams a sequential byte range as word-granular accesses.
    pub fn stream_range(&mut self, start: u64, bytes: u64, word: u64) {
        let mut a = start;
        while a < start + bytes {
            self.access(a);
            a += word;
        }
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way sets, 8 sets → lines mapping to set 0: 0, 8, 16 (×64B).
        let mut c = tiny();
        assert_eq!(c.config().sets(), 8);
        c.access(0); // line 0 → set 0
        c.access(8 * 64); // line 8 → set 0
        c.access(16 * 64); // line 16 → set 0, evicts line 0
        assert!(!c.access(0), "line 0 must have been evicted");
        assert!(c.access(16 * 64));
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = tiny();
        // 1024 B capacity = 16 lines; touch 8 lines twice.
        for round in 0..2 {
            for i in 0..8u64 {
                let hit = c.access(i * 64);
                if round == 1 {
                    assert!(hit);
                }
            }
        }
        assert_eq!(c.miss_ratio(), 0.5);
    }

    #[test]
    fn streaming_scan_misses_every_line() {
        let mut h = Hierarchy::new(
            CacheConfig {
                capacity_bytes: 1024,
                ways: 2,
                line_bytes: 64,
            },
            CacheConfig {
                capacity_bytes: 4096,
                ways: 4,
                line_bytes: 64,
            },
            CacheConfig {
                capacity_bytes: 16384,
                ways: 4,
                line_bytes: 64,
            },
        );
        // Stream 1 MB once: far beyond L3 → every line fetch goes to
        // memory; within-line word accesses hit L1.
        h.stream_range(0, 1 << 20, 8);
        let s = *h.stats();
        let lines = (1u64 << 20) / 64;
        assert_eq!(s.memory, lines);
        assert_eq!(s.l1_hits, s.total() - lines);
        // Line-granular miss cost dominates the average latency relative
        // to pure L1 latency.
        assert!(s.avg_latency_ns() > 2.0 * constants::L1_LATENCY_CYCLES * constants::CYCLE_NS);
    }

    #[test]
    fn second_pass_over_small_data_hits_l1() {
        let mut h = Hierarchy::paper_machine();
        h.stream_range(0, 16 * 1024, 8);
        let cold = h.stats().memory;
        h.stream_range(0, 16 * 1024, 8);
        assert_eq!(h.stats().memory, cold, "second pass must not touch memory");
    }

    #[test]
    fn paper_machine_geometry() {
        let h = Hierarchy::paper_machine();
        assert_eq!(h.l1.config().capacity_bytes, 32 * 1024);
        assert_eq!(h.l3.config().sets(), 20 * 1024 * 1024 / (16 * 64));
    }

    #[test]
    fn stats_latency_zero_when_untouched() {
        assert_eq!(HierarchyStats::default().avg_latency_ns(), 0.0);
    }
}

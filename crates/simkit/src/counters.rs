//! Operation counters — the PAPI substitute.
//!
//! Mining algorithms increment these counters as they run; the cost model
//! ([`crate::cost::HostParams`]) converts the totals into the five time
//! components of Eq. 1. Counting is deterministic, so profiles are exactly
//! reproducible (unlike sampled hardware counters).

/// Deterministic operation/traffic counters for one measured scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct OpCounters {
    /// Simple arithmetic ops (add/sub/fma treated as one each).
    pub arith: u64,
    /// Multiplications (same issue cost as `arith`, counted separately for
    /// reporting).
    pub mul: u64,
    /// Divisions (long-latency: contributes to `T_ALU`).
    pub div: u64,
    /// Square roots (long-latency: contributes to `T_ALU`).
    pub sqrt: u64,
    /// Comparisons.
    pub cmp: u64,
    /// Conditional branches (data-dependent; contributes to `T_Br`).
    pub branch: u64,
    /// Bytes read as sequential streams (scans over vectors / bound
    /// tables) — the dominant `T_cache` driver.
    pub bytes_streamed: u64,
    /// Number of random fetches (each pays one memory round-trip latency
    /// on top of its streamed bytes — refinement reads of far-away rows).
    pub random_fetches: u64,
    /// Bytes written to memory (pre-processing, bound tables, centroids).
    pub bytes_written: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set.
    pub fn add(&mut self, other: &OpCounters) {
        self.arith += other.arith;
        self.mul += other.mul;
        self.div += other.div;
        self.sqrt += other.sqrt;
        self.cmp += other.cmp;
        self.branch += other.branch;
        self.bytes_streamed += other.bytes_streamed;
        self.random_fetches += other.random_fetches;
        self.bytes_written += other.bytes_written;
    }

    /// Counter difference (`self − other`), for scoped measurements.
    /// Saturates at zero rather than wrapping.
    pub fn delta(&self, before: &OpCounters) -> OpCounters {
        OpCounters {
            arith: self.arith.saturating_sub(before.arith),
            mul: self.mul.saturating_sub(before.mul),
            div: self.div.saturating_sub(before.div),
            sqrt: self.sqrt.saturating_sub(before.sqrt),
            cmp: self.cmp.saturating_sub(before.cmp),
            branch: self.branch.saturating_sub(before.branch),
            bytes_streamed: self.bytes_streamed.saturating_sub(before.bytes_streamed),
            random_fetches: self.random_fetches.saturating_sub(before.random_fetches),
            bytes_written: self.bytes_written.saturating_sub(before.bytes_written),
        }
    }

    /// Records a sequential scan of `bytes`.
    #[inline]
    pub fn stream(&mut self, bytes: u64) {
        self.bytes_streamed += bytes;
    }

    /// Records a random fetch of `bytes` (one latency + streamed payload).
    #[inline]
    pub fn random_fetch(&mut self, bytes: u64) {
        self.random_fetches += 1;
        self.bytes_streamed += bytes;
    }

    /// Records writing `bytes`.
    #[inline]
    pub fn write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
    }

    /// Records the inner loop of a `d`-dimensional squared-ED computation:
    /// `d` subtractions, `d` multiplies, `d` adds, plus the streamed reads
    /// of both operands (`2·d·width` bytes — or `d·width` when one operand
    /// stays cache-resident, which the caller accounts by passing
    /// `operand_bytes`).
    #[inline]
    pub fn euclidean_kernel(&mut self, d: u64, operand_bytes: u64) {
        self.arith += 2 * d;
        self.mul += d;
        self.bytes_streamed += operand_bytes;
    }

    /// Records a `d`-dimensional dot-product kernel (`d` muls, `d` adds).
    #[inline]
    pub fn dot_kernel(&mut self, d: u64, operand_bytes: u64) {
        self.arith += d;
        self.mul += d;
        self.bytes_streamed += operand_bytes;
    }

    /// Records one compare-and-branch (pruning test).
    #[inline]
    pub fn prune_test(&mut self) {
        self.cmp += 1;
        self.branch += 1;
    }

    /// Total operation count (all classes).
    pub fn total_ops(&self) -> u64 {
        self.arith + self.mul + self.div + self.sqrt + self.cmp + self.branch
    }
}

impl simpim_obs::ToJson for OpCounters {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("arith", self.arith.to_json()),
            ("mul", self.mul.to_json()),
            ("div", self.div.to_json()),
            ("sqrt", self.sqrt.to_json()),
            ("cmp", self.cmp.to_json()),
            ("branch", self.branch.to_json()),
            ("bytes_streamed", self.bytes_streamed.to_json()),
            ("random_fetches", self.random_fetches.to_json()),
            ("bytes_written", self.bytes_written.to_json()),
        ])
    }
}

/// Deterministic counters for the PIM fault-tolerance machinery: how much
/// detection, recovery and host-side fallback work a run incurred.
///
/// Like [`OpCounters`], these are exact event counts, not samples — two runs
/// with the same fault seed report identical totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultCounters {
    /// Scrub passes executed over programmed regions.
    pub scrubs: u64,
    /// Faulty cells / dead lines found by scrubbing.
    pub faults_detected: u64,
    /// Extra ADC sampling attempts spent on transient glitches.
    pub adc_retries: u64,
    /// Dead crossbars remapped onto spare capacity.
    pub remapped_crossbars: u64,
    /// Objects quarantined because no clean spare could take them.
    pub quarantined_rows: u64,
    /// Bounds recomputed exactly on the host for quarantined objects.
    pub fallback_refinements: u64,
    /// Bounds widened by the drift guard-band instead of recomputed.
    pub guarded_bounds: u64,
}

impl FaultCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set.
    pub fn add(&mut self, other: &FaultCounters) {
        self.scrubs += other.scrubs;
        self.faults_detected += other.faults_detected;
        self.adc_retries += other.adc_retries;
        self.remapped_crossbars += other.remapped_crossbars;
        self.quarantined_rows += other.quarantined_rows;
        self.fallback_refinements += other.fallback_refinements;
        self.guarded_bounds += other.guarded_bounds;
    }

    /// True when no fault, recovery or fallback event was recorded.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

impl simpim_obs::ToJson for FaultCounters {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("scrubs", self.scrubs.to_json()),
            ("faults_detected", self.faults_detected.to_json()),
            ("adc_retries", self.adc_retries.to_json()),
            ("remapped_crossbars", self.remapped_crossbars.to_json()),
            ("quarantined_rows", self.quarantined_rows.to_json()),
            ("fallback_refinements", self.fallback_refinements.to_json()),
            ("guarded_bounds", self.guarded_bounds.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_delta_are_inverse() {
        let mut a = OpCounters::new();
        a.euclidean_kernel(100, 800);
        a.prune_test();
        let snapshot = a;
        a.dot_kernel(50, 400);
        a.random_fetch(64);
        let d = a.delta(&snapshot);
        assert_eq!(d.mul, 50);
        assert_eq!(d.arith, 50);
        assert_eq!(d.bytes_streamed, 464);
        assert_eq!(d.random_fetches, 1);
        let mut back = snapshot;
        back.add(&d);
        assert_eq!(back, a);
    }

    #[test]
    fn kernels_count_expected_ops() {
        let mut c = OpCounters::new();
        c.euclidean_kernel(10, 160);
        assert_eq!(c.arith, 20);
        assert_eq!(c.mul, 10);
        assert_eq!(c.bytes_streamed, 160);
        c.dot_kernel(10, 80);
        assert_eq!(c.mul, 20);
        assert_eq!(c.total_ops(), 50); // 20+10 from ED kernel, 10+10 from dot kernel
    }

    #[test]
    fn delta_saturates() {
        let a = OpCounters::new();
        let mut b = OpCounters::new();
        b.arith = 5;
        assert_eq!(a.delta(&b).arith, 0);
    }

    #[test]
    fn write_and_stream_tracked_separately() {
        let mut c = OpCounters::new();
        c.stream(100);
        c.write(40);
        assert_eq!(c.bytes_streamed, 100);
        assert_eq!(c.bytes_written, 40);
    }

    #[test]
    fn fault_counters_accumulate_and_report_cleanliness() {
        let mut total = FaultCounters::new();
        assert!(total.is_clean());
        let batch = FaultCounters {
            scrubs: 1,
            faults_detected: 3,
            adc_retries: 2,
            remapped_crossbars: 1,
            quarantined_rows: 4,
            fallback_refinements: 4,
            guarded_bounds: 7,
        };
        total.add(&batch);
        total.add(&batch);
        assert!(!total.is_clean());
        assert_eq!(total.scrubs, 2);
        assert_eq!(total.faults_detected, 6);
        assert_eq!(total.quarantined_rows, 8);
        assert_eq!(total.guarded_bounds, 14);
    }
}

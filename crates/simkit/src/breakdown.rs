//! The five-component time breakdown of Eq. 1.

use std::fmt;

/// `T_total = T_c + T_cache + T_ALU + T_Br + T_Fe`, all in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TimeBreakdown {
    /// Computation time actually spent executing operations.
    pub tc_ns: f64,
    /// Memory stall time from data transfer (cache/TLB misses).
    pub tcache_ns: f64,
    /// ALU execution stalls from long-latency ops (divide, sqrt).
    pub talu_ns: f64,
    /// Branch misprediction stalls.
    pub tbr_ns: f64,
    /// Front-end (fetch/decode) stalls.
    pub tfe_ns: f64,
}

impl TimeBreakdown {
    /// Total execution time in nanoseconds (Eq. 1).
    pub fn total_ns(&self) -> f64 {
        self.tc_ns + self.tcache_ns + self.talu_ns + self.tbr_ns + self.tfe_ns
    }

    /// Total execution time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() / 1e6
    }

    /// Fraction of total time spent in memory stalls (the paper's headline
    /// profiling observation: 62–83% for kNN / k-means).
    pub fn tcache_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0.0 {
            0.0
        } else {
            self.tcache_ns / t
        }
    }

    /// The five components as fractions `[tc, tcache, talu, tbr, tfe]`
    /// summing to 1 (or all zeros for an empty breakdown).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total_ns();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.tc_ns / t,
            self.tcache_ns / t,
            self.talu_ns / t,
            self.tbr_ns / t,
            self.tfe_ns / t,
        ]
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &TimeBreakdown) {
        self.tc_ns += other.tc_ns;
        self.tcache_ns += other.tcache_ns;
        self.talu_ns += other.talu_ns;
        self.tbr_ns += other.tbr_ns;
        self.tfe_ns += other.tfe_ns;
    }

    /// Component-wise scaling (e.g. extrapolating a sampled profile).
    pub fn scaled(&self, factor: f64) -> TimeBreakdown {
        TimeBreakdown {
            tc_ns: self.tc_ns * factor,
            tcache_ns: self.tcache_ns * factor,
            talu_ns: self.talu_ns * factor,
            tbr_ns: self.tbr_ns * factor,
            tfe_ns: self.tfe_ns * factor,
        }
    }
}

impl simpim_obs::ToJson for TimeBreakdown {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("tc_ns", Json::Num(self.tc_ns)),
            ("tcache_ns", Json::Num(self.tcache_ns)),
            ("talu_ns", Json::Num(self.talu_ns)),
            ("tbr_ns", Json::Num(self.tbr_ns)),
            ("tfe_ns", Json::Num(self.tfe_ns)),
            ("total_ns", Json::Num(self.total_ns())),
        ])
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fr = self.fractions();
        write!(
            f,
            "total {:.3} ms (Tc {:.1}%, Tcache {:.1}%, TALU {:.1}%, TBr {:.1}%, TFe {:.1}%)",
            self.total_ms(),
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0,
            fr[4] * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeBreakdown {
        TimeBreakdown {
            tc_ns: 10.0,
            tcache_ns: 70.0,
            talu_ns: 5.0,
            tbr_ns: 10.0,
            tfe_ns: 5.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let b = sample();
        assert_eq!(b.total_ns(), 100.0);
        assert!((b.tcache_fraction() - 0.7).abs() < 1e-12);
        let fr = b.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = TimeBreakdown::default();
        assert_eq!(b.total_ns(), 0.0);
        assert_eq!(b.tcache_fraction(), 0.0);
        assert_eq!(b.fractions(), [0.0; 5]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = sample();
        a.add(&sample());
        assert_eq!(a.total_ns(), 200.0);
        let s = a.scaled(0.5);
        assert_eq!(s.total_ns(), 100.0);
        assert_eq!(s.tc_ns, 10.0);
    }

    #[test]
    fn display_mentions_components() {
        let s = sample().to_string();
        assert!(s.contains("Tcache 70.0%"));
        assert!(s.contains("total"));
    }
}

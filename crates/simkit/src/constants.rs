//! Platform constants of the paper's evaluation machine (Table 5 host
//! side): a 2.10 GHz Intel Xeon E5-2620 (Broadwell) with 32 KB / 256 KB /
//! 20 MB caches and 16 GB DDR4, running single-threaded C++ at -O3.
//!
//! These are the defaults behind [`crate::cost::HostParams`]; every value
//! is overridable for sensitivity studies.

/// Core clock period in nanoseconds (2.10 GHz).
pub const CYCLE_NS: f64 = 1.0 / 2.1;

/// Sustained simple-op issue rate (adds/compares) for -O3 vectorized scans,
/// in operations per cycle. Broadwell retires up to 4 µops/cycle; dense
/// double-precision loops sustain ≈ 4 flops/cycle with AVX.
pub const ISSUE_WIDTH: f64 = 4.0;

/// Latency of a double-precision divide in cycles (Broadwell `divsd`).
pub const DIV_LATENCY_CYCLES: f64 = 20.0;

/// Latency of a double-precision square root in cycles (`sqrtsd`).
pub const SQRT_LATENCY_CYCLES: f64 = 20.0;

/// Branch misprediction penalty in cycles.
pub const BRANCH_PENALTY_CYCLES: f64 = 16.0;

/// Default fraction of branches mispredicted in data-dependent pruning
/// loops.
pub const MISPREDICT_RATE: f64 = 0.03;

/// Front-end (fetch/decode) stall overhead as a fraction of compute time
/// (`T_Fe` in Eq. 1).
pub const FRONTEND_OVERHEAD_FRAC: f64 = 0.12;

/// Sustained single-thread streaming bandwidth from DRAM in GB/s. A single
/// Broadwell core streams ≈ 10–12 GB/s of the ~17 GB/s channel peak.
pub const STREAM_BANDWIDTH_GBPS: f64 = 10.0;

/// Random-access (cache-miss) latency to DRAM in nanoseconds.
pub const DRAM_LATENCY_NS: f64 = 90.0;

/// Sustained single-thread write bandwidth to DRAM in GB/s.
pub const WRITE_BANDWIDTH_GBPS: f64 = 8.0;

/// Cache line size in bytes.
pub const LINE_BYTES: usize = 64;

/// L1 data cache: 32 KB, 8-way.
pub const L1_BYTES: usize = 32 * 1024;
/// L1 associativity.
pub const L1_WAYS: usize = 8;
/// L1 hit latency in cycles.
pub const L1_LATENCY_CYCLES: f64 = 4.0;

/// L2 cache: 256 KB, 8-way.
pub const L2_BYTES: usize = 256 * 1024;
/// L2 associativity.
pub const L2_WAYS: usize = 8;
/// L2 hit latency in cycles.
pub const L2_LATENCY_CYCLES: f64 = 12.0;

/// L3 cache: 20 MB, 16-way (shared; paper's machine).
pub const L3_BYTES: usize = 20 * 1024 * 1024;
/// L3 associativity.
pub const L3_WAYS: usize = 16;
/// L3 hit latency in cycles.
pub const L3_LATENCY_CYCLES: f64 = 40.0;

/// Quartz-style delay factor on reads when main memory is ReRAM instead of
/// DRAM (Table 1: comparable read latency).
pub const NVM_READ_FACTOR: f64 = 1.0;

/// Quartz-style delay factor on writes when main memory is ReRAM (Table 1:
/// ~50 ns vs ~10 ns).
pub const NVM_WRITE_FACTOR: f64 = 5.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sizes_match_table5() {
        assert_eq!(L1_BYTES, 32 * 1024);
        assert_eq!(L2_BYTES, 256 * 1024);
        assert_eq!(L3_BYTES, 20 * 1024 * 1024);
    }

    #[test]
    fn clock_matches_cpu() {
        assert!((CYCLE_NS * 2.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nvm_write_factor_reflects_table1() {
        // ReRAM writes ~50 ns vs DRAM ~10 ns.
        assert!((NVM_WRITE_FACTOR - 5.0).abs() < 1e-12);
        assert!((NVM_READ_FACTOR - 1.0).abs() < 1e-12);
    }
}

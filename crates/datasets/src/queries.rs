//! Query workload generation.
//!
//! kNN experiments need query objects drawn from the data distribution but
//! not present in the dataset: each query is a stored object plus small
//! Gaussian noise, clamped to the normalized range.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simpim_similarity::Dataset;

/// Samples `count` queries near dataset objects with per-coordinate noise
/// `noise_std`, deterministically from `seed`.
pub fn sample_queries(data: &Dataset, count: usize, noise_std: f64, seed: u64) -> Vec<Vec<f64>> {
    assert!(
        !data.is_empty(),
        "cannot sample queries from an empty dataset"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let base = data.row(rng.gen_range(0..data.len()));
            base.iter()
                .map(|&v| {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    (v + gauss * noise_std).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SyntheticConfig};

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n: 50,
            d: 16,
            clusters: 4,
            cluster_std: 0.05,
            stat_uniformity: 0.0,
            seed: 3,
        })
    }

    #[test]
    fn shape_and_range() {
        let ds = data();
        let qs = sample_queries(&ds, 7, 0.02, 11);
        assert_eq!(qs.len(), 7);
        assert!(qs.iter().all(|q| q.len() == 16));
        assert!(qs.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic() {
        let ds = data();
        assert_eq!(
            sample_queries(&ds, 5, 0.02, 1),
            sample_queries(&ds, 5, 0.02, 1)
        );
        assert_ne!(
            sample_queries(&ds, 5, 0.02, 1),
            sample_queries(&ds, 5, 0.02, 2)
        );
    }

    #[test]
    fn queries_are_near_the_data() {
        use simpim_similarity::measures::euclidean_sq;
        let ds = data();
        let qs = sample_queries(&ds, 5, 0.01, 4);
        for q in &qs {
            let nearest = ds
                .rows()
                .map(|r| euclidean_sq(r, q))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.1, "query too far from data: {nearest}");
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let empty = Dataset::with_dim(4).unwrap();
        sample_queries(&empty, 1, 0.01, 0);
    }
}

#![warn(missing_docs)]
//! # simpim-datasets
//!
//! Seeded synthetic workloads mirroring the paper's eight real datasets
//! (Table 6) and its LSH binary-code workload (Fig. 14).
//!
//! The real datasets are not redistributable here, so each is replaced by
//! a generator matched on the properties the experiments actually depend
//! on:
//!
//! * **shape** — `N` and `d` from Table 6 (down-scalable; benches default
//!   to a laptop-scale fraction via `SIMPIM_SCALE`);
//! * **prunability** — cluster count and spread control how well distance
//!   bounds separate near from far objects;
//! * **segment-statistic uniformity** — the knob behind the paper's GIST
//!   observation (`LB_FNN` reaches only 71.3% of the exact distance on
//!   GIST vs 95.4% on MSD): with high uniformity every object shares the
//!   same per-segment mean/σ, blinding segmented bounds while exact
//!   distances still vary.
//!
//! All generation is deterministic given the seed.

pub mod io;
pub mod lsh;
pub mod queries;
pub mod spec;
pub mod stream;
pub mod synth;
pub mod timeseries;

pub use lsh::lsh_codes;
pub use queries::sample_queries;
pub use spec::{DatasetSpec, PaperDataset};
pub use stream::{
    env_block_rows, DatasetSource, LshCodeSource, SynthSource, TimeseriesWindowSource,
};
pub use synth::{generate, generate_labeled, SyntheticConfig};

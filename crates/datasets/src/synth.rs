//! The synthetic generator: Gaussian-mixture structure with a
//! segment-statistic-uniformity knob.
//!
//! 1. Draw `clusters` centers uniformly in `[0.2, 0.8]^d`.
//! 2. Each object = its cluster's center + N(0, cluster_std²) per
//!    coordinate, clamped to `[0, 1]`.
//! 3. With uniformity `w > 0`, re-shape every length-[`UNIFORM_BLOCK`]
//!    block so its mean and σ move toward a *global template* shared by
//!    all objects: `x ← (µ_t + w·(µ_t − µ) + (x − µ)·((1−w) + w·σ_t/σ))`
//!    — at `w = 1` every object has identical block statistics (and hence
//!    identical statistics at any coarser segmentation), while the
//!    *arrangement* of values inside blocks still differs, so exact
//!    distances remain informative. This reproduces GIST's weak `LB_FNN`
//!    pruning.

use crate::spec::DatasetSpec;
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr_normal::sample_normal;
use simpim_similarity::Dataset;

/// Block length at which statistics are templated. Divides every Table 6
/// dimensionality that uses a nonzero uniformity.
pub const UNIFORM_BLOCK: usize = 2;

/// Full generation parameters (a [`DatasetSpec`] plus the realized `n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of objects to generate.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Latent clusters.
    pub clusters: usize,
    /// Within-cluster coordinate σ.
    pub cluster_std: f64,
    /// Segment-statistic uniformity in `[0, 1]`.
    pub stat_uniformity: f64,
    /// Seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Realizes a spec at `n` objects.
    pub fn from_spec(spec: &DatasetSpec, n: usize) -> Self {
        Self {
            n,
            d: spec.d,
            clusters: spec.clusters,
            cluster_std: spec.cluster_std,
            stat_uniformity: spec.stat_uniformity,
            seed: spec.seed,
        }
    }
}

// A tiny inlined normal sampler (Box–Muller) so the crate needs only the
// `rand` core; kept in a private module to mirror `rand_distr`'s API shape.
mod rand_distr_normal {
    use rand::Rng;

    /// One N(0, 1) sample via Box–Muller.
    pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

fn block_stats(block: &[f64]) -> (f64, f64) {
    let l = block.len() as f64;
    let mu = block.iter().sum::<f64>() / l;
    let var = block.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / l;
    (mu, var.max(0.0).sqrt())
}

/// Draws one object into `row` and returns its cluster label. Consumes a
/// fixed run of RNG draws per call (1 label + 2·d normals), which is what
/// makes block-streamed generation bit-identical to one-shot
/// ([`crate::stream::SynthSource`]).
pub(crate) fn gen_row(
    rng: &mut StdRng,
    cfg: &SyntheticConfig,
    centers: &[Vec<f64>],
    template: &[(f64, f64)],
    row: &mut [f64],
) -> usize {
    let w = cfg.stat_uniformity;
    let label = rng.gen_range(0..cfg.clusters);
    let center = &centers[label];
    for (x, &c) in row.iter_mut().zip(center) {
        *x = (c + sample_normal(rng) * cfg.cluster_std).clamp(0.0, 1.0);
    }
    if w > 0.0 && cfg.d >= UNIFORM_BLOCK {
        for (bi, block) in row.chunks_exact_mut(UNIFORM_BLOCK).enumerate() {
            let (mu, sigma) = block_stats(block);
            let (mu_t, sigma_t) = template[bi.min(template.len() - 1)];
            let target_mu = mu + w * (mu_t - mu);
            let gain = if sigma > 1e-12 {
                1.0 + w * (sigma_t / sigma - 1.0)
            } else {
                1.0
            };
            for x in block.iter_mut() {
                *x = (target_mu + (*x - mu) * gain).clamp(0.0, 1.0);
            }
        }
    }
    label
}

/// Generates a dataset with labels (the latent cluster of each object).
///
/// One-shot generation is a single full pull of the streaming source, so
/// the streamed/one-shot bit-identity contract holds by construction.
pub fn generate_labeled(cfg: &SyntheticConfig) -> (Dataset, Vec<usize>) {
    let mut src = crate::stream::SynthSource::new(*cfg);
    let mut flat = Vec::with_capacity(cfg.n * cfg.d);
    let mut labels = Vec::with_capacity(cfg.n);
    while src.next_block_labeled(cfg.n, &mut flat, &mut labels) > 0 {}
    (
        Dataset::from_flat(flat, cfg.d).expect("shape by construction"),
        labels,
    )
}

/// Generates a dataset (labels discarded).
pub fn generate(cfg: &SyntheticConfig) -> Dataset {
    generate_labeled(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::SegmentStats;

    fn cfg(n: usize, d: usize, uniformity: f64) -> SyntheticConfig {
        SyntheticConfig {
            n,
            d,
            clusters: 4,
            cluster_std: 0.05,
            stat_uniformity: uniformity,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&cfg(50, 16, 0.3));
        let b = generate(&cfg(50, 16, 0.3));
        assert_eq!(a, b);
        let mut other = cfg(50, 16, 0.3);
        other.seed = 43;
        assert_ne!(generate(&other), a);
    }

    #[test]
    fn values_in_unit_range() {
        let ds = generate(&cfg(100, 32, 0.9));
        assert!(ds.as_flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dim(), 32);
    }

    #[test]
    fn labels_match_cluster_count() {
        let (ds, labels) = generate_labeled(&cfg(200, 8, 0.0));
        assert_eq!(labels.len(), ds.len());
        assert!(labels.iter().all(|&l| l < 4));
        // All clusters populated at n = 200.
        for c in 0..4 {
            assert!(labels.contains(&c));
        }
    }

    #[test]
    fn clustered_points_are_nearer_within_cluster() {
        let (ds, labels) = generate_labeled(&cfg(100, 32, 0.0));
        use simpim_similarity::measures::euclidean_sq;
        // Average within-cluster distance must undercut between-cluster.
        let (mut within, mut wn, mut between, mut bn) = (0.0, 0u64, 0.0, 0u64);
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let dist = euclidean_sq(ds.row(i), ds.row(j));
                if labels[i] == labels[j] {
                    within += dist;
                    wn += 1;
                } else {
                    between += dist;
                    bn += 1;
                }
            }
        }
        assert!(within / (wn as f64) < 0.5 * (between / bn as f64));
    }

    #[test]
    fn uniformity_blinds_segment_statistics() {
        // At w = 1, every object's segment means coincide, so the
        // segment-mean spread collapses relative to w = 0 — the GIST
        // effect on LB_SM / LB_FNN.
        let spread = |uniformity: f64| -> f64 {
            let ds = generate(&cfg(60, 32, uniformity));
            let segs = 8;
            let mut means = Vec::new();
            for row in ds.rows() {
                means.push(SegmentStats::compute(row, segs).unwrap().means);
            }
            // Average per-segment variance of the mean across objects.
            (0..segs)
                .map(|s| {
                    let vals: Vec<f64> = means.iter().map(|m| m[s]).collect();
                    let mu = vals.iter().sum::<f64>() / vals.len() as f64;
                    vals.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / vals.len() as f64
                })
                .sum::<f64>()
                / segs as f64
        };
        let loose = spread(0.0);
        let tight = spread(1.0);
        assert!(
            tight < loose / 50.0,
            "w=1 spread {tight} vs w=0 spread {loose}"
        );
    }

    #[test]
    fn exact_distances_survive_uniformity() {
        // Even at w = 1 the dataset is not degenerate: pairwise exact
        // distances stay spread out (bounds get weak, scans stay
        // meaningful).
        let ds = generate(&cfg(40, 32, 1.0));
        use simpim_similarity::measures::euclidean_sq;
        let mut dists: Vec<f64> = Vec::new();
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                dists.push(euclidean_sq(ds.row(i), ds.row(j)));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = dists[dists.len() / 2];
        assert!(
            median > 1e-3,
            "distances must not collapse: median {median}"
        );
    }

    #[test]
    #[should_panic(expected = "empty generation")]
    fn rejects_empty_request() {
        generate(&cfg(0, 8, 0.0));
    }
}

//! Loading real datasets from disk.
//!
//! The paper's eight datasets circulate in two formats this module reads:
//!
//! * **CSV** — one object per line, comma-separated floats (MSD, Year,
//!   NUS-WIDE dumps);
//! * **fvecs** — the TEXMEX binary format used for GIST/Trevi/Notre
//!   descriptors: per vector, a little-endian `i32` dimensionality
//!   followed by that many `f32` values.
//!
//! Loaded data is raw; pass it through
//! [`simpim_similarity::Quantizer::fit`] + `normalize_dataset` before the
//! PIM pipeline, exactly as the paper normalizes into `[0, 1]`.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use simpim_similarity::Dataset;

/// Errors raised while loading datasets from disk.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed record, with its 0-based index and a description.
    Malformed {
        /// Record index.
        record: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file contained no vectors.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::Malformed { record, reason } => write!(f, "record {record}: {reason}"),
            Self::Empty => write!(f, "file contains no vectors"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads a CSV of floats, one object per line. Empty lines and lines
/// starting with `#` are skipped; every data line must have the same
/// number of fields.
pub fn read_csv(path: &Path) -> Result<Dataset, IoError> {
    let file = BufReader::new(File::open(path)?);
    let mut flat: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut record = 0usize;
    for line in file.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut count = 0usize;
        for field in trimmed.split(',') {
            let v: f64 = field.trim().parse().map_err(|e| IoError::Malformed {
                record,
                reason: format!("bad float {field:?}: {e}"),
            })?;
            if !v.is_finite() {
                return Err(IoError::Malformed {
                    record,
                    reason: format!("non-finite value {v}"),
                });
            }
            flat.push(v);
            count += 1;
        }
        match dim {
            None => dim = Some(count),
            Some(d) if d != count => {
                return Err(IoError::Malformed {
                    record,
                    reason: format!("expected {d} fields, found {count}"),
                })
            }
            _ => {}
        }
        record += 1;
    }
    let dim = dim.ok_or(IoError::Empty)?;
    Dataset::from_flat(flat, dim).map_err(|e| IoError::Malformed {
        record,
        reason: e.to_string(),
    })
}

/// Writes a dataset as CSV (for round-trips and interchange).
pub fn write_csv(path: &Path, dataset: &Dataset) -> Result<(), IoError> {
    let mut out = io::BufWriter::new(File::create(path)?);
    for row in dataset.rows() {
        let mut first = true;
        for v in row {
            if !first {
                write!(out, ",")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a TEXMEX `.fvecs` file: `[i32 d][f32; d]` repeated.
pub fn read_fvecs(path: &Path) -> Result<Dataset, IoError> {
    let mut file = BufReader::new(File::open(path)?);
    let mut flat: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut record = 0usize;
    loop {
        let mut head = [0u8; 4];
        match file.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let d = i32::from_le_bytes(head);
        if d <= 0 {
            return Err(IoError::Malformed {
                record,
                reason: format!("dimension {d} ≤ 0"),
            });
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => {
                return Err(IoError::Malformed {
                    record,
                    reason: format!("expected dimension {expect}, found {d}"),
                })
            }
            _ => {}
        }
        let mut buf = vec![0u8; d * 4];
        file.read_exact(&mut buf).map_err(|e| IoError::Malformed {
            record,
            reason: format!("truncated vector: {e}"),
        })?;
        for chunk in buf.chunks_exact(4) {
            let v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            if !v.is_finite() {
                return Err(IoError::Malformed {
                    record,
                    reason: format!("non-finite value {v}"),
                });
            }
            flat.push(f64::from(v));
        }
        record += 1;
    }
    let dim = dim.ok_or(IoError::Empty)?;
    Dataset::from_flat(flat, dim).map_err(|e| IoError::Malformed {
        record,
        reason: e.to_string(),
    })
}

/// Writes a dataset as `.fvecs` (f32 precision).
pub fn write_fvecs(path: &Path, dataset: &Dataset) -> Result<(), IoError> {
    let mut out = io::BufWriter::new(File::create(path)?);
    for row in dataset.rows() {
        out.write_all(&(row.len() as i32).to_le_bytes())?;
        for &v in row {
            out.write_all(&(v as f32).to_le_bytes())?;
        }
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("simpim-io-{}-{name}", std::process::id()));
        p
    }

    fn sample() -> Dataset {
        Dataset::from_rows(&[vec![0.5, 1.25, -3.0], vec![0.0, 42.0, 7.5]]).unwrap()
    }

    #[test]
    fn csv_round_trip() {
        let p = tmp("round.csv");
        write_csv(&p, &sample()).unwrap();
        let back = read_csv(&p).unwrap();
        assert_eq!(back, sample());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn csv_skips_comments_and_blank_lines() {
        let p = tmp("comments.csv");
        std::fs::write(&p, "# header\n1.0,2.0\n\n3.0,4.0\n").unwrap();
        let ds = read_csv(&p).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn csv_rejects_ragged_and_bad_floats() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1.0,2.0\n3.0\n").unwrap();
        assert!(matches!(
            read_csv(&p),
            Err(IoError::Malformed { record: 1, .. })
        ));
        std::fs::write(&p, "1.0,abc\n").unwrap();
        assert!(matches!(read_csv(&p), Err(IoError::Malformed { .. })));
        std::fs::write(&p, "# nothing\n").unwrap();
        assert!(matches!(read_csv(&p), Err(IoError::Empty)));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fvecs_round_trip_at_f32_precision() {
        let p = tmp("round.fvecs");
        write_fvecs(&p, &sample()).unwrap();
        let back = read_fvecs(&p).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.dim(), 3);
        for (a, b) in back.as_flat().iter().zip(sample().as_flat()) {
            assert!((a - b).abs() < 1e-6, "f32 round-trip: {a} vs {b}");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fvecs_rejects_truncation_and_bad_dims() {
        let p = tmp("trunc.fvecs");
        let mut f = File::create(&p).unwrap();
        f.write_all(&3i32.to_le_bytes()).unwrap();
        f.write_all(&1.0f32.to_le_bytes()).unwrap(); // 1 of 3 values
        drop(f);
        assert!(matches!(read_fvecs(&p), Err(IoError::Malformed { .. })));

        let mut f = File::create(&p).unwrap();
        f.write_all(&(-1i32).to_le_bytes()).unwrap();
        drop(f);
        assert!(matches!(read_fvecs(&p), Err(IoError::Malformed { .. })));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fvecs_empty_file_is_reported() {
        let p = tmp("empty.fvecs");
        std::fs::write(&p, b"").unwrap();
        assert!(matches!(read_fvecs(&p), Err(IoError::Empty)));
        std::fs::remove_file(&p).ok();
    }
}

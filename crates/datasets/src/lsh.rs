//! LSH binary codes (Fig. 14's workload).
//!
//! The paper follows Charikar's SimHash \[22\]: each code bit is the sign of
//! the data vector's projection onto a random hyperplane, so the Hamming
//! distance between codes preserves the angular similarity of the original
//! objects. The paper learns 10M codes of 128–1024 bits from the GIST
//! descriptors; here the same pipeline runs over the synthetic GIST-like
//! dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simpim_similarity::{BinaryDataset, Dataset};

/// Produces `bits`-wide SimHash codes for every row of `data`.
///
/// Hyperplanes are sampled as dense ±-uniform vectors centered on the data
/// midpoint (0.5 for normalized data), seeded deterministically.
pub fn lsh_codes(data: &Dataset, bits: usize, seed: u64) -> BinaryDataset {
    assert!(bits > 0, "code width must be non-zero");
    let d = data.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let hyperplanes: Vec<Vec<f64>> = (0..bits)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let mut codes = BinaryDataset::with_bits(bits).expect("bits > 0");
    let mut code = vec![false; bits];
    for row in data.rows() {
        for (b, h) in code.iter_mut().zip(&hyperplanes) {
            // Center the data at 0.5 so projections split evenly.
            let proj: f64 = row.iter().zip(h).map(|(&x, &w)| (x - 0.5) * w).sum();
            *b = proj >= 0.0;
        }
        codes.push_bits(&code).expect("width fixed");
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SyntheticConfig};

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n: 120,
            d: 64,
            clusters: 4,
            cluster_std: 0.03,
            stat_uniformity: 0.0,
            seed: 7,
        })
    }

    #[test]
    fn shapes_and_determinism() {
        let ds = data();
        let codes = lsh_codes(&ds, 128, 99);
        assert_eq!(codes.len(), 120);
        assert_eq!(codes.bits(), 128);
        assert_eq!(lsh_codes(&ds, 128, 99), codes);
        assert_ne!(lsh_codes(&ds, 128, 100), codes);
    }

    #[test]
    fn hamming_distance_preserves_similarity() {
        // SimHash guarantee: nearer objects collide on more bits. Check
        // rank agreement: the Hamming-nearest neighbor of each point is
        // much closer in ED than a random point, on average.
        use simpim_similarity::measures::euclidean_sq;
        let ds = data();
        let codes = lsh_codes(&ds, 256, 5);
        let mut ed_of_hd_nn = 0.0;
        let mut ed_of_random = 0.0;
        let n = ds.len();
        for i in 0..n {
            let mut best = (u32::MAX, usize::MAX);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let hd = codes.row(i).hamming(&codes.row(j));
                if hd < best.0 {
                    best = (hd, j);
                }
            }
            ed_of_hd_nn += euclidean_sq(ds.row(i), ds.row(best.1));
            ed_of_random += euclidean_sq(ds.row(i), ds.row((i + n / 2) % n));
        }
        assert!(
            ed_of_hd_nn < 0.6 * ed_of_random,
            "HD neighbors must be ED-near: {ed_of_hd_nn} vs {ed_of_random}"
        );
    }

    #[test]
    fn bit_balance_is_reasonable() {
        // Centered projections should split roughly half/half per code.
        let ds = data();
        let codes = lsh_codes(&ds, 512, 13);
        let total_ones: u64 = codes.rows().map(|c| u64::from(c.count_ones())).sum();
        let total_bits = (codes.len() * codes.bits()) as f64;
        let fraction = total_ones as f64 / total_bits;
        assert!((0.3..=0.7).contains(&fraction), "bit balance {fraction}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_rejected() {
        lsh_codes(&data(), 0, 1);
    }
}

//! Synthetic time series with planted structure, for the motif-discovery
//! and anomaly-detection workloads the paper's introduction motivates
//! (Mueen \[3\]).
//!
//! The generator produces a bounded random walk in `[0, 1]`, embeds one
//! repeated pattern (the *motif*) at two non-overlapping positions, and
//! injects one out-of-distribution segment (the *discord*). Positions are
//! returned so tests can assert discovery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the planted series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesConfig {
    /// Series length.
    pub len: usize,
    /// Planted pattern length (also the natural window size to mine at).
    pub pattern_len: usize,
    /// Random-walk step scale.
    pub noise: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        Self {
            len: 2_000,
            pattern_len: 64,
            noise: 0.02,
            seed: 0x7157,
        }
    }
}

/// A generated series with its planted ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedSeries {
    /// The series values, all in `[0, 1]`.
    pub values: Vec<f64>,
    /// Start offsets of the two motif occurrences.
    pub motif_positions: (usize, usize),
    /// Start offset of the discord segment.
    pub discord_position: usize,
}

/// Generates the planted series.
///
/// # Panics
/// Panics when the series is too short to hold two patterns plus the
/// discord without overlap.
pub fn generate_series(cfg: &SeriesConfig) -> PlantedSeries {
    assert!(
        cfg.len >= 6 * cfg.pattern_len,
        "series must hold two motifs and a discord without overlap"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Bounded random walk.
    let mut values = Vec::with_capacity(cfg.len);
    let mut x = 0.5f64;
    for _ in 0..cfg.len {
        x = (x + rng.gen_range(-cfg.noise..cfg.noise)).clamp(0.05, 0.95);
        values.push(x);
    }

    // The motif: a distinctive smooth burst, embedded twice with tiny
    // jitter so the pair is close but not identical.
    let w = cfg.pattern_len;
    let pattern: Vec<f64> = (0..w)
        .map(|i| {
            let t = i as f64 / w as f64;
            0.5 + 0.35 * (std::f64::consts::TAU * 2.0 * t).sin() * (1.0 - t)
        })
        .collect();
    let pos_a = cfg.len / 8;
    let pos_b = cfg.len / 2;
    for (offset, jitter_seed) in [(pos_a, 1u64), (pos_b, 2u64)] {
        let mut jr = StdRng::seed_from_u64(cfg.seed ^ jitter_seed);
        for (i, &p) in pattern.iter().enumerate() {
            values[offset + i] = (p + jr.gen_range(-0.005f64..0.005)).clamp(0.0, 1.0);
        }
    }

    // The discord: a high-frequency segment unlike anything else.
    let pos_d = (7 * cfg.len) / 8 - w;
    for i in 0..w {
        values[pos_d + i] = if i % 2 == 0 { 0.02 } else { 0.98 };
    }

    PlantedSeries {
        values,
        motif_positions: (pos_a, pos_b),
        discord_position: pos_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_bounded_and_deterministic() {
        let cfg = SeriesConfig::default();
        let a = generate_series(&cfg);
        let b = generate_series(&cfg);
        assert_eq!(a, b);
        assert!(a.values.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(a.values.len(), cfg.len);
    }

    #[test]
    fn planted_positions_do_not_overlap() {
        let s = generate_series(&SeriesConfig::default());
        let w = SeriesConfig::default().pattern_len;
        let (a, b) = s.motif_positions;
        assert!(a + w <= b, "motif occurrences overlap");
        assert!(b + w <= s.discord_position, "discord overlaps a motif");
        assert!(s.discord_position + w <= s.values.len());
    }

    #[test]
    fn motif_occurrences_are_near_identical() {
        let s = generate_series(&SeriesConfig::default());
        let w = SeriesConfig::default().pattern_len;
        let (a, b) = s.motif_positions;
        let dist: f64 = (0..w)
            .map(|i| (s.values[a + i] - s.values[b + i]).powi(2))
            .sum();
        assert!(dist < 0.01 * w as f64, "planted pair must be close: {dist}");
    }

    #[test]
    #[should_panic(expected = "two motifs")]
    fn short_series_rejected() {
        generate_series(&SeriesConfig {
            len: 100,
            pattern_len: 64,
            noise: 0.01,
            seed: 1,
        });
    }
}

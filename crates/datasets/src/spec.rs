//! The eight datasets of Table 6, with the structural knobs that drive the
//! generators.

/// Identifies one of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PaperDataset {
    /// ImageNet features: 2 340 173 × 150 (kNN).
    ImageNet,
    /// Million Song Dataset: 992 272 × 420 (kNN; the default kNN dataset).
    Msd,
    /// GIST descriptors: 1 000 000 × 960 (kNN; weak LB_FNN pruning).
    Gist,
    /// Trevi patches: 100 000 × 4096 (kNN; highest dimensionality).
    Trevi,
    /// YearPredictionMSD: 515 345 × 90 (k-means).
    Year,
    /// Notre Dame patches: 332 668 × 128 (k-means).
    Notre,
    /// NUS-WIDE features: 269 648 × 500 (k-means; the default k-means
    /// dataset).
    NusWide,
    /// Enron bag-of-words: 100 000 × 1369 (k-means).
    Enron,
}

/// Generation parameters for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetSpec {
    /// Display name matching the paper.
    pub name: &'static str,
    /// Full-scale object count `N` (Table 6).
    pub full_n: usize,
    /// Dimensionality `d` (Table 6).
    pub d: usize,
    /// Number of latent clusters (prunability: more, tighter clusters →
    /// bounds separate candidates well).
    pub clusters: usize,
    /// Within-cluster standard deviation of each coordinate.
    pub cluster_std: f64,
    /// Segment-statistic uniformity in `[0, 1]`: 0 leaves cluster
    /// structure untouched; 1 forces every object's per-segment mean/σ to
    /// a shared template, emulating GIST's resistance to segmented bounds.
    pub stat_uniformity: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl PaperDataset {
    /// All eight datasets in Table 6 order.
    pub const ALL: [PaperDataset; 8] = [
        PaperDataset::ImageNet,
        PaperDataset::Msd,
        PaperDataset::Gist,
        PaperDataset::Trevi,
        PaperDataset::Year,
        PaperDataset::Notre,
        PaperDataset::NusWide,
        PaperDataset::Enron,
    ];

    /// The four kNN datasets (Fig. 13a order).
    pub const KNN: [PaperDataset; 4] = [
        PaperDataset::ImageNet,
        PaperDataset::Msd,
        PaperDataset::Trevi,
        PaperDataset::Gist,
    ];

    /// The four k-means datasets (Table 7 order).
    pub const KMEANS: [PaperDataset; 4] = [
        PaperDataset::Year,
        PaperDataset::Notre,
        PaperDataset::NusWide,
        PaperDataset::Enron,
    ];

    /// The generation spec for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            PaperDataset::ImageNet => DatasetSpec {
                name: "ImageNet",
                full_n: 2_340_173,
                d: 150,
                clusters: 64,
                cluster_std: 0.07,
                stat_uniformity: 0.15,
                seed: 0x11AA_0001,
            },
            PaperDataset::Msd => DatasetSpec {
                name: "MSD",
                full_n: 992_272,
                d: 420,
                clusters: 48,
                cluster_std: 0.05,
                stat_uniformity: 0.05,
                seed: 0x11AA_0002,
            },
            PaperDataset::Gist => DatasetSpec {
                name: "GIST",
                full_n: 1_000_000,
                d: 960,
                clusters: 32,
                cluster_std: 0.08,
                // GIST's hallmark: segmented statistics barely
                // discriminate (Section VI-C's 71.3% approximation).
                stat_uniformity: 0.92,
                seed: 0x11AA_0003,
            },
            PaperDataset::Trevi => DatasetSpec {
                name: "Trevi",
                full_n: 100_000,
                d: 4096,
                clusters: 40,
                cluster_std: 0.05,
                stat_uniformity: 0.10,
                seed: 0x11AA_0004,
            },
            PaperDataset::Year => DatasetSpec {
                name: "Year",
                full_n: 515_345,
                d: 90,
                clusters: 32,
                cluster_std: 0.06,
                stat_uniformity: 0.10,
                seed: 0x11AA_0005,
            },
            PaperDataset::Notre => DatasetSpec {
                name: "Notre",
                full_n: 332_668,
                d: 128,
                clusters: 40,
                cluster_std: 0.06,
                stat_uniformity: 0.15,
                seed: 0x11AA_0006,
            },
            PaperDataset::NusWide => DatasetSpec {
                name: "NUS-WIDE",
                full_n: 269_648,
                d: 500,
                clusters: 48,
                cluster_std: 0.05,
                stat_uniformity: 0.10,
                seed: 0x11AA_0007,
            },
            PaperDataset::Enron => DatasetSpec {
                name: "Enron",
                full_n: 100_000,
                d: 1369,
                clusters: 32,
                cluster_std: 0.06,
                stat_uniformity: 0.20,
                seed: 0x11AA_0008,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

impl DatasetSpec {
    /// Object count at a scale fraction, at least `min` and at most
    /// `full_n`.
    pub fn scaled_n(&self, fraction: f64, min: usize) -> usize {
        ((self.full_n as f64 * fraction) as usize).clamp(min.min(self.full_n), self.full_n)
    }
}

impl simpim_obs::ToJson for DatasetSpec {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("full_n", self.full_n.to_json()),
            ("d", self.d.to_json()),
            ("clusters", self.clusters.to_json()),
            ("cluster_std", Json::Num(self.cluster_std)),
            ("stat_uniformity", Json::Num(self.stat_uniformity)),
            ("seed", self.seed.to_json()),
        ])
    }
}

/// Scale fraction from the `SIMPIM_SCALE` environment variable
/// (default `0.01`, clamped to `(0, 1]`).
pub fn env_scale() -> f64 {
    std::env::var("SIMPIM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v <= 1.0)
        .unwrap_or(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shapes() {
        assert_eq!(PaperDataset::Msd.spec().full_n, 992_272);
        assert_eq!(PaperDataset::Msd.spec().d, 420);
        assert_eq!(PaperDataset::Trevi.spec().d, 4096);
        assert_eq!(PaperDataset::Gist.spec().d, 960);
        assert_eq!(PaperDataset::Year.spec().d, 90);
        assert_eq!(PaperDataset::Enron.spec().d, 1369);
        assert_eq!(PaperDataset::ALL.len(), 8);
    }

    #[test]
    fn gist_is_the_uniform_one() {
        let max = PaperDataset::ALL
            .iter()
            .max_by(|a, b| {
                a.spec()
                    .stat_uniformity
                    .partial_cmp(&b.spec().stat_uniformity)
                    .unwrap()
            })
            .unwrap();
        assert_eq!(max.name(), "GIST");
    }

    #[test]
    fn scaling_clamps() {
        let s = PaperDataset::Msd.spec();
        assert_eq!(s.scaled_n(1.0, 1), s.full_n);
        assert_eq!(s.scaled_n(0.00001, 5000), 5000);
        assert_eq!(s.scaled_n(0.01, 1000), 9922);
        assert!(s.scaled_n(2.0, 1) <= s.full_n);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = PaperDataset::ALL.iter().map(|p| p.spec().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }
}

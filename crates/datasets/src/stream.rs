//! Streaming dataset materialization (paper-scale execution, DESIGN.md §15).
//!
//! Every generator in this crate is a *sequential* function of one seeded
//! RNG: a short prefix (cluster centers, block templates, hyperplanes) is
//! drawn first, then each row consumes a fixed run of draws. That makes
//! the generators streamable for free — a source that replays the prefix
//! once and then produces rows in order is bit-identical to one-shot
//! materialization, whether the rows are pulled as one block or many.
//!
//! [`DatasetSource`] is that contract: `next_block` appends up to
//! `max_rows` rows, `reset` rewinds to row 0, and `skip` fast-forwards to
//! an arbitrary row so a consumer can resume mid-stream (e.g. re-programs
//! a single shard without touching the rest of the fleet). One-shot
//! generation is *implemented on top of* the sources
//! ([`crate::synth::generate_labeled`] drains a [`SynthSource`]), so the
//! streamed/one-shot equivalence holds by construction, and the proptests
//! in `tests/properties.rs` pin it across block sizes and resume points.
//!
//! Peak host memory for a streamed consumer is `O(block · d)` plus the
//! generator state (centers + template for synth, hyperplanes for LSH,
//! the raw series for time-series windows) — never `O(N · d)`.

use crate::spec::DatasetSpec;
use crate::synth::SyntheticConfig;
use crate::timeseries::{generate_series, SeriesConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simpim_similarity::{BinaryDataset, Dataset};

/// Default number of rows per streamed block when `SIMPIM_BLOCK_ROWS` is
/// unset. Sized so a GIST-shaped block (d = 960, f64) stays under ~64 MiB.
pub const DEFAULT_BLOCK_ROWS: usize = 8192;

/// Reads the streamed-block size from `SIMPIM_BLOCK_ROWS` (rows per
/// block, ≥ 1), defaulting to [`DEFAULT_BLOCK_ROWS`].
pub fn env_block_rows() -> usize {
    std::env::var("SIMPIM_BLOCK_ROWS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(DEFAULT_BLOCK_ROWS)
}

/// A resettable, skippable producer of dataset rows in a fixed order.
///
/// Implementations guarantee **block-size independence**: the
/// concatenation of the rows appended by any sequence of `next_block`
/// calls equals the rows of the one-shot materialization, bit for bit.
pub trait DatasetSource {
    /// Row dimensionality.
    fn dim(&self) -> usize;
    /// Total number of rows the source will produce.
    fn total(&self) -> usize;
    /// Index of the next row `next_block` would yield.
    fn position(&self) -> usize;
    /// Appends up to `max_rows` rows (flat, row-major) to `out`; returns
    /// the number of rows appended (0 exactly when the source is drained).
    fn next_block(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize;
    /// Rewinds the source to row 0.
    fn reset(&mut self);

    /// Fast-forwards past `rows` rows without retaining them.
    fn skip(&mut self, rows: usize) {
        let mut scratch = Vec::new();
        let mut left = rows;
        while left > 0 {
            scratch.clear();
            let got = self.next_block(left.min(DEFAULT_BLOCK_ROWS), &mut scratch);
            if got == 0 {
                break;
            }
            left -= got;
        }
    }

    /// Drains the remaining rows into one in-memory [`Dataset`].
    fn materialize(&mut self) -> Dataset {
        let mut flat = Vec::with_capacity((self.total() - self.position()) * self.dim());
        while self.next_block(DEFAULT_BLOCK_ROWS, &mut flat) > 0 {}
        Dataset::from_flat(flat, self.dim()).expect("source yields whole rows")
    }
}

/// Streaming view of the synthetic Gaussian-mixture generator.
///
/// Holds only the RNG, the cluster centers, and the block templates —
/// `O(clusters · d)` resident state regardless of `n`.
#[derive(Debug, Clone)]
pub struct SynthSource {
    cfg: SyntheticConfig,
    centers: Vec<Vec<f64>>,
    template: Vec<(f64, f64)>,
    /// RNG state immediately after the prefix draws (for `reset`).
    rng_at_start: StdRng,
    rng: StdRng,
    pos: usize,
    row_buf: Vec<f64>,
}

impl SynthSource {
    /// Builds the source: replays the prefix draws (centers, templates)
    /// and parks the RNG at the first row.
    pub fn new(cfg: SyntheticConfig) -> Self {
        assert!(
            cfg.n > 0 && cfg.d > 0 && cfg.clusters > 0,
            "empty generation request"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.stat_uniformity),
            "stat_uniformity must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Prefix draw order is load-bearing: centers first, then the
        // per-block template stats, exactly as one-shot generation always
        // did. Centers are piecewise-constant over length-⌈d/64⌉ blocks.
        let center_block = (cfg.d / 64).max(1);
        let centers: Vec<Vec<f64>> = (0..cfg.clusters)
            .map(|_| {
                let mut center = Vec::with_capacity(cfg.d);
                while center.len() < cfg.d {
                    let v = rng.gen_range(0.2..0.8);
                    for _ in 0..center_block.min(cfg.d - center.len()) {
                        center.push(v);
                    }
                }
                center
            })
            .collect();

        let blocks = cfg.d / crate::synth::UNIFORM_BLOCK;
        let template: Vec<(f64, f64)> = (0..blocks.max(1))
            .map(|_| (rng.gen_range(0.35..0.65), rng.gen_range(0.05..0.15)))
            .collect();

        Self {
            cfg,
            centers,
            template,
            rng_at_start: rng.clone(),
            rng,
            pos: 0,
            row_buf: vec![0.0; cfg.d],
        }
    }

    /// Builds the source for a spec realized at `n` objects.
    pub fn from_spec(spec: &DatasetSpec, n: usize) -> Self {
        Self::new(SyntheticConfig::from_spec(spec, n))
    }

    /// Like [`DatasetSource::next_block`], but also appends each row's
    /// latent cluster label to `labels`.
    pub fn next_block_labeled(
        &mut self,
        max_rows: usize,
        out: &mut Vec<f64>,
        labels: &mut Vec<usize>,
    ) -> usize {
        let take = max_rows.min(self.cfg.n - self.pos);
        out.reserve(take * self.cfg.d);
        for _ in 0..take {
            let label = crate::synth::gen_row(
                &mut self.rng,
                &self.cfg,
                &self.centers,
                &self.template,
                &mut self.row_buf,
            );
            labels.push(label);
            out.extend_from_slice(&self.row_buf);
        }
        self.pos += take;
        take
    }
}

impl DatasetSource for SynthSource {
    fn dim(&self) -> usize {
        self.cfg.d
    }

    fn total(&self) -> usize {
        self.cfg.n
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn next_block(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize {
        let mut labels = Vec::new();
        self.next_block_labeled(max_rows, out, &mut labels)
    }

    fn reset(&mut self) {
        self.rng = self.rng_at_start.clone();
        self.pos = 0;
    }

    fn skip(&mut self, rows: usize) {
        // Each row consumes a fixed run of draws (1 label + 2·d normals);
        // regenerating into the scratch row is exact and allocation-free.
        let take = rows.min(self.cfg.n - self.pos);
        for _ in 0..take {
            let _ = crate::synth::gen_row(
                &mut self.rng,
                &self.cfg,
                &self.centers,
                &self.template,
                &mut self.row_buf,
            );
        }
        self.pos += take;
    }
}

/// Streaming view of the sliding-window time-series dataset
/// (`simpim_mining::motif::window_dataset` shape): row `i` is
/// `series[i .. i + w]`.
///
/// The resident state is the raw series (`O(L)`), a factor `w` smaller
/// than the materialized window dataset (`O(L · w)`).
#[derive(Debug, Clone)]
pub struct TimeseriesWindowSource {
    values: Vec<f64>,
    w: usize,
    pos: usize,
}

impl TimeseriesWindowSource {
    /// Builds the source over a generated planted series with window `w`.
    pub fn new(cfg: &SeriesConfig, w: usize) -> Self {
        let series = generate_series(cfg);
        Self::from_values(series.values, w)
    }

    /// Builds the source over explicit series values with window `w`.
    pub fn from_values(values: Vec<f64>, w: usize) -> Self {
        assert!(w >= 1 && w <= values.len(), "window must fit the series");
        Self { values, w, pos: 0 }
    }
}

impl DatasetSource for TimeseriesWindowSource {
    fn dim(&self) -> usize {
        self.w
    }

    fn total(&self) -> usize {
        self.values.len() - self.w + 1
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn next_block(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize {
        let take = max_rows.min(self.total() - self.pos);
        out.reserve(take * self.w);
        for i in self.pos..self.pos + take {
            out.extend_from_slice(&self.values[i..i + self.w]);
        }
        self.pos += take;
        take
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn skip(&mut self, rows: usize) {
        self.pos = (self.pos + rows).min(self.total());
    }
}

/// Streaming SimHash encoder: pulls blocks from an inner f64 source and
/// yields the corresponding LSH code rows (Fig. 14's workload) without
/// ever materializing the full float dataset or the full code table.
///
/// Resident state is the hyperplane matrix (`bits · d`) plus one block.
pub struct LshCodeSource<S: DatasetSource> {
    inner: S,
    hyperplanes: Vec<Vec<f64>>,
    bits: usize,
    block_buf: Vec<f64>,
    code_buf: Vec<bool>,
}

impl<S: DatasetSource> LshCodeSource<S> {
    /// Draws the hyperplanes (same prefix order as
    /// [`crate::lsh::lsh_codes`]) and wraps `inner`.
    pub fn new(inner: S, bits: usize, seed: u64) -> Self {
        assert!(bits > 0, "code width must be non-zero");
        let d = inner.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let hyperplanes: Vec<Vec<f64>> = (0..bits)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        Self {
            inner,
            hyperplanes,
            bits,
            block_buf: Vec::new(),
            code_buf: vec![false; bits],
        }
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Total number of code rows the source will produce.
    pub fn total(&self) -> usize {
        self.inner.total()
    }

    /// Index of the next code row.
    pub fn position(&self) -> usize {
        self.inner.position()
    }

    /// Encodes up to `max_rows` rows of the inner source into `out`;
    /// returns the number of code rows appended.
    pub fn next_codes(&mut self, max_rows: usize, out: &mut BinaryDataset) -> usize {
        assert_eq!(out.bits(), self.bits, "code width mismatch");
        self.block_buf.clear();
        let got = self.inner.next_block(max_rows, &mut self.block_buf);
        let d = self.inner.dim();
        for row in self.block_buf.chunks_exact(d) {
            for (b, h) in self.code_buf.iter_mut().zip(&self.hyperplanes) {
                let proj: f64 = row.iter().zip(h).map(|(&x, &w)| (x - 0.5) * w).sum();
                *b = proj >= 0.0;
            }
            out.push_bits(&self.code_buf).expect("width fixed");
        }
        got
    }

    /// Rewinds to code row 0.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Fast-forwards past `rows` code rows (no encoding work is done for
    /// skipped rows beyond advancing the inner source).
    pub fn skip(&mut self, rows: usize) {
        self.inner.skip(rows);
    }

    /// Drains the remaining rows into one in-memory [`BinaryDataset`].
    pub fn materialize(&mut self) -> BinaryDataset {
        let mut codes = BinaryDataset::with_bits(self.bits).expect("bits > 0");
        while self.next_codes(DEFAULT_BLOCK_ROWS, &mut codes) > 0 {}
        codes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::lsh_codes;
    use crate::synth::{generate, generate_labeled};

    fn cfg() -> SyntheticConfig {
        SyntheticConfig {
            n: 157,
            d: 24,
            clusters: 5,
            cluster_std: 0.04,
            stat_uniformity: 0.4,
            seed: 9,
        }
    }

    #[test]
    fn synth_stream_equals_one_shot_any_block_size() {
        let whole = generate(&cfg());
        for block in [1usize, 7, 64, 157, 1000] {
            let mut src = SynthSource::new(cfg());
            let mut flat = Vec::new();
            let mut pulls = 0;
            while src.next_block(block, &mut flat) > 0 {
                pulls += 1;
            }
            assert_eq!(pulls, 157usize.div_ceil(block));
            let streamed = Dataset::from_flat(flat, 24).unwrap();
            assert_eq!(streamed, whole, "block size {block}");
        }
    }

    #[test]
    fn synth_labels_stream_identically() {
        let (whole, labels) = generate_labeled(&cfg());
        let mut src = SynthSource::new(cfg());
        let mut flat = Vec::new();
        let mut got_labels = Vec::new();
        while src.next_block_labeled(13, &mut flat, &mut got_labels) > 0 {}
        assert_eq!(Dataset::from_flat(flat, 24).unwrap(), whole);
        assert_eq!(got_labels, labels);
    }

    #[test]
    fn synth_reset_and_skip_reproduce_rows() {
        let whole = generate(&cfg());
        let mut src = SynthSource::new(cfg());
        let mut flat = Vec::new();
        src.next_block(40, &mut flat);
        src.reset();
        assert_eq!(src.position(), 0);
        // Fresh source, skip straight to row 100: rows must match the
        // one-shot tail exactly (mid-stream resume).
        let mut resumed = SynthSource::new(cfg());
        resumed.skip(100);
        assert_eq!(resumed.position(), 100);
        let mut tail = Vec::new();
        resumed.next_block(usize::MAX, &mut tail);
        assert_eq!(tail.len(), 57 * 24);
        assert_eq!(&tail[..24], whole.row(100));
        assert_eq!(&tail[56 * 24..], whole.row(156));
    }

    #[test]
    fn timeseries_windows_stream_identically() {
        let series = generate_series(&SeriesConfig {
            len: 600,
            pattern_len: 32,
            noise: 0.02,
            seed: 3,
        });
        let w = 32;
        let total = series.values.len() - w + 1;
        let mut src = TimeseriesWindowSource::from_values(series.values.clone(), w);
        assert_eq!(src.total(), total);
        let whole = src.materialize();
        src.reset();
        let mut flat = Vec::new();
        while src.next_block(7, &mut flat) > 0 {}
        assert_eq!(Dataset::from_flat(flat, w).unwrap(), whole);
        for (i, row) in whole.rows().enumerate() {
            assert_eq!(row, &series.values[i..i + w]);
        }
    }

    #[test]
    fn lsh_codes_stream_identically() {
        let data = generate(&cfg());
        let whole = lsh_codes(&data, 96, 77);
        for block in [1usize, 7, 157] {
            let mut src = LshCodeSource::new(SynthSource::new(cfg()), 96, 77);
            let mut codes = BinaryDataset::with_bits(96).unwrap();
            while src.next_codes(block, &mut codes) > 0 {}
            assert_eq!(codes, whole, "block size {block}");
        }
    }

    #[test]
    fn env_block_rows_parses_and_defaults() {
        // No env manipulation here (tests run in parallel); just the
        // default path.
        assert!(env_block_rows() >= 1);
    }
}

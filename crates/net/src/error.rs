//! Error type of the network layer.

use std::fmt;
use std::io;

use crate::wire::{ErrorCode, WireError};

/// Errors surfaced by the TCP client and server.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io(io::Error),
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The connection dropped with the request still outstanding — the
    /// caller cannot know whether the server executed it.
    ConnectionLost,
    /// The server answered with a typed error frame.
    Remote {
        /// Failure class (retryable iff [`ErrorCode::Overloaded`]).
        code: ErrorCode,
        /// Server-side detail.
        message: String,
    },
    /// The peer violated the protocol (e.g. a response for an unknown
    /// request id, or a response type that does not match the request).
    Protocol {
        /// What was violated.
        what: String,
    },
}

impl NetError {
    /// Whether this is a server-side admission-control shed — the one
    /// error class a load generator should retry/back off on rather
    /// than count as a failure.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            NetError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }

    /// Whether this is a transport-level failure (socket error or lost
    /// connection) as opposed to a typed server answer.
    pub fn is_transport(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::ConnectionLost)
    }

    /// The remote error code, if this is a typed server answer.
    pub fn remote_code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::ConnectionLost => write!(f, "connection lost with the request in flight"),
            NetError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            NetError::Protocol { what } => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let shed = NetError::Remote {
            code: ErrorCode::Overloaded,
            message: "full".into(),
        };
        assert!(shed.is_overloaded());
        assert!(!shed.is_transport());
        assert_eq!(shed.remote_code(), Some(ErrorCode::Overloaded));
        let lost = NetError::ConnectionLost;
        assert!(lost.is_transport());
        assert!(!lost.is_overloaded());
        let io = NetError::from(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert!(io.is_transport());
        assert!(io.to_string().contains("socket error"));
    }
}

//! JSON projections of engine and transport statistics.
//!
//! The `Stats` opcode answers one JSON document with two sections:
//! `engine` (a [`EngineStats`] projection — counters, stage latency
//! percentiles, SLO reports) and `net` (the server's [`NetStats`]). A
//! remote operator gets the same numbers `EngineStats` exposes
//! in-process, without the server linking any serialization framework.

use simpim_obs::{Json, ToJson};
use simpim_serve::{EngineStats, StageLatency};

/// Counter snapshot of one [`crate::NetServer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted since bind.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Request frames decoded.
    pub frames_rx: u64,
    /// Response frames written.
    pub frames_tx: u64,
    /// Payload bytes received (length prefixes excluded).
    pub bytes_rx: u64,
    /// Payload bytes written.
    pub bytes_tx: u64,
    /// Frames that failed to decode (answered with `bad_frame` /
    /// `unsupported_version` error frames, or the connection closed).
    pub decode_errors: u64,
    /// Requests shed because the connection's in-flight window was full
    /// — the transport edge of the admission-control path.
    pub window_sheds: u64,
    /// Requests shed by the engine's bounded submission queue
    /// (`ServeError::Overloaded` after the window admitted them).
    pub engine_sheds: u64,
    /// Connections dropped on a socket error or a slow-reader write
    /// timeout.
    pub transport_errors: u64,
}

impl NetStats {
    /// Total admission-control sheds across both layers.
    pub fn sheds(&self) -> u64 {
        self.window_sheds + self.engine_sheds
    }
}

impl ToJson for NetStats {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "connections_accepted",
                Json::Num(self.connections_accepted as f64),
            ),
            ("connections_open", Json::Num(self.connections_open as f64)),
            ("frames_rx", Json::Num(self.frames_rx as f64)),
            ("frames_tx", Json::Num(self.frames_tx as f64)),
            ("bytes_rx", Json::Num(self.bytes_rx as f64)),
            ("bytes_tx", Json::Num(self.bytes_tx as f64)),
            ("decode_errors", Json::Num(self.decode_errors as f64)),
            ("window_sheds", Json::Num(self.window_sheds as f64)),
            ("engine_sheds", Json::Num(self.engine_sheds as f64)),
            ("transport_errors", Json::Num(self.transport_errors as f64)),
        ])
    }
}

fn stage_json(s: &StageLatency) -> Json {
    Json::obj([
        ("stage", Json::Str(s.stage.clone())),
        ("count", Json::Num(s.count as f64)),
        ("p50_ns", Json::Num(s.p50_ns as f64)),
        ("p95_ns", Json::Num(s.p95_ns as f64)),
        ("p99_ns", Json::Num(s.p99_ns as f64)),
        ("exemplar_ns", Json::Num(s.exemplar_ns as f64)),
        ("exemplar_trace", Json::Num(s.exemplar_trace as f64)),
    ])
}

/// Projects [`EngineStats`] to JSON: every scalar counter, the per-stage
/// latency percentiles, and the SLO reports. Per-shard replica detail is
/// summarized (healthy replicas per shard) rather than dumped — the wire
/// document is for dashboards and gates, not debugging a single bank.
pub fn engine_stats_json(s: &EngineStats) -> Json {
    Json::obj([
        ("live", Json::Num(s.live as f64)),
        ("replicas", Json::Num(s.replicas as f64)),
        ("shards", Json::Num(s.shards.len() as f64)),
        (
            "healthy_per_shard",
            Json::Arr(
                s.shards
                    .iter()
                    .map(|sh| Json::Num(sh.healthy as f64))
                    .collect(),
            ),
        ),
        ("queries", Json::Num(s.queries as f64)),
        ("batches", Json::Num(s.batches as f64)),
        ("inserts", Json::Num(s.inserts as f64)),
        ("deletes", Json::Num(s.deletes as f64)),
        ("answered_ok", Json::Num(s.answered_ok as f64)),
        ("failed", Json::Num(s.failed as f64)),
        ("timeouts", Json::Num(s.timeouts as f64)),
        ("overloaded", Json::Num(s.overloaded as f64)),
        ("fault_sheds", Json::Num(s.sheds as f64)),
        ("failovers", Json::Num(s.failovers as f64)),
        ("repairs", Json::Num(s.repairs as f64)),
        ("degraded_queries", Json::Num(s.degraded_queries as f64)),
        ("degraded_shards", Json::Num(s.degraded_shards as f64)),
        (
            "stage_latency",
            Json::Arr(s.stage_latency.iter().map(stage_json).collect()),
        ),
        (
            "slo",
            Json::Arr(s.slo.iter().map(ToJson::to_json).collect()),
        ),
        (
            "flight",
            Json::obj([
                ("capacity", Json::Num(s.flight.capacity as f64)),
                ("slow_retained", Json::Num(s.flight.slow_retained as f64)),
                (
                    "anomalies_retained",
                    Json::Num(s.flight.anomalies_retained as f64),
                ),
                ("recorded", Json::Num(s.flight.recorded as f64)),
            ]),
        ),
    ])
}

/// The combined document the `Stats` opcode answers.
pub fn stats_document(engine: &EngineStats, net: &NetStats) -> String {
    Json::obj([
        ("engine", engine_stats_json(engine)),
        ("net", net.to_json()),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_document_parses_back_with_both_sections() {
        let net = NetStats {
            connections_accepted: 2,
            window_sheds: 3,
            engine_sheds: 4,
            ..Default::default()
        };
        assert_eq!(net.sheds(), 7);
        let doc = stats_document(&EngineStats::default(), &net);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(
            v.get("net")
                .and_then(|n| n.get("window_sheds"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("engine")
                .and_then(|e| e.get("overloaded"))
                .and_then(Json::as_u64),
            Some(0)
        );
        // Distinct shed/timeout/transport taxonomy is visible on the wire.
        for key in ["timeouts", "overloaded", "fault_sheds"] {
            assert!(v.get("engine").and_then(|e| e.get(key)).is_some(), "{key}");
        }
        assert!(v
            .get("net")
            .and_then(|n| n.get("transport_errors"))
            .is_some());
    }
}

//! Open-loop load generation over many pipelined connections.
//!
//! Closed-loop benchmarks (issue a request, wait, issue the next) hide
//! tail latency behind *coordinated omission*: when the server stalls,
//! the client politely stops sending, so the stall is sampled once
//! instead of once per request that *should* have been sent. The
//! open-loop generator here fixes the arrival schedule up front —
//! request `i` is due at `start + i/rate`, on connection `i % C` — and
//! measures each request's latency **from its scheduled send time**, so
//! queueing delay caused by a stall is charged to every request the
//! stall delayed.
//!
//! Per connection, a sender thread submits on schedule (pipelined — it
//! never waits for responses) and a collector thread resolves the reply
//! handles in submission order, classifying each outcome into the
//! distinct shed / timeout / transport-error taxonomy and recording
//! latency into a [`Histogram`] (log-linear, exemplar-tagged with the
//! request's trace id).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use simpim_obs::Histogram;

use crate::client::{NetClient, ReplyHandle};
use crate::error::NetError;
use crate::wire::Request;

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Concurrent TCP connections (the SLO gate requires ≥ 4).
    pub connections: usize,
    /// Total requests across all connections.
    pub total: usize,
    /// Aggregate arrival rate in requests/second.
    pub rate: f64,
    /// Neighbors per query.
    pub k: usize,
    /// Server-side queue deadline per query.
    pub timeout: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            total: 400,
            rate: 200.0,
            k: 5,
            timeout: Duration::from_secs(2),
        }
    }
}

/// Outcome of an open-loop run. The failure taxonomy is deliberately
/// disjoint: `shed` (admission control said no — retryable, not an
/// error), `timeout` (deadline expired in the queue), `failed` (typed
/// server error), `transport_errors` (socket-level loss — the one class
/// the CI smoke gate requires to be zero).
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Requests answered with neighbors.
    pub answered: u64,
    /// Requests shed by admission control (window or engine queue).
    pub shed: u64,
    /// Requests whose queue deadline expired.
    pub timeout: u64,
    /// Requests answered with a non-shed, non-deadline server error.
    pub failed: u64,
    /// Requests lost to socket errors or a dead connection.
    pub transport_errors: u64,
    /// Latency from *scheduled* send time to response, nanoseconds.
    pub latency_ns: Histogram,
    /// Trace ids of answered requests — intersect with the server's
    /// flight dump to prove cross-wire trace propagation.
    pub trace_ids: Vec<u64>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The configured arrival rate.
    pub scheduled_rate: f64,
    /// Requests actually issued per second of wall clock.
    pub achieved_rate: f64,
}

impl OpenLoopReport {
    /// Total requests accounted for.
    pub fn total(&self) -> u64 {
        self.answered + self.shed + self.timeout + self.failed + self.transport_errors
    }
}

#[derive(Default)]
struct Tally {
    answered: u64,
    shed: u64,
    timeout: u64,
    failed: u64,
    transport_errors: u64,
    latency_ns: Histogram,
    trace_ids: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.answered += other.answered;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.failed += other.failed;
        self.transport_errors += other.transport_errors;
        self.latency_ns.merge(&other.latency_ns);
        self.trace_ids.extend(other.trace_ids);
    }
}

enum Submitted {
    Handle {
        scheduled: Instant,
        handle: ReplyHandle,
    },
    SubmitFailed {
        error: NetError,
    },
}

/// Runs one open-loop schedule against `addr`, cycling `queries` as the
/// query vectors. Blocks until every scheduled request has resolved.
pub fn run_open_loop(
    addr: std::net::SocketAddr,
    cfg: &OpenLoopConfig,
    queries: &[Vec<f64>],
) -> Result<OpenLoopReport, NetError> {
    assert!(cfg.connections >= 1, "need at least one connection");
    assert!(cfg.rate > 0.0, "arrival rate must be positive");
    assert!(!queries.is_empty(), "need at least one query vector");
    let clients: Vec<NetClient> = (0..cfg.connections)
        .map(|_| NetClient::connect(addr))
        .collect::<Result<_, _>>()?;
    let interval = Duration::from_secs_f64(1.0 / cfg.rate);
    let start = Instant::now() + Duration::from_millis(5);
    let mut merged = Tally::default();

    std::thread::scope(|scope| {
        let mut collectors = Vec::with_capacity(cfg.connections);
        for (conn, client) in clients.iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Submitted>();
            // Sender: fires request i at start + i*interval, never waits.
            scope.spawn(move || {
                for i in (conn..cfg.total).step_by(cfg.connections) {
                    let due = start + interval * (i as u32);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let q = &queries[i % queries.len()];
                    let submitted = match client.submit(Request::Query {
                        k: cfg.k as u32,
                        timeout_ms: cfg.timeout.as_millis().min(u128::from(u32::MAX)) as u32,
                        vector: q.clone(),
                    }) {
                        Ok(handle) => Submitted::Handle {
                            scheduled: due,
                            handle,
                        },
                        Err(error) => Submitted::SubmitFailed { error },
                    };
                    if tx.send(submitted).is_err() {
                        break;
                    }
                }
            });
            // Collector: resolves handles in submission order; latency is
            // measured from the *scheduled* time, not the submit time.
            collectors.push(scope.spawn(move || {
                let mut t = Tally::default();
                while let Ok(submitted) = rx.recv() {
                    match submitted {
                        Submitted::SubmitFailed { error } => classify(&mut t, &error),
                        Submitted::Handle { scheduled, handle } => {
                            let trace_id = handle.trace.trace_id;
                            match handle.wait_query() {
                                Ok(_neighbors) => {
                                    t.answered += 1;
                                    t.latency_ns.record_exemplar(
                                        scheduled.elapsed().as_nanos() as u64,
                                        trace_id,
                                    );
                                    t.trace_ids.push(trace_id);
                                }
                                Err(e) => {
                                    classify(&mut t, &e);
                                    // Sheds and timeouts still answered a
                                    // frame on schedule — charge their
                                    // latency too so backpressure cost is
                                    // visible, but tag no exemplar.
                                    if !e.is_transport() {
                                        t.latency_ns.record(scheduled.elapsed().as_nanos() as u64);
                                    }
                                }
                            }
                        }
                    }
                }
                t
            }));
        }
        for c in collectors {
            merged.absorb(c.join().expect("collector thread"));
        }
    });

    let elapsed = start.elapsed();
    let total =
        merged.answered + merged.shed + merged.timeout + merged.failed + merged.transport_errors;
    Ok(OpenLoopReport {
        answered: merged.answered,
        shed: merged.shed,
        timeout: merged.timeout,
        failed: merged.failed,
        transport_errors: merged.transport_errors,
        latency_ns: merged.latency_ns,
        trace_ids: merged.trace_ids,
        elapsed,
        scheduled_rate: cfg.rate,
        achieved_rate: total as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}

fn classify(t: &mut Tally, e: &NetError) {
    use crate::wire::ErrorCode;
    if e.is_overloaded() {
        t.shed += 1;
    } else if e.remote_code() == Some(ErrorCode::DeadlineExpired) {
        t.timeout += 1;
    } else if e.is_transport() {
        t.transport_errors += 1;
    } else {
        t.failed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_taxonomy() {
        use crate::wire::ErrorCode;
        let mut t = Tally::default();
        classify(
            &mut t,
            &NetError::Remote {
                code: ErrorCode::Overloaded,
                message: String::new(),
            },
        );
        classify(
            &mut t,
            &NetError::Remote {
                code: ErrorCode::DeadlineExpired,
                message: String::new(),
            },
        );
        classify(&mut t, &NetError::ConnectionLost);
        classify(
            &mut t,
            &NetError::Remote {
                code: ErrorCode::Internal,
                message: String::new(),
            },
        );
        assert_eq!(
            (t.shed, t.timeout, t.transport_errors, t.failed),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn report_total_sums_the_taxonomy() {
        let r = OpenLoopReport {
            answered: 5,
            shed: 4,
            timeout: 3,
            failed: 2,
            transport_errors: 1,
            latency_ns: Histogram::new(),
            trace_ids: vec![],
            elapsed: Duration::from_secs(1),
            scheduled_rate: 100.0,
            achieved_rate: 15.0,
        };
        assert_eq!(r.total(), 15);
    }
}

//! The pipelined, non-blocking TCP client.
//!
//! One connection carries many requests in flight: [`NetClient::submit`]
//! writes a frame and returns a [`ReplyHandle`] immediately; a dedicated
//! reader thread demultiplexes responses back to their handles by
//! `request_id`. Responses may arrive in any order relative to other
//! requests on the connection — ordering per request is the id, not the
//! socket position.
//!
//! Every submission mints a fresh [`TraceCtx`] whose ids ride in the
//! frame header; the server joins that trace, so its flight-recorder
//! spans land under an id the client knows ([`ReplyHandle::trace`]).
//! Completion latency for each opcode is recorded into the process-wide
//! metrics registry as `simpim.net.client.<op>_ns` log-linear histograms
//! with the trace id as exemplar — the client side of the end-to-end
//! story.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use simpim_obs::TraceCtx;

use crate::error::NetError;
use crate::wire::{
    decode_response, encode_request, Envelope, FrameReader, ReadStep, Request, Response,
    DEFAULT_MAX_FRAME,
};

struct Waiter {
    tx: mpsc::Sender<Response>,
    sent: Instant,
    kind: &'static str,
    trace_id: u64,
}

struct Shared {
    pending: Mutex<HashMap<u64, Waiter>>,
    dead: AtomicBool,
    /// Responses for unknown request ids (protocol skew); counted, not fatal.
    orphans: AtomicU64,
}

/// An in-flight request. Dropping it abandons the reply (the reader
/// discards the response when it arrives).
pub struct ReplyHandle {
    rx: mpsc::Receiver<Response>,
    /// The request id this handle is waiting on.
    pub request_id: u64,
    /// The trace the request carried — match it against the server's
    /// flight dump to follow one request across the wire.
    pub trace: TraceCtx,
}

impl ReplyHandle {
    /// Blocks until the response arrives (or the connection dies).
    pub fn wait(self) -> Result<Response, NetError> {
        self.rx.recv().map_err(|_| NetError::ConnectionLost)
    }

    /// Non-blocking poll; `None` while the response is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, NetError>> {
        match self.rx.try_recv() {
            Ok(resp) => Some(Ok(resp)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(NetError::ConnectionLost)),
        }
    }

    /// Waits for a query response and unwraps the neighbor list.
    pub fn wait_query(self) -> Result<Vec<(u64, f64)>, NetError> {
        match self.wait()? {
            Response::Query(n) => Ok(n),
            other => unexpected("query", other),
        }
    }

    /// Waits for an insert response and unwraps the assigned id.
    pub fn wait_insert(self) -> Result<u64, NetError> {
        match self.wait()? {
            Response::Insert(id) => Ok(id),
            other => unexpected("insert", other),
        }
    }

    /// Waits for a delete response and unwraps the presence flag.
    pub fn wait_delete(self) -> Result<bool, NetError> {
        match self.wait()? {
            Response::Delete(found) => Ok(found),
            other => unexpected("delete", other),
        }
    }

    /// Waits for a flush acknowledgement.
    pub fn wait_flush(self) -> Result<(), NetError> {
        match self.wait()? {
            Response::Flush => Ok(()),
            other => unexpected("flush", other),
        }
    }
}

fn unexpected<T>(wanted: &str, got: Response) -> Result<T, NetError> {
    match got {
        Response::Error { code, message } => Err(NetError::Remote { code, message }),
        other => Err(NetError::Protocol {
            what: format!("expected a {wanted} response, got {other:?}"),
        }),
    }
}

/// A pipelined connection to a [`crate::NetServer`].
pub struct NetClient {
    writer: Mutex<TcpStream>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl NetClient {
    /// Connects and starts the demultiplexing reader thread.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let shared = Arc::new(Shared {
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            orphans: AtomicU64::new(0),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("simpim-net-client-reader".to_string())
                .spawn(move || reader_loop(read_half, shared))
                .expect("spawn client reader thread")
        };
        Ok(Self {
            writer: Mutex::new(stream),
            shared,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// Whether the connection has died (reader thread exited).
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }

    /// Responses that arrived for unknown request ids.
    pub fn orphan_responses(&self) -> u64 {
        self.shared.orphans.load(Ordering::Relaxed)
    }

    /// Sends one request without waiting; the returned handle resolves
    /// when the response frame arrives. Many handles may be outstanding
    /// on one connection — that is the point.
    pub fn submit(&self, req: Request) -> Result<ReplyHandle, NetError> {
        if self.is_dead() {
            return Err(NetError::ConnectionLost);
        }
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = TraceCtx::root();
        let kind = req.name();
        let frame = encode_request(&Envelope {
            request_id,
            trace_id: trace.trace_id,
            span_id: trace.span_id,
            msg: req,
        });
        let (tx, rx) = mpsc::channel();
        // Register before writing so a fast response can never race the
        // bookkeeping.
        self.shared.pending.lock().unwrap().insert(
            request_id,
            Waiter {
                tx,
                sent: Instant::now(),
                kind,
                trace_id: trace.trace_id,
            },
        );
        let write_result = {
            let mut w = self.writer.lock().unwrap();
            w.write_all(&frame)
        };
        if let Err(e) = write_result {
            self.shared.pending.lock().unwrap().remove(&request_id);
            self.shared.dead.store(true, Ordering::SeqCst);
            return Err(NetError::Io(e));
        }
        Ok(ReplyHandle {
            rx,
            request_id,
            trace,
        })
    }

    /// Synchronous kNN. `timeout` bounds the server-side queue deadline.
    pub fn knn(
        &self,
        vector: &[f64],
        k: usize,
        timeout: Duration,
    ) -> Result<Vec<(u64, f64)>, NetError> {
        self.submit(Request::Query {
            k: k as u32,
            timeout_ms: timeout.as_millis().min(u128::from(u32::MAX)) as u32,
            vector: vector.to_vec(),
        })?
        .wait_query()
    }

    /// Synchronous insert; returns the assigned global id.
    pub fn insert(&self, row: &[f64]) -> Result<u64, NetError> {
        self.submit(Request::Insert { row: row.to_vec() })?
            .wait_insert()
    }

    /// Synchronous delete; returns whether the id was present.
    pub fn delete(&self, id: u64) -> Result<bool, NetError> {
        self.submit(Request::Delete { id })?.wait_delete()
    }

    /// Synchronous flush (rolling compacting reprogram).
    pub fn flush(&self) -> Result<(), NetError> {
        self.submit(Request::Flush)?.wait_flush()
    }

    /// Fetches the combined engine + transport statistics document.
    pub fn stats_json(&self) -> Result<String, NetError> {
        match self.submit(Request::Stats)?.wait()? {
            Response::Stats(json) => Ok(json),
            other => unexpected("stats", other),
        }
    }

    /// Fetches the server's flight-recorder dump (JSONL).
    pub fn flight_dump(&self) -> Result<String, NetError> {
        match self.submit(Request::Flight)?.wait()? {
            Response::Flight(jsonl) => Ok(jsonl),
            other => unexpected("flight", other),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), NetError> {
        match self.submit(Request::Ping)?.wait()? {
            Response::Pong => Ok(()),
            other => unexpected("ping", other),
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.shared.dead.store(true, Ordering::SeqCst);
        if let Ok(w) = self.writer.lock() {
            let _ = w.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    let mut fr = FrameReader::new(&stream, DEFAULT_MAX_FRAME);
    loop {
        match fr.next_frame() {
            ReadStep::Frame(payload) => {
                let env = match decode_response(&payload) {
                    Ok(env) => env,
                    // A response we cannot decode poisons the demux: the
                    // stream may be desynchronized, so the connection dies.
                    Err(_) => break,
                };
                let waiter = shared.pending.lock().unwrap().remove(&env.request_id);
                match waiter {
                    Some(w) => {
                        simpim_obs::metrics::histogram_record_exemplar(
                            &format!("simpim.net.client.{}_ns", w.kind),
                            w.sent.elapsed().as_nanos() as u64,
                            w.trace_id,
                        );
                        // The handle may have been dropped; that is fine.
                        let _ = w.tx.send(env.msg);
                    }
                    None => {
                        shared.orphans.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // The client socket has no read timeout; Idle means a signal
            // interrupted the read — just keep reading.
            ReadStep::Idle => continue,
            ReadStep::Eof | ReadStep::DirtyEof | ReadStep::TooLarge { .. } | ReadStep::Err(_) => {
                break
            }
        }
    }
    shared.dead.store(true, Ordering::SeqCst);
    // Dropping the waiters disconnects every outstanding handle, which
    // surfaces as `NetError::ConnectionLost` at the call sites.
    shared.pending.lock().unwrap().clear();
}

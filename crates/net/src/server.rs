//! The blocking multi-threaded TCP server that owns a [`ServeEngine`].
//!
//! ## Threading model
//!
//! One non-blocking accept loop, two threads per connection:
//!
//! * the **reader** decodes frames and *admits* requests — it never
//!   blocks on the engine. Admission is two-layered: the per-connection
//!   in-flight **window** (`NetConfig::window`) sheds first, then the
//!   engine's bounded submission queue (via the non-blocking
//!   `ServeEngine::*_submit` API). Both sheds answer a typed
//!   [`ErrorCode::Overloaded`] frame immediately — transport
//!   backpressure surfaces exactly like engine admission control, never
//!   as a hang.
//! * the **writer** drains a bounded outgoing queue, resolving each
//!   admitted request's [`simpim_serve::Pending`] reply and writing the
//!   response frame under a write timeout
//!   (`NetConfig::write_timeout`). A peer that stops reading (a *slow
//!   reader*) fills its TCP receive window, the write times out, and
//!   the connection is dropped with `transport_errors` accounting — the
//!   engine and every other connection are untouched.
//!
//! The reader→writer queue is bounded at `window + shed slack`; a client
//! that floods faster than its responses drain eventually blocks the
//! reader on that queue, which stops frame consumption and pushes the
//! backpressure into the kernel's TCP flow control **for that connection
//! only**.
//!
//! ## Trace propagation
//!
//! Every request header carries the client's `{trace_id, span_id}`. The
//! server joins the trace with [`TraceCtx::join`] — adopting the remote
//! trace id while minting span ids locally — so the flight recorder's
//! span trees reconstruct end to end under the *client's* trace id, and
//! a `BENCH_net_flight.jsonl` line can be matched 1:1 with the client
//! that caused it.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use simpim_obs::TraceCtx;
use simpim_serve::{Neighbor, Pending, ServeEngine, ServeError};

use crate::error::NetError;
use crate::stats::{stats_document, NetStats};
use crate::wire::{
    decode_request, encode_response, Envelope, ErrorCode, FrameReader, ReadStep, Request, Response,
    WireError, DEFAULT_MAX_FRAME,
};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Transport configuration. Defaults read the `SIMPIM_NET_*` environment
/// knobs so deployments tune the transport without recompiling.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-connection in-flight request window. Requests beyond it are
    /// shed with [`ErrorCode::Overloaded`] before touching the engine.
    /// Default: `SIMPIM_NET_WINDOW` or 32.
    pub window: usize,
    /// Slow-reader guard: a response write that makes no progress for
    /// this long drops the connection. Default:
    /// `SIMPIM_NET_WRITE_TIMEOUT_MS` or 5000.
    pub write_timeout: Duration,
    /// Maximum accepted frame payload. Default: `SIMPIM_NET_MAX_FRAME`
    /// or 16 MiB.
    pub max_frame: usize,
    /// Queue deadline applied to queries that don't carry their own
    /// (`timeout_ms == 0`). Default: 5 s.
    pub default_deadline: Duration,
    /// Socket read timeout: how often idle readers poll the shutdown
    /// flag. Default: 100 ms.
    pub read_poll: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            window: (env_u64("SIMPIM_NET_WINDOW", 32) as usize).max(1),
            write_timeout: Duration::from_millis(
                env_u64("SIMPIM_NET_WRITE_TIMEOUT_MS", 5_000).max(1),
            ),
            max_frame: (env_u64("SIMPIM_NET_MAX_FRAME", DEFAULT_MAX_FRAME as u64) as usize)
                .max(crate::wire::HEADER_LEN),
            default_deadline: Duration::from_secs(5),
            read_poll: Duration::from_millis(100),
        }
    }
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
    frames_rx: AtomicU64,
    frames_tx: AtomicU64,
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
    decode_errors: AtomicU64,
    window_sheds: AtomicU64,
    engine_sheds: AtomicU64,
    transport_errors: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            window_sheds: self.window_sheds.load(Ordering::Relaxed),
            engine_sheds: self.engine_sheds.load(Ordering::Relaxed),
            transport_errors: self.transport_errors.load(Ordering::Relaxed),
        }
    }
}

/// A TCP front-end serving one [`ServeEngine`]. Binding spawns the
/// accept loop; dropping (or [`NetServer::shutdown`]) stops accepting,
/// unwinds every connection, and joins all threads before the engine
/// tears down.
pub struct NetServer {
    engine: Arc<ServeEngine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back via
    /// [`NetServer::local_addr`]) and starts serving `engine`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
        engine: ServeEngine,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            thread::Builder::new()
                .name("simpim-net-accept".to_string())
                .spawn(move || accept_loop(listener, cfg, engine, stop, counters))
                .expect("spawn accept thread")
        };
        simpim_obs::metrics::counter_add("simpim.net.server.binds", 1);
        Ok(Self {
            engine,
            addr,
            stop,
            accept: Some(accept),
            counters,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server — for in-process fault injection
    /// (`kill_bank`) and direct stats in tests and examples.
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Transport counter snapshot.
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Stops accepting, closes every connection, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: NetConfig,
    engine: Arc<ServeEngine>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                counters.connections_open.fetch_add(1, Ordering::Relaxed);
                simpim_obs::metrics::counter_add("simpim.net.server.connections", 1);
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let cfg = cfg.clone();
                let h = thread::Builder::new()
                    .name("simpim-net-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, cfg, engine, stop, Arc::clone(&counters));
                        counters.connections_open.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                conns.push(h);
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// One response owed to the client, in request order.
enum Outgoing {
    /// Already-encoded frame (errors, pong, stats, flight).
    Ready(Vec<u8>),
    /// An admitted query; the writer resolves the reply.
    Query(Tagged<Vec<Neighbor>>),
    /// An admitted insert.
    Insert(Tagged<usize>),
    /// An admitted delete.
    Delete(Tagged<bool>),
    /// An admitted flush.
    Flush(Tagged<()>),
}

struct Tagged<T> {
    request_id: u64,
    trace_id: u64,
    span_id: u64,
    accepted: Instant,
    pending: Pending<T>,
}

fn error_frame(
    request_id: u64,
    trace_id: u64,
    span_id: u64,
    code: ErrorCode,
    message: String,
) -> Vec<u8> {
    encode_response(&Envelope {
        request_id,
        trace_id,
        span_id,
        msg: Response::Error { code, message },
    })
}

fn serve_error_frame(env_ids: (u64, u64, u64), e: &ServeError) -> Vec<u8> {
    error_frame(
        env_ids.0,
        env_ids.1,
        env_ids.2,
        ErrorCode::from_serve(e),
        e.to_string(),
    )
}

fn serve_connection(
    stream: TcpStream,
    cfg: NetConfig,
    engine: Arc<ServeEngine>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_poll));
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            counters.transport_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let conn_dead = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicUsize::new(0));
    // Window slots plus slack for shed/error frames: a reader blocked
    // here (flooding client) stops consuming frames, which is exactly
    // the per-connection TCP backpressure we want.
    let (out_tx, out_rx) = mpsc::sync_channel::<Outgoing>(cfg.window * 2 + 16);
    let writer = {
        let counters = Arc::clone(&counters);
        let conn_dead = Arc::clone(&conn_dead);
        let in_flight = Arc::clone(&in_flight);
        let write_timeout = cfg.write_timeout;
        thread::Builder::new()
            .name("simpim-net-writer".to_string())
            .spawn(move || {
                writer_loop(
                    write_half,
                    out_rx,
                    write_timeout,
                    counters,
                    conn_dead,
                    in_flight,
                )
            })
            .expect("spawn writer thread")
    };

    reader_loop(
        &stream, &cfg, &engine, &stop, &counters, &conn_dead, &in_flight, &out_tx,
    );

    // Closing our sender ends the writer once it has drained what the
    // client is owed; shutting down the socket unblocks a writer stuck
    // in a timed-out write.
    drop(out_tx);
    if conn_dead.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
    }
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    stream: &TcpStream,
    cfg: &NetConfig,
    engine: &ServeEngine,
    stop: &AtomicBool,
    counters: &Counters,
    conn_dead: &AtomicBool,
    in_flight: &AtomicUsize,
    out_tx: &SyncSender<Outgoing>,
) {
    let mut fr = FrameReader::new(stream, cfg.max_frame);
    loop {
        if stop.load(Ordering::SeqCst) || conn_dead.load(Ordering::SeqCst) {
            return;
        }
        match fr.next_frame() {
            ReadStep::Idle => continue,
            ReadStep::Eof => return,
            ReadStep::DirtyEof => {
                counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                simpim_obs::metrics::counter_add("simpim.net.server.decode_errors", 1);
                return;
            }
            ReadStep::TooLarge { len } => {
                // The stream cannot be resynchronized past a hostile
                // length prefix: answer a typed frame, then close.
                counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                simpim_obs::metrics::counter_add("simpim.net.server.decode_errors", 1);
                let _ = out_tx.send(Outgoing::Ready(error_frame(
                    0,
                    0,
                    0,
                    ErrorCode::BadFrame,
                    WireError::TooLarge { len }.to_string(),
                )));
                return;
            }
            ReadStep::Err(_) => {
                counters.transport_errors.fetch_add(1, Ordering::Relaxed);
                simpim_obs::metrics::counter_add("simpim.net.server.transport_errors", 1);
                return;
            }
            ReadStep::Frame(payload) => {
                counters.frames_rx.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_rx
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                let env = match decode_request(&payload) {
                    Ok(env) => env,
                    Err(fail) => {
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        simpim_obs::metrics::counter_add("simpim.net.server.decode_errors", 1);
                        // Version skew poisons everything after the
                        // header; body-level garbage is request-scoped.
                        let close = matches!(fail.error, WireError::BadVersion { .. });
                        let code = if close {
                            ErrorCode::UnsupportedVersion
                        } else {
                            ErrorCode::BadFrame
                        };
                        let frame = error_frame(
                            fail.request_id,
                            fail.trace_id,
                            fail.span_id,
                            code,
                            fail.error.to_string(),
                        );
                        if out_tx.send(Outgoing::Ready(frame)).is_err() || close {
                            return;
                        }
                        continue;
                    }
                };
                if !dispatch(env, cfg, engine, counters, in_flight, out_tx) {
                    return;
                }
            }
        }
    }
}

/// Handles one decoded request. Returns `false` when the connection
/// should close (writer gone).
fn dispatch(
    env: Envelope<Request>,
    cfg: &NetConfig,
    engine: &ServeEngine,
    counters: &Counters,
    in_flight: &AtomicUsize,
    out_tx: &SyncSender<Outgoing>,
) -> bool {
    let ids = (env.request_id, env.trace_id, env.span_id);
    let reply = |msg: Response| {
        Outgoing::Ready(encode_response(&Envelope {
            request_id: ids.0,
            trace_id: ids.1,
            span_id: ids.2,
            msg,
        }))
    };
    // Engine-backed commands hold a window slot until their response is
    // written; control frames (ping/stats/flight) answer inline.
    let windowed = matches!(
        env.msg,
        Request::Query { .. } | Request::Insert { .. } | Request::Delete { .. } | Request::Flush
    );
    if windowed && in_flight.load(Ordering::Acquire) >= cfg.window {
        counters.window_sheds.fetch_add(1, Ordering::Relaxed);
        simpim_obs::metrics::counter_add("simpim.net.server.window_sheds", 1);
        let msg = format!(
            "connection window full ({} requests in flight): request shed by admission control",
            cfg.window
        );
        return out_tx
            .send(reply(Response::Error {
                code: ErrorCode::Overloaded,
                message: msg,
            }))
            .is_ok();
    }
    // Join the client's trace: its trace id, a locally minted span id —
    // flight-recorder trees reconstruct under the id the client knows.
    let ctx = TraceCtx::join(env.trace_id);
    let accepted = Instant::now();
    let out = match env.msg {
        Request::Ping => reply(Response::Pong),
        Request::Stats => match engine.stats() {
            Ok(es) => reply(Response::Stats(stats_document(&es, &counters.snapshot()))),
            Err(e) => Outgoing::Ready(serve_error_frame(ids, &e)),
        },
        Request::Flight => match engine.flight_dump() {
            Ok(dump) => reply(Response::Flight(dump)),
            Err(e) => Outgoing::Ready(serve_error_frame(ids, &e)),
        },
        Request::Query {
            k,
            timeout_ms,
            vector,
        } => {
            let deadline = if timeout_ms == 0 {
                cfg.default_deadline
            } else {
                Duration::from_millis(u64::from(timeout_ms))
            };
            match engine.knn_submit(&vector, k as usize, deadline, ctx) {
                Ok(pending) => {
                    in_flight.fetch_add(1, Ordering::AcqRel);
                    Outgoing::Query(Tagged {
                        request_id: ids.0,
                        trace_id: ids.1,
                        span_id: ids.2,
                        accepted,
                        pending,
                    })
                }
                Err(e) => shed_frame(ids, &e, counters),
            }
        }
        Request::Insert { row } => match engine.insert_submit(&row, ctx) {
            Ok(pending) => {
                in_flight.fetch_add(1, Ordering::AcqRel);
                Outgoing::Insert(Tagged {
                    request_id: ids.0,
                    trace_id: ids.1,
                    span_id: ids.2,
                    accepted,
                    pending,
                })
            }
            Err(e) => shed_frame(ids, &e, counters),
        },
        Request::Delete { id } => match engine.delete_submit(id as usize, ctx) {
            Ok(pending) => {
                in_flight.fetch_add(1, Ordering::AcqRel);
                Outgoing::Delete(Tagged {
                    request_id: ids.0,
                    trace_id: ids.1,
                    span_id: ids.2,
                    accepted,
                    pending,
                })
            }
            Err(e) => shed_frame(ids, &e, counters),
        },
        Request::Flush => match engine.flush_submit(ctx) {
            Ok(pending) => {
                in_flight.fetch_add(1, Ordering::AcqRel);
                Outgoing::Flush(Tagged {
                    request_id: ids.0,
                    trace_id: ids.1,
                    span_id: ids.2,
                    accepted,
                    pending,
                })
            }
            Err(e) => shed_frame(ids, &e, counters),
        },
    };
    out_tx.send(out).is_ok()
}

/// Encodes an engine-rejection frame, accounting queue-full rejections
/// as engine-side sheds (distinct from window sheds).
fn shed_frame(ids: (u64, u64, u64), e: &ServeError, counters: &Counters) -> Outgoing {
    if matches!(e, ServeError::Overloaded) {
        counters.engine_sheds.fetch_add(1, Ordering::Relaxed);
        simpim_obs::metrics::counter_add("simpim.net.server.engine_sheds", 1);
    }
    Outgoing::Ready(serve_error_frame(ids, e))
}

fn resolve<T>(tagged: Tagged<T>, ok: impl FnOnce(T) -> Response) -> (Vec<u8>, u64, Instant) {
    let msg = match tagged.pending.wait() {
        Ok(v) => ok(v),
        Err(e) => Response::Error {
            code: ErrorCode::from_serve(&e),
            message: e.to_string(),
        },
    };
    (
        encode_response(&Envelope {
            request_id: tagged.request_id,
            trace_id: tagged.trace_id,
            span_id: tagged.span_id,
            msg,
        }),
        tagged.trace_id,
        tagged.accepted,
    )
}

fn writer_loop(
    mut w: TcpStream,
    rx: Receiver<Outgoing>,
    write_timeout: Duration,
    counters: Arc<Counters>,
    conn_dead: Arc<AtomicBool>,
    in_flight: Arc<AtomicUsize>,
) {
    let _ = w.set_write_timeout(Some(write_timeout));
    while let Ok(out) = rx.recv() {
        let windowed = !matches!(out, Outgoing::Ready(_));
        let (frame, trace_id, accepted) = match out {
            Outgoing::Ready(f) => (f, 0, None),
            Outgoing::Query(t) => {
                let (f, tr, at) = resolve(t, |n| {
                    Response::Query(n.into_iter().map(|(id, d)| (id as u64, d)).collect())
                });
                (f, tr, Some(at))
            }
            Outgoing::Insert(t) => {
                let (f, tr, at) = resolve(t, |id| Response::Insert(id as u64));
                (f, tr, Some(at))
            }
            Outgoing::Delete(t) => {
                let (f, tr, at) = resolve(t, Response::Delete);
                (f, tr, Some(at))
            }
            Outgoing::Flush(t) => {
                let (f, tr, at) = resolve(t, |()| Response::Flush);
                (f, tr, Some(at))
            }
        };
        if windowed {
            in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(at) = accepted {
            simpim_obs::metrics::histogram_record_exemplar(
                "simpim.net.server.service_ns",
                at.elapsed().as_nanos() as u64,
                trace_id,
            );
        }
        // A write timeout here is the slow-reader path: the client's
        // receive window is full and stayed full for `write_timeout`.
        // Partial frames cannot be resumed, so the connection dies.
        if let Err(_e) = w.write_all(&frame) {
            counters.transport_errors.fetch_add(1, Ordering::Relaxed);
            simpim_obs::metrics::counter_add("simpim.net.server.transport_errors", 1);
            conn_dead.store(true, Ordering::SeqCst);
            break;
        }
        counters.frames_tx.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_tx
            .fetch_add(frame.len().saturating_sub(4) as u64, Ordering::Relaxed);
    }
    // Connection is closing: resolve (and discard) whatever is still
    // queued so in-flight accounting ends balanced.
    while let Ok(out) = rx.try_recv() {
        if !matches!(out, Outgoing::Ready(_)) {
            in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_config_defaults_are_sane() {
        let cfg = NetConfig::default();
        assert!(cfg.window >= 1);
        assert!(cfg.max_frame >= crate::wire::HEADER_LEN);
        assert!(cfg.write_timeout >= Duration::from_millis(1));
    }
}

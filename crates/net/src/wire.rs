//! The wire format: versioned, length-prefixed binary frames.
//!
//! Every frame is `[u32 LE payload length][payload]`; the payload opens
//! with a fixed 26-byte header and closes with an opcode-specific body
//! (all integers little-endian, all floats IEEE-754 `f64` bit patterns —
//! so answers round-trip *bit-identically*, NaNs included):
//!
//! | offset | field        | type  | meaning                                  |
//! |--------|--------------|-------|------------------------------------------|
//! | 0      | `version`    | `u8`  | [`WIRE_VERSION`]                         |
//! | 1      | `opcode`     | `u8`  | request `0x01..`, response `0x81..`      |
//! | 2      | `request_id` | `u64` | client-minted, echoed in the response    |
//! | 10     | `trace_id`   | `u64` | [`simpim_obs::TraceCtx`] trace id        |
//! | 18     | `span_id`    | `u64` | client-side root span id                 |
//! | 26     | body         | —     | per-opcode payload                       |
//!
//! The trace ids ride in the fixed header rather than the body so *every*
//! frame — including typed error responses — stays attributable to the
//! request that caused it, and the server can join the client's trace
//! (via [`simpim_obs::TraceCtx::join`]) before it even looks at the body.
//!
//! Decoding is total: any byte sequence either decodes or returns a
//! structured [`WireError`], never a panic. Body lengths are validated
//! against declared element counts *before* any allocation, so a
//! malicious length field cannot balloon memory. Frame reads are bounded
//! by a configurable maximum ([`DEFAULT_MAX_FRAME`]); an oversized length
//! prefix is detected before any payload is read.

use std::io::{self, Read};

/// Wire protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 1;

/// Fixed payload header length (version, opcode, request id, trace id,
/// span id).
pub const HEADER_LEN: usize = 26;

/// Default maximum accepted payload length (16 MiB). Override with
/// `SIMPIM_NET_MAX_FRAME` or [`crate::NetConfig::max_frame`].
pub const DEFAULT_MAX_FRAME: usize = 1 << 24;

/// Request opcodes (`0x01..=0x07`).
mod op {
    pub const QUERY: u8 = 0x01;
    pub const INSERT: u8 = 0x02;
    pub const DELETE: u8 = 0x03;
    pub const STATS: u8 = 0x04;
    pub const FLUSH: u8 = 0x05;
    pub const FLIGHT: u8 = 0x06;
    pub const PING: u8 = 0x07;
    pub const QUERY_OK: u8 = 0x81;
    pub const INSERT_OK: u8 = 0x82;
    pub const DELETE_OK: u8 = 0x83;
    pub const STATS_OK: u8 = 0x84;
    pub const FLUSH_OK: u8 = 0x85;
    pub const FLIGHT_OK: u8 = 0x86;
    pub const PONG: u8 = 0x87;
    pub const ERROR: u8 = 0xFF;
}

/// Typed error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request — the per-connection in-flight
    /// window or the engine submission queue was full. Back off and
    /// retry; the connection stays healthy.
    Overloaded,
    /// The request's deadline expired while it waited in the queue.
    DeadlineExpired,
    /// The engine behind the server has shut down.
    Closed,
    /// A request argument was rejected (dimensionality, `k == 0`, ...).
    InvalidArgument,
    /// Server-side configuration error.
    Config,
    /// A PIM execution or refinement failure that was not recoverable.
    Internal,
    /// The request frame was malformed (unknown opcode, truncated or
    /// inconsistent body). Request-scoped: the connection continues.
    BadFrame,
    /// The frame's version byte is not [`WIRE_VERSION`]. The server
    /// answers with this code and then closes the connection — nothing
    /// after an alien header can be trusted.
    UnsupportedVersion,
}

impl ErrorCode {
    /// The on-wire `u16` for this code.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::DeadlineExpired => 2,
            ErrorCode::Closed => 3,
            ErrorCode::InvalidArgument => 4,
            ErrorCode::Config => 5,
            ErrorCode::Internal => 6,
            ErrorCode::BadFrame => 7,
            ErrorCode::UnsupportedVersion => 8,
        }
    }

    /// Parses an on-wire code; unknown values map to
    /// [`ErrorCode::Internal`] so a newer server's codes degrade rather
    /// than kill the connection.
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExpired,
            3 => ErrorCode::Closed,
            4 => ErrorCode::InvalidArgument,
            5 => ErrorCode::Config,
            6 => ErrorCode::Internal,
            7 => ErrorCode::BadFrame,
            8 => ErrorCode::UnsupportedVersion,
            _ => ErrorCode::Internal,
        }
    }

    /// The [`simpim_serve::ServeError`] this code mirrors, for callers
    /// that want to treat remote and in-process errors uniformly.
    pub fn from_serve(e: &simpim_serve::ServeError) -> ErrorCode {
        use simpim_serve::ServeError as E;
        match e {
            E::Overloaded => ErrorCode::Overloaded,
            E::DeadlineExpired => ErrorCode::DeadlineExpired,
            E::Closed => ErrorCode::Closed,
            E::InvalidArgument { .. } => ErrorCode::InvalidArgument,
            E::Config { .. } => ErrorCode::Config,
            E::Core(_) | E::Mining(_) => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExpired => "deadline_expired",
            ErrorCode::Closed => "closed",
            ErrorCode::InvalidArgument => "invalid_argument",
            ErrorCode::Config => "config",
            ErrorCode::Internal => "internal",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::UnsupportedVersion => "unsupported_version",
        };
        f.write_str(s)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Exact kNN over the live rows. `timeout_ms == 0` applies the
    /// server's default deadline.
    Query {
        /// Neighbors requested.
        k: u32,
        /// Queue-deadline override in milliseconds (0 = server default).
        timeout_ms: u32,
        /// The query vector.
        vector: Vec<f64>,
    },
    /// Insert one normalized row; the response carries its assigned id.
    Insert {
        /// The row values.
        row: Vec<f64>,
    },
    /// Delete a global id.
    Delete {
        /// The id to delete.
        id: u64,
    },
    /// Fetch engine + transport statistics as JSON.
    Stats,
    /// Force a rolling compacting reprogram.
    Flush,
    /// Fetch the flight-recorder dump (JSONL).
    Flight,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Short opcode name, used for metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Query { .. } => "query",
            Request::Insert { .. } => "insert",
            Request::Delete { .. } => "delete",
            Request::Stats => "stats",
            Request::Flush => "flush",
            Request::Flight => "flight",
            Request::Ping => "ping",
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Neighbors, best first, as `(global id, measure value)` pairs.
    Query(Vec<(u64, f64)>),
    /// Assigned id of an accepted insert.
    Insert(u64),
    /// Whether the deleted id was present.
    Delete(bool),
    /// Engine + transport statistics as a JSON document.
    Stats(String),
    /// Flush completed.
    Flush,
    /// Flight-recorder dump as JSONL.
    Flight(String),
    /// Liveness answer.
    Pong,
    /// A typed error; see [`ErrorCode`] for retryability.
    Error {
        /// What class of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// The frame header around a request or response: the ids that tie a
/// frame to its request and to the cross-process trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    /// Client-minted request id, echoed verbatim in the response.
    pub request_id: u64,
    /// Trace id (0 = untraced); responses echo the request's.
    pub trace_id: u64,
    /// Root span id on the minting side; responses echo the request's.
    pub span_id: u64,
    /// The message itself.
    pub msg: T,
}

/// Structured decode failure.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Version byte was not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// Unknown opcode for this direction.
    BadOpcode {
        /// The opcode byte received.
        got: u8,
    },
    /// The payload ended before a declared field.
    Truncated {
        /// Which field was cut off.
        what: &'static str,
    },
    /// The payload continued past the end of the declared body.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A declared count/length disagrees with the bytes present.
    BadPayload {
        /// What was inconsistent.
        what: String,
    },
    /// A frame declared a payload longer than the configured maximum.
    TooLarge {
        /// The declared payload length.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (expected {WIRE_VERSION})"
                )
            }
            WireError::BadOpcode { got } => write!(f, "unknown opcode 0x{got:02x}"),
            WireError::Truncated { what } => write!(f, "frame truncated at {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the declared body")
            }
            WireError::BadPayload { what } => write!(f, "inconsistent payload: {what}"),
            WireError::TooLarge { len } => write!(f, "frame of {len} bytes exceeds the limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decode failure plus whatever header ids could still be salvaged —
/// so the server can answer a *typed* error frame for the right request
/// even when the body was garbage. Ids are 0 when the header itself was
/// unreadable.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeFailure {
    /// Salvaged request id (0 if the header was unreadable).
    pub request_id: u64,
    /// Salvaged trace id.
    pub trace_id: u64,
    /// Salvaged span id.
    pub span_id: u64,
    /// What went wrong.
    pub error: WireError,
}

/// Little-endian cursor over a payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }

    /// A length-checked `f64` run: requires `count * 8 == remaining`
    /// *before* allocating, so a hostile count cannot balloon memory.
    fn f64_run(&mut self, count: usize, what: &'static str) -> Result<Vec<f64>, WireError> {
        let need = count.checked_mul(8).ok_or(WireError::BadPayload {
            what: format!("{what}: count {count} overflows"),
        })?;
        if self.remaining() < need {
            return Err(WireError::BadPayload {
                what: format!(
                    "{what}: {count} values declared, {} byte(s) present",
                    self.remaining()
                ),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    /// A length-prefixed UTF-8 string occupying the rest of the body.
    fn text(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        if self.remaining() != len {
            return Err(WireError::BadPayload {
                what: format!(
                    "{what}: {len} byte(s) declared, {} present",
                    self.remaining()
                ),
            });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload {
            what: format!("{what}: not valid UTF-8"),
        })
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_text(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a full frame (length prefix included) from a header and an
/// opcode + body writer.
fn encode_frame(
    request_id: u64,
    trace_id: u64,
    span_id: u64,
    opcode: u8,
    body: impl FnOnce(&mut Vec<u8>),
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&[0u8; 4]); // length prefix, patched below
    out.push(WIRE_VERSION);
    out.push(opcode);
    push_u64(&mut out, request_id);
    push_u64(&mut out, trace_id);
    push_u64(&mut out, span_id);
    body(&mut out);
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// Encodes one request as a complete frame (length prefix included).
pub fn encode_request(env: &Envelope<Request>) -> Vec<u8> {
    let (opcode, req) = match &env.msg {
        Request::Query { .. } => (op::QUERY, &env.msg),
        Request::Insert { .. } => (op::INSERT, &env.msg),
        Request::Delete { .. } => (op::DELETE, &env.msg),
        Request::Stats => (op::STATS, &env.msg),
        Request::Flush => (op::FLUSH, &env.msg),
        Request::Flight => (op::FLIGHT, &env.msg),
        Request::Ping => (op::PING, &env.msg),
    };
    encode_frame(
        env.request_id,
        env.trace_id,
        env.span_id,
        opcode,
        |out| match req {
            Request::Query {
                k,
                timeout_ms,
                vector,
            } => {
                push_u32(out, *k);
                push_u32(out, *timeout_ms);
                push_u32(out, vector.len() as u32);
                for v in vector {
                    push_f64(out, *v);
                }
            }
            Request::Insert { row } => {
                push_u32(out, row.len() as u32);
                for v in row {
                    push_f64(out, *v);
                }
            }
            Request::Delete { id } => push_u64(out, *id),
            Request::Stats | Request::Flush | Request::Flight | Request::Ping => {}
        },
    )
}

/// Encodes one response as a complete frame (length prefix included).
pub fn encode_response(env: &Envelope<Response>) -> Vec<u8> {
    let opcode = match &env.msg {
        Response::Query(_) => op::QUERY_OK,
        Response::Insert(_) => op::INSERT_OK,
        Response::Delete(_) => op::DELETE_OK,
        Response::Stats(_) => op::STATS_OK,
        Response::Flush => op::FLUSH_OK,
        Response::Flight(_) => op::FLIGHT_OK,
        Response::Pong => op::PONG,
        Response::Error { .. } => op::ERROR,
    };
    encode_frame(
        env.request_id,
        env.trace_id,
        env.span_id,
        opcode,
        |out| match &env.msg {
            Response::Query(neighbors) => {
                push_u32(out, neighbors.len() as u32);
                for (id, d) in neighbors {
                    push_u64(out, *id);
                    push_f64(out, *d);
                }
            }
            Response::Insert(id) => push_u64(out, *id),
            Response::Delete(found) => out.push(u8::from(*found)),
            Response::Stats(json) => push_text(out, json),
            Response::Flush | Response::Pong => {}
            Response::Flight(jsonl) => push_text(out, jsonl),
            Response::Error { code, message } => {
                push_u16(out, code.to_u16());
                push_text(out, message);
            }
        },
    )
}

/// Salvages header ids for error reporting; zeros when unreadable.
fn salvage(payload: &[u8], error: WireError) -> DecodeFailure {
    let mut ids = (0u64, 0u64, 0u64);
    if payload.len() >= HEADER_LEN {
        ids = (
            u64::from_le_bytes(payload[2..10].try_into().unwrap()),
            u64::from_le_bytes(payload[10..18].try_into().unwrap()),
            u64::from_le_bytes(payload[18..26].try_into().unwrap()),
        );
    }
    DecodeFailure {
        request_id: ids.0,
        trace_id: ids.1,
        span_id: ids.2,
        error,
    }
}

/// Parses the fixed header, returning `(opcode, envelope ids, body reader)`.
fn decode_header<'a>(payload: &'a [u8]) -> Result<(u8, u64, u64, u64, Reader<'a>), WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8("version")?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let opcode = r.u8("opcode")?;
    let request_id = r.u64("request_id")?;
    let trace_id = r.u64("trace_id")?;
    let span_id = r.u64("span_id")?;
    Ok((opcode, request_id, trace_id, span_id, r))
}

/// Decodes a request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Envelope<Request>, DecodeFailure> {
    let fail = |e: WireError| salvage(payload, e);
    let (opcode, request_id, trace_id, span_id, mut r) = decode_header(payload).map_err(fail)?;
    let msg = (|| -> Result<Request, WireError> {
        let msg = match opcode {
            op::QUERY => {
                let k = r.u32("k")?;
                let timeout_ms = r.u32("timeout_ms")?;
                let dim = r.u32("dim")? as usize;
                Request::Query {
                    k,
                    timeout_ms,
                    vector: r.f64_run(dim, "query vector")?,
                }
            }
            op::INSERT => {
                let dim = r.u32("dim")? as usize;
                Request::Insert {
                    row: r.f64_run(dim, "insert row")?,
                }
            }
            op::DELETE => Request::Delete {
                id: r.u64("delete id")?,
            },
            op::STATS => Request::Stats,
            op::FLUSH => Request::Flush,
            op::FLIGHT => Request::Flight,
            op::PING => Request::Ping,
            got => return Err(WireError::BadOpcode { got }),
        };
        r.finish()?;
        Ok(msg)
    })()
    .map_err(fail)?;
    Ok(Envelope {
        request_id,
        trace_id,
        span_id,
        msg,
    })
}

/// Decodes a response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Envelope<Response>, DecodeFailure> {
    let fail = |e: WireError| salvage(payload, e);
    let (opcode, request_id, trace_id, span_id, mut r) = decode_header(payload).map_err(fail)?;
    let msg = (|| -> Result<Response, WireError> {
        let msg = match opcode {
            op::QUERY_OK => {
                let count = r.u32("neighbor count")? as usize;
                let need = count.checked_mul(16).ok_or(WireError::BadPayload {
                    what: format!("neighbor count {count} overflows"),
                })?;
                if r.remaining() != need {
                    return Err(WireError::BadPayload {
                        what: format!(
                            "{count} neighbors declared, {} byte(s) present",
                            r.remaining()
                        ),
                    });
                }
                let mut neighbors = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = r.u64("neighbor id")?;
                    let d = r.f64("neighbor distance")?;
                    neighbors.push((id, d));
                }
                Response::Query(neighbors)
            }
            op::INSERT_OK => Response::Insert(r.u64("insert id")?),
            op::DELETE_OK => match r.u8("delete flag")? {
                0 => Response::Delete(false),
                1 => Response::Delete(true),
                v => {
                    return Err(WireError::BadPayload {
                        what: format!("delete flag must be 0/1, got {v}"),
                    })
                }
            },
            op::STATS_OK => Response::Stats(r.text("stats json")?),
            op::FLUSH_OK => Response::Flush,
            op::FLIGHT_OK => Response::Flight(r.text("flight jsonl")?),
            op::PONG => Response::Pong,
            op::ERROR => {
                let code = ErrorCode::from_u16(r.u16("error code")?);
                Response::Error {
                    code,
                    message: r.text("error message")?,
                }
            }
            got => return Err(WireError::BadOpcode { got }),
        };
        r.finish()?;
        Ok(msg)
    })()
    .map_err(fail)?;
    Ok(Envelope {
        request_id,
        trace_id,
        span_id,
        msg,
    })
}

/// One step of an incremental frame read.
#[derive(Debug)]
pub enum ReadStep {
    /// A complete payload (length prefix stripped).
    Frame(Vec<u8>),
    /// No complete frame yet (the read timed out mid-stream); call again.
    /// Any partial bytes stay buffered, so polling never loses sync.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The peer closed the connection mid-frame.
    DirtyEof,
    /// A frame declared a payload over the maximum.
    TooLarge {
        /// The declared payload length.
        len: usize,
    },
    /// The underlying read failed.
    Err(io::Error),
}

/// Incremental frame reader over a blocking (optionally read-timeout)
/// stream. Buffers partial frames across calls, so a socket read timeout
/// — used by the server to poll its shutdown flag — never desynchronizes
/// the stream.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    max_frame: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream with a payload-size bound.
    pub fn new(inner: R, max_frame: usize) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(4096),
            max_frame,
        }
    }

    /// Extracts a buffered complete frame, if any.
    fn take_buffered(&mut self) -> Option<ReadStep> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len < HEADER_LEN || len > self.max_frame {
            return Some(ReadStep::TooLarge { len });
        }
        if self.buf.len() < 4 + len {
            return None;
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Some(ReadStep::Frame(payload))
    }

    /// Reads until one complete frame is buffered, the stream goes idle
    /// (read timeout), or the peer closes.
    pub fn next_frame(&mut self) -> ReadStep {
        loop {
            if let Some(step) = self.take_buffered() {
                return step;
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        ReadStep::Eof
                    } else {
                        ReadStep::DirtyEof
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return ReadStep::Idle;
                }
                Err(e) => return ReadStep::Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn env(msg: Request) -> Envelope<Request> {
        Envelope {
            request_id: 7,
            trace_id: 11,
            span_id: 13,
            msg,
        }
    }

    #[test]
    fn request_roundtrip_all_opcodes() {
        let reqs = [
            Request::Query {
                k: 3,
                timeout_ms: 250,
                vector: vec![0.0, 0.5, 1.0, f64::MIN_POSITIVE],
            },
            Request::Insert { row: vec![0.25; 7] },
            Request::Delete { id: u64::MAX },
            Request::Stats,
            Request::Flush,
            Request::Flight,
            Request::Ping,
        ];
        for msg in reqs {
            let e = env(msg);
            let frame = encode_request(&e);
            let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len + 4, frame.len());
            let back = decode_request(&frame[4..]).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn response_roundtrip_all_opcodes() {
        let resps = [
            Response::Query(vec![(0, 0.125), (u64::MAX, f64::NAN)]),
            Response::Insert(42),
            Response::Delete(true),
            Response::Delete(false),
            Response::Stats("{\"live\": 3}".into()),
            Response::Flush,
            Response::Flight("{\"trace_id\":1}\n".into()),
            Response::Pong,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "window full".into(),
            },
        ];
        for msg in resps {
            let e = Envelope {
                request_id: 1,
                trace_id: 2,
                span_id: 3,
                msg,
            };
            let frame = encode_response(&e);
            let back = decode_response(&frame[4..]).unwrap();
            // NaN-safe comparison: compare the re-encoded bytes.
            assert_eq!(encode_response(&back), frame);
            assert_eq!(back.request_id, 1);
            assert_eq!(back.trace_id, 2);
        }
    }

    #[test]
    fn bad_version_and_opcode_are_structured_errors() {
        let mut frame = encode_request(&env(Request::Ping));
        frame[4] = 99; // version byte
        let err = decode_request(&frame[4..]).unwrap_err();
        assert_eq!(err.error, WireError::BadVersion { got: 99 });
        // Header ids still salvaged for the error reply.
        assert_eq!(err.request_id, 7);

        let mut frame = encode_request(&env(Request::Ping));
        frame[5] = 0x6E; // opcode byte
        let err = decode_request(&frame[4..]).unwrap_err();
        assert_eq!(err.error, WireError::BadOpcode { got: 0x6E });
        assert_eq!((err.request_id, err.trace_id, err.span_id), (7, 11, 13));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected_at_every_length() {
        let frame = encode_request(&env(Request::Query {
            k: 2,
            timeout_ms: 0,
            vector: vec![0.5, 0.25],
        }));
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut long = payload.to_vec();
        long.push(0);
        let err = decode_request(&long).unwrap_err();
        assert!(matches!(
            err.error,
            WireError::TrailingBytes { .. } | WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn hostile_counts_cannot_balloon_memory() {
        // A query declaring 2^31 dimensions in a 40-byte body.
        let frame = encode_frame(1, 0, 0, op::QUERY, |out| {
            push_u32(out, 5);
            push_u32(out, 0);
            push_u32(out, u32::MAX); // dim
        });
        let err = decode_request(&frame[4..]).unwrap_err();
        assert!(matches!(err.error, WireError::BadPayload { .. }));
        // Same for a response with a hostile neighbor count.
        let frame = encode_frame(1, 0, 0, op::QUERY_OK, |out| push_u32(out, u32::MAX));
        let err = decode_response(&frame[4..]).unwrap_err();
        assert!(matches!(err.error, WireError::BadPayload { .. }));
    }

    #[test]
    fn frame_reader_reassembles_split_and_batched_frames() {
        let a = encode_request(&env(Request::Ping));
        let b = encode_request(&env(Request::Delete { id: 9 }));
        let mut bytes = a.clone();
        bytes.extend_from_slice(&b);
        let mut fr = FrameReader::new(Cursor::new(bytes), DEFAULT_MAX_FRAME);
        match fr.next_frame() {
            ReadStep::Frame(p) => assert_eq!(p, a[4..]),
            other => panic!("expected frame, got {other:?}"),
        }
        match fr.next_frame() {
            ReadStep::Frame(p) => assert_eq!(p, b[4..]),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(fr.next_frame(), ReadStep::Eof));
    }

    #[test]
    fn frame_reader_flags_oversized_and_dirty_streams() {
        // Oversized length prefix: detected before reading the payload.
        let mut bytes = vec![];
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let mut fr = FrameReader::new(Cursor::new(bytes), 1024);
        assert!(matches!(
            fr.next_frame(),
            ReadStep::TooLarge { len } if len == u32::MAX as usize
        ));
        // A length prefix below the header length is equally hostile.
        let mut fr = FrameReader::new(Cursor::new(3u32.to_le_bytes().to_vec()), 1024);
        assert!(matches!(fr.next_frame(), ReadStep::TooLarge { len: 3 }));
        // Mid-frame EOF is distinguishable from a clean close.
        let good = encode_request(&env(Request::Ping));
        let mut fr = FrameReader::new(Cursor::new(good[..good.len() - 2].to_vec()), 1024);
        assert!(matches!(fr.next_frame(), ReadStep::DirtyEof));
    }

    #[test]
    fn error_codes_roundtrip_and_map_from_serve_errors() {
        use simpim_serve::ServeError;
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExpired,
            ErrorCode::Closed,
            ErrorCode::InvalidArgument,
            ErrorCode::Config,
            ErrorCode::Internal,
            ErrorCode::BadFrame,
            ErrorCode::UnsupportedVersion,
        ] {
            assert_eq!(ErrorCode::from_u16(code.to_u16()), code);
        }
        assert_eq!(ErrorCode::from_u16(9999), ErrorCode::Internal);
        assert_eq!(
            ErrorCode::from_serve(&ServeError::Overloaded),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::DeadlineExpired),
            ErrorCode::DeadlineExpired
        );
        assert_eq!(
            ErrorCode::from_serve(&ServeError::InvalidArgument { what: "k".into() }),
            ErrorCode::InvalidArgument
        );
    }
}

//! # simpim-net — dependency-free TCP RPC front-end
//!
//! A network edge for the replicated PIM serving engine
//! ([`simpim_serve::ServeEngine`]), built entirely on `std::net` — no
//! async runtime, no serialization framework. Three pieces:
//!
//! * [`wire`] — the versioned, length-prefixed binary frame format.
//!   Decoding is total (any byte sequence yields a value or a structured
//!   [`wire::WireError`], never a panic), length fields are validated
//!   before allocation, and `f64` payloads round-trip bit-identically,
//!   so a networked query answers **exactly** the bytes the in-process
//!   engine produces.
//! * [`NetServer`] — blocking, thread-per-connection server that maps
//!   transport backpressure onto the engine's admission-control path: a
//!   bounded per-connection in-flight window sheds with typed
//!   `overloaded` frames before the engine is touched, and slow readers
//!   are detached by write timeout without stalling anyone else.
//!   Client-minted trace ids ride every frame header and are joined
//!   server-side ([`simpim_obs::TraceCtx::join`]), so flight-recorder
//!   span trees reconstruct end to end across the wire.
//! * [`NetClient`] / [`loadgen`] — a pipelined client (many requests in
//!   flight per connection, demultiplexed by request id) and an
//!   open-loop load generator with a fixed arrival schedule that
//!   measures latency from *scheduled* send time, immune to coordinated
//!   omission.
//!
//! ```no_run
//! use simpim_net::{NetClient, NetConfig, NetServer};
//! # fn engine() -> simpim_serve::ServeEngine { unimplemented!() }
//! let server = NetServer::bind("127.0.0.1:0", NetConfig::default(), engine()).unwrap();
//! let client = NetClient::connect(server.local_addr()).unwrap();
//! let neighbors = client.knn(&[0.1, 0.2, 0.3], 5, std::time::Duration::from_secs(1)).unwrap();
//! # let _ = neighbors;
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{NetClient, ReplyHandle};
pub use error::NetError;
pub use loadgen::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use server::{NetConfig, NetServer};
pub use stats::{engine_stats_json, stats_document, NetStats};
pub use wire::{ErrorCode, Request, Response, WIRE_VERSION};

//! Deterministic data-parallel execution layer.
//!
//! Every hot loop in the workspace that fans out across cores goes through
//! this crate, and every entry point obeys the same two rules:
//!
//! 1. **Fixed chunk boundaries.** Work is split into chunks whose sizes
//!    depend only on the problem size and the call site's chunk constant —
//!    never on the worker count. `SIMPIM_THREADS=1` and `=64` produce the
//!    same chunks.
//! 2. **Ordered reduction.** Chunk results are handed back (and merged by
//!    callers) in chunk-index order, regardless of which worker finished
//!    first.
//!
//! Together these make every parallelized result bit-identical to the
//! single-threaded run: each chunk performs exactly the arithmetic the
//! serial loop would have performed over the same index range, and the
//! merge replays the serial order. The thread count only decides *which
//! OS thread* executes a chunk, which no computation observes.
//!
//! The pool is dependency-free: workers are `std::thread::scope` scoped
//! threads pulling chunk indices from an atomic cursor (cheap work
//! stealing — an idle worker grabs the next unclaimed chunk). Pool
//! utilization is exported through `simpim-obs` as `simpim.par.*` metrics.
//!
//! The worker count comes from, in priority order: the programmatic
//! [`set_thread_override`] (used by tests and benches), the
//! `SIMPIM_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on workers; far above any sane `SIMPIM_THREADS`.
const MAX_THREADS: usize = 256;

/// 0 = no override; otherwise the override value itself.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SIMPIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(0)
    })
}

/// Number of workers a parallel call may use right now.
///
/// Priority: [`set_thread_override`] > `SIMPIM_THREADS` > detected cores.
/// Always at least 1, at most 256. This value never changes chunk
/// boundaries — only how many scoped workers pull from the chunk queue.
pub fn thread_count() -> usize {
    let ovr = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if ovr >= 1 {
        return ovr.min(MAX_THREADS);
    }
    let env = env_threads();
    if env >= 1 {
        return env.min(MAX_THREADS);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Programmatically pins the worker count (`None` restores the
/// `SIMPIM_THREADS` / auto-detect behavior). Used by the determinism
/// proptests and the `parallel_smoke` bench to compare thread counts
/// within one process without racing on the environment.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Runs `f` with the worker count pinned to `n`, restoring the previous
/// override afterwards (even on panic, via a drop guard).
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.swap(n.max(1), Ordering::Relaxed));
    f()
}

/// Splits `0..len` into chunks of `chunk` elements (the last one ragged).
/// Pure function of `(len, chunk)` — the worker count never leaks in, so
/// chunk boundaries (and therefore results) are thread-count invariant.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// A unit of work handed to [`join_all`]: an owned closure over borrowed
/// state (disjoint `&mut` chunks, shard handles, …).
pub type Job<'s, T> = Box<dyn FnOnce() -> T + Send + 's>;

/// Executes the jobs on the pool and returns their results **in job
/// order** (ordered reduction). Jobs are claimed via an atomic cursor, so
/// an idle worker steals the next unclaimed job; which worker runs a job
/// is the only nondeterminism, and it is unobservable in the results.
///
/// With one worker (or one job) everything runs inline on the caller in
/// job order — the exact serial loop.
pub fn join_all<'s, T: Send + 's>(jobs: Vec<Job<'s, T>>) -> Vec<T> {
    let n_jobs = jobs.len();
    let workers = thread_count().min(n_jobs);
    stats::record_call(n_jobs, workers);
    if workers <= 1 {
        if model::capture_enabled() {
            return model::run_inline_timed(jobs);
        }
        return jobs.into_iter().map(|j| j()).collect();
    }

    let start = Instant::now();
    let slots: Vec<Mutex<Option<Job<'s, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let fair_share = n_jobs.div_ceil(workers);

    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n_jobs);
    let mut total_busy = 0u128;
    let mut total_steals = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let slots = &slots;
                let cursor = &cursor;
                s.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut busy = 0u128;
                    let mut pulled = 0usize;
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_jobs {
                            break;
                        }
                        let job = slots[idx]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("job claimed twice");
                        pulled += 1;
                        let t0 = Instant::now();
                        local.push((idx, job()));
                        busy += t0.elapsed().as_nanos();
                    }
                    let steals = pulled.saturating_sub(fair_share) as u64;
                    (local, busy, steals)
                })
            })
            .collect();
        for h in handles {
            let (local, busy, steals) = h.join().expect("simpim-par worker panicked");
            collected.extend(local);
            total_busy += busy;
            total_steals += steals;
        }
    });
    let wall = start.elapsed().as_nanos();
    stats::record_dispatch(workers, wall, total_busy, total_steals);

    // Ordered reduction: results come back in job-index order no matter
    // which worker produced them.
    collected.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert_eq!(collected.len(), n_jobs);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Maps `f` over fixed `chunk`-sized ranges of `0..len`, returning the
/// per-chunk results in chunk order. `chunk` must be a call-site constant
/// (or a pure function of the problem size) — never derive it from
/// [`thread_count`], or bit-identity across thread counts is lost.
pub fn map_chunks<T, F>(len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, chunk);
    stats::record_chunks(&ranges);
    let f = &f;
    join_all(
        ranges
            .into_iter()
            .map(|r| Box::new(move || f(r)) as Job<'_, T>)
            .collect(),
    )
}

/// Chunk size for [`sort_by`]: fixed, so the chunk decomposition (and
/// therefore the merge order and the final permutation) never depends on
/// the worker count.
pub const SORT_CHUNK: usize = 4096;

/// Stable sort with the chunk sorts parallelized: `v` is split into
/// fixed [`SORT_CHUNK`]-sized chunks, each chunk is stably sorted on the
/// pool (disjoint `&mut` borrows), and a serial k-way merge that prefers
/// the earliest chunk on ties reassembles them. Per-chunk stable sort +
/// lowest-chunk-wins merge *is* a stable merge sort, so the output is
/// element-for-element identical to `v.sort_by(cmp)` at any thread
/// count.
///
/// The merge is `O(n·⌈n/SORT_CHUNK⌉)` comparisons — meant for the
/// candidate-ordering sizes of the mining walks (thousands to tens of
/// thousands), where the parallel chunk sorts dominate.
pub fn sort_by<T, F>(v: &mut [T], cmp: F)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    if v.len() <= SORT_CHUNK {
        v.sort_by(cmp);
        return;
    }
    {
        let cmp = &cmp;
        let jobs: Vec<Job<'_, ()>> = v
            .chunks_mut(SORT_CHUNK)
            .map(|c| Box::new(move || c.sort_by(cmp)) as Job<'_, ()>)
            .collect();
        join_all(jobs);
    }
    let mut out = Vec::with_capacity(v.len());
    {
        let chunks: Vec<&[T]> = v.chunks(SORT_CHUNK).collect();
        let mut heads = vec![0usize; chunks.len()];
        loop {
            let mut best: Option<usize> = None;
            for (ci, c) in chunks.iter().enumerate() {
                if heads[ci] < c.len()
                    && best.is_none_or(|b| {
                        cmp(&c[heads[ci]], &chunks[b][heads[b]]) == std::cmp::Ordering::Less
                    })
                {
                    best = Some(ci);
                }
            }
            let Some(b) = best else { break };
            out.push(chunks[b][heads[b]].clone());
            heads[b] += 1;
        }
    }
    v.clone_from_slice(&out);
}

/// Schedule capture + replay: measure what the chunking *admits* on `w`
/// workers, independent of how many cores the measuring host has.
///
/// [`model::capture`] records, for every top-level dispatch executed at one
/// worker (pin with [`with_threads`]`(1, …)`), the per-job durations in
/// job order. [`model::modeled_wall_ns`] then replays those durations through
/// the pool's scheduling discipline — jobs claimed in order by the
/// earliest-free worker, exactly the atomic-cursor behavior of
/// [`join_all`] — on `w` virtual workers. Time spent outside dispatches
/// is carried over as-is (it stays serial at any thread count).
///
/// The single-worker run is the right source of truth for job costs:
/// each job's duration is clean wall time, not inflated by preemption
/// when workers outnumber cores. The `parallel_smoke` bench uses this to
/// report a speedup that is meaningful even on a single-core CI box.
pub mod model {
    use super::*;
    use std::cell::Cell;
    use std::sync::atomic::AtomicBool;

    static CAPTURING: AtomicBool = AtomicBool::new(false);

    thread_local! {
        /// Dispatch nesting depth — only depth-0 dispatches are logged,
        /// so a dispatch issued from inside another dispatch's job does
        /// not double-count its busy time.
        static DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    fn log() -> &'static Mutex<Vec<Vec<u64>>> {
        static LOG: OnceLock<Mutex<Vec<Vec<u64>>>> = OnceLock::new();
        LOG.get_or_init(|| Mutex::new(Vec::new()))
    }

    pub(crate) fn capture_enabled() -> bool {
        CAPTURING.load(Ordering::Relaxed)
    }

    pub(crate) fn run_inline_timed<'s, T: Send + 's>(jobs: Vec<Job<'s, T>>) -> Vec<T> {
        let top = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v == 0
        });
        let mut ns = Vec::with_capacity(jobs.len());
        let out = jobs
            .into_iter()
            .map(|j| {
                let t0 = Instant::now();
                let r = j();
                ns.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                r
            })
            .collect();
        DEPTH.with(|d| d.set(d.get() - 1));
        if top {
            log().lock().unwrap_or_else(|e| e.into_inner()).push(ns);
        }
        out
    }

    /// Runs `f` with schedule capture enabled and returns its result plus
    /// the per-dispatch job durations (nanoseconds, job order). Only
    /// dispatches that ran inline (worker count 1) are captured — wrap
    /// `f` in [`with_threads`]`(1, …)` for a complete log. The capture
    /// buffer is process-global; callers serialize as they do for
    /// [`set_thread_override`].
    pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<Vec<u64>>) {
        let was = CAPTURING.swap(true, Ordering::Relaxed);
        log().lock().unwrap_or_else(|e| e.into_inner()).clear();
        let out = f();
        CAPTURING.store(was, Ordering::Relaxed);
        let dispatches = std::mem::take(&mut *log().lock().unwrap_or_else(|e| e.into_inner()));
        (out, dispatches)
    }

    /// Makespan of one dispatch's jobs replayed on `workers` lanes with
    /// the pool's discipline: jobs are claimed in order, each by the
    /// worker that frees up first.
    pub fn simulated_makespan_ns(job_ns: &[u64], workers: usize) -> u64 {
        let mut free = vec![0u64; workers.max(1)];
        for &ns in job_ns {
            let lane = free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
                .expect("at least one lane");
            free[lane] += ns;
        }
        free.into_iter().max().unwrap_or(0)
    }

    /// Models the wall time of a captured single-worker run replayed on
    /// `workers` workers: serial time outside dispatches is unchanged;
    /// each dispatch contributes its simulated makespan.
    pub fn modeled_wall_ns(serial_wall_ns: u64, dispatches: &[Vec<u64>], workers: usize) -> u64 {
        let busy: u64 = dispatches.iter().flatten().sum();
        let outside = serial_wall_ns.saturating_sub(busy);
        outside
            + dispatches
                .iter()
                .map(|d| simulated_makespan_ns(d, workers))
                .sum::<u64>()
    }
}

/// Pool-utilization metrics, exported through the `simpim-obs` registry
/// under `simpim.par.*` so `simpim report` can show them next to the
/// mining/executor counters.
mod stats {
    use std::ops::Range;

    pub(crate) fn record_call(tasks: usize, workers: usize) {
        simpim_obs::metrics::counter_add("simpim.par.calls", 1);
        simpim_obs::metrics::counter_add("simpim.par.tasks", tasks as u64);
        simpim_obs::metrics::gauge_set("simpim.par.threads", super::thread_count() as f64);
        let _ = workers;
    }

    pub(crate) fn record_chunks(ranges: &[Range<usize>]) {
        if let Some(first) = ranges.first() {
            simpim_obs::metrics::histogram_record("simpim.par.chunk_size", first.len() as u64);
        }
    }

    pub(crate) fn record_dispatch(workers: usize, wall_ns: u128, busy_ns: u128, steals: u64) {
        let idle = (wall_ns * workers as u128).saturating_sub(busy_ns);
        simpim_obs::metrics::counter_add("simpim.par.dispatches", 1);
        simpim_obs::metrics::counter_add(
            "simpim.par.busy_ns",
            busy_ns.min(u64::MAX as u128) as u64,
        );
        simpim_obs::metrics::counter_add("simpim.par.idle_ns", idle.min(u64::MAX as u128) as u64);
        simpim_obs::metrics::counter_add("simpim.par.steals", steals);
        simpim_obs::metrics::histogram_record("simpim.par.workers", workers as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The override and the metrics registry are process-global; tests
    /// that touch them take this lock so the harness's own parallelism
    /// doesn't interleave overrides.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn chunk_ranges_are_thread_invariant_and_cover() {
        for len in [0usize, 1, 7, 64, 65, 1000] {
            for chunk in [1usize, 3, 64, 4096] {
                let ranges = chunk_ranges(len, chunk);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(
                    flat,
                    (0..len).collect::<Vec<_>>(),
                    "len={len} chunk={chunk}"
                );
                for r in &ranges[..ranges.len().saturating_sub(1)] {
                    assert_eq!(r.len(), chunk.max(1));
                }
            }
        }
    }

    #[test]
    fn map_chunks_matches_serial_for_all_thread_counts() {
        let _g = test_lock();
        let data: Vec<u64> = (0..10_000).map(|i| (i * 2654435761u64) >> 7).collect();
        let serial: Vec<u64> = chunk_ranges(data.len(), 97)
            .into_iter()
            .map(|r| {
                data[r]
                    .iter()
                    .copied()
                    .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
            })
            .collect();
        for threads in [1usize, 2, 3, 8] {
            let par = with_threads(threads, || {
                map_chunks(data.len(), 97, |r| {
                    data[r]
                        .iter()
                        .copied()
                        .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
                })
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn join_all_preserves_job_order() {
        let _g = test_lock();
        let results = with_threads(8, || {
            join_all(
                (0..100usize)
                    .map(|i| Box::new(move || i * i) as Job<'_, usize>)
                    .collect(),
            )
        });
        assert_eq!(results, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_all_borrows_disjoint_mut_chunks() {
        let _g = test_lock();
        let mut data = vec![0u32; 1000];
        let jobs: Vec<Job<'_, usize>> = data
            .chunks_mut(128)
            .enumerate()
            .map(|(ci, chunk)| {
                Box::new(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 1000 + j) as u32;
                    }
                    ci
                }) as Job<'_, usize>
            })
            .collect();
        let ids = with_threads(4, || join_all(jobs));
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert_eq!(data[0], 0);
        assert_eq!(data[128], 1000);
        assert_eq!(data[999], 7 * 1000 + (999 - 7 * 128) as u32);
    }

    #[test]
    fn thread_override_wins_and_restores() {
        let _g = test_lock();
        let before = thread_count();
        let inside = with_threads(3, thread_count);
        assert_eq!(inside, 3);
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn parallel_sort_matches_serial_stable_sort() {
        let _g = test_lock();
        // Duplicate keys on purpose: stability must match `sort_by`.
        let data: Vec<(u64, usize)> = (0..20_000)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> 9) % 512, i))
            .collect();
        let mut serial = data.clone();
        serial.sort_by_key(|a| a.0);
        for threads in [1usize, 2, 8] {
            let mut par = data.clone();
            with_threads(threads, || sort_by(&mut par, |a, b| a.0.cmp(&b.0)));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn schedule_model_replays_capture() {
        let _g = test_lock();
        let (sums, dispatches) =
            model::capture(|| with_threads(1, || map_chunks(1000, 100, |r| r.len())));
        assert_eq!(sums.iter().sum::<usize>(), 1000);
        assert_eq!(dispatches.len(), 1);
        assert_eq!(dispatches[0].len(), 10);
        // In-order claiming by the earliest-free lane.
        assert_eq!(model::simulated_makespan_ns(&[1; 10], 5), 2);
        assert_eq!(model::simulated_makespan_ns(&[3, 1, 1, 1], 2), 3);
        // Serial residue outside dispatches is carried over unchanged.
        assert_eq!(model::modeled_wall_ns(100, &[vec![10, 10]], 2), 90);
    }

    #[test]
    fn pool_metrics_are_recorded() {
        let _g = test_lock();
        simpim_obs::metrics::reset();
        with_threads(4, || {
            map_chunks(1024, 64, |r| r.len());
        });
        let snap = simpim_obs::metrics::snapshot();
        assert!(snap.counter("simpim.par.calls").unwrap_or(0) >= 1);
        assert!(snap.counter("simpim.par.tasks").unwrap_or(0) >= 16);
        assert!(snap.counter("simpim.par.dispatches").unwrap_or(0) >= 1);
    }
}

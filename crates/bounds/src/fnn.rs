//! `LB_FNN` \[26\] — nonlinear-embedding bound (Table 3, row 3):
//!
//! ```text
//! LB_FNN(p,q) = l · Σ_{i=1}^{d′} ((µ(p̂ᵢ)−µ(q̂ᵢ))² + (σ(p̂ᵢ)−σ(q̂ᵢ))²)
//! ```
//!
//! Within one segment,
//! `Σ (pⱼ−qⱼ)² = l(µp−µq)² + Σ ((pⱼ−µp) − (qⱼ−µq))²` and the centered term
//! is `l·σp² + l·σq² − 2·Σ(pⱼ−µp)(qⱼ−µq) ≥ l(σp−σq)²` by Cauchy–Schwarz,
//! so `LB_FNN ≤ ED` and `LB_FNN ≥ LB_SM` at the same segmentation. The FNN
//! algorithm cascades this bound with `d′ = d/64 → d/16 → d/4` (Fig. 12a);
//! its PIM-aware counterpart is `LB_PIM-FNN` in `simpim-core`.

use crate::cost::EvalCost;
use crate::traits::{BoundDirection, BoundStage, PreparedBound};
use simpim_similarity::{Dataset, SegmentProfile, SegmentStats, SimilarityError};

/// Precomputed `LB_FNN` over a dataset: per-row segment means and standard
/// deviations.
#[derive(Debug, Clone)]
pub struct FnnBound {
    profile: SegmentProfile,
    d: usize,
}

impl FnnBound {
    /// Builds the bound with `d_prime` segments (`d_prime` must divide `d`).
    pub fn build(dataset: &Dataset, d_prime: usize) -> Result<Self, SimilarityError> {
        let profile = SegmentProfile::compute(dataset, d_prime)?;
        Ok(Self {
            profile,
            d: dataset.dim(),
        })
    }

    /// The underlying segment profile (shared with `LB_PIM-FNN`'s offline
    /// stage).
    pub fn profile(&self) -> &SegmentProfile {
        &self.profile
    }

    /// Number of prepared objects.
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// `true` when no objects are prepared.
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }
}

impl BoundStage for FnnBound {
    fn name(&self) -> String {
        format!("LB_FNN^{}", self.profile.num_segments())
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::LowerBoundsDistance
    }

    fn d_prime(&self) -> usize {
        self.profile.num_segments()
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        // µ and σ per segment, f64 each.
        2 * self.profile.num_segments() as u64 * 8
    }

    fn eval_cost(&self) -> EvalCost {
        let dp = self.profile.num_segments() as u64;
        EvalCost {
            arith: 4 * dp,
            mul: 2 * dp + 1,
            div: 0,
            sqrt: 0,
            bytes: self.transfer_bytes_per_object(),
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q_stats = SegmentStats::compute(query, self.profile.num_segments())
            .expect("segmentation validated at build time");
        Box::new(FnnPrepared {
            bound: self,
            q_stats,
        })
    }
}

struct FnnPrepared<'a> {
    bound: &'a FnnBound,
    q_stats: SegmentStats,
}

impl PreparedBound for FnnPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let means = self.bound.profile.means(i);
        let stds = self.bound.profile.stds(i);
        let l = self.bound.profile.segment_len() as f64;
        let mut acc = 0.0;
        for s in 0..means.len() {
            let dm = means[s] - self.q_stats.means[s];
            let dsd = stds[s] - self.q_stats.stds[s];
            acc += dm * dm + dsd * dsd;
        }
        l * acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::SmBound;
    use simpim_similarity::measures::euclidean_sq;

    fn dataset() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4],
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn is_lower_bound_of_ed() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        for dp in [1usize, 2, 4, 8] {
            let b = FnnBound::build(&ds, dp).unwrap();
            let prep = b.prepare(&q);
            for i in 0..ds.len() {
                let lb = prep.bound(i);
                let ed = euclidean_sq(ds.row(i), &q);
                assert!(lb <= ed + 1e-12, "dp={dp} i={i}: {lb} > {ed}");
            }
        }
    }

    #[test]
    fn dominates_sm_at_same_segmentation() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        for dp in [1usize, 2, 4] {
            let fnn = FnnBound::build(&ds, dp).unwrap();
            let sm = SmBound::build(&ds, dp).unwrap();
            let (pf, ps) = (fnn.prepare(&q), sm.prepare(&q));
            for i in 0..ds.len() {
                assert!(pf.bound(i) >= ps.bound(i) - 1e-12, "dp={dp} i={i}");
            }
        }
    }

    #[test]
    fn sigma_term_distinguishes_equal_means() {
        // The case LB_SM cannot prune: same segment means, different
        // spread. LB_FNN must produce a strictly positive bound.
        let ds = Dataset::from_rows(&[vec![0.5; 8]]).unwrap();
        let b = FnnBound::build(&ds, 2).unwrap();
        let q = [0.1, 0.9, 0.1, 0.9, 0.0, 1.0, 0.0, 1.0];
        let prep = b.prepare(&q);
        assert!(prep.bound(0) > 0.1);
    }

    #[test]
    fn zero_distance_to_itself() {
        let ds = dataset();
        let b = FnnBound::build(&ds, 4).unwrap();
        let prep = b.prepare(ds.row(2));
        assert!(prep.bound(2).abs() < 1e-12);
    }

    #[test]
    fn metadata_and_naming() {
        let b = FnnBound::build(&dataset(), 2).unwrap();
        assert_eq!(b.name(), "LB_FNN^2");
        assert_eq!(b.transfer_bytes_per_object(), 32); // 2 segments × (µ,σ) × 8 B
        assert_eq!(b.profile().segment_len(), 4);
        assert_eq!(b.len(), 4);
        let c = b.eval_cost();
        assert_eq!(c.bytes, 32);
        assert!(c.mul > c.div);
    }

    #[test]
    fn rejects_non_dividing_segments() {
        assert!(FnnBound::build(&dataset(), 5).is_err());
    }
}
